//! Integration: every compression scheme in the repository must be bit-exact
//! lossless on every synthetic dataset.

use bench_support::assert_bits_eq;

mod bench_support {
    pub fn assert_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value {i}");
        }
    }
}

const N: usize = 20_000;
const SEED: u64 = 99;

#[test]
fn alp_roundtrips_every_dataset() {
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        let compressed = alp::Compressor::new().compress(&data);
        assert_bits_eq(&data, &compressed.decompress(), ds.name);
    }
}

#[test]
fn alp_serialized_roundtrips_every_dataset() {
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        let compressed = alp::Compressor::new().compress(&data);
        let bytes = alp::format::to_bytes(&compressed);
        let restored = alp::format::from_bytes::<f64>(&bytes).expect(ds.name);
        assert_bits_eq(&data, &restored.decompress(), ds.name);
    }
}

#[test]
fn cascade_roundtrips_every_dataset() {
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        let compressed = alp::cascade::CascadeCompressor::new().compress(&data);
        assert_bits_eq(&data, &compressed.decompress(), ds.name);
    }
}

#[test]
fn every_codec_roundtrips_every_dataset() {
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        for codec in codecs::Codec::ALL {
            let bytes = codec.compress_f64(&data);
            let back = codec.decompress_f64(&bytes, data.len());
            assert_bits_eq(&data, &back, &format!("{} on {}", codec.name(), ds.name));
        }
    }
}

#[test]
fn gpzip_roundtrips_every_dataset() {
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let z = gpzip::compress(&raw);
        assert_eq!(gpzip::decompress(&z), raw, "{}", ds.name);
    }
}

#[test]
fn alp_never_expands_catastrophically() {
    // Even on the worst inputs (real doubles) ALP_rd keeps the footprint close
    // to the raw 64 bits + small headers.
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, N, SEED);
        let compressed = alp::Compressor::new().compress(&data);
        assert!(
            compressed.bits_per_value() < 68.0,
            "{}: {:.1} bits/value",
            ds.name,
            compressed.bits_per_value()
        );
    }
}

#[test]
fn f32_alp_roundtrips_ml_weights() {
    let weights = datagen::ml_weights_f32(150_000, SEED);
    let compressed = alp::Compressor::new().compress(&weights);
    let back = compressed.decompress();
    for (a, b) in weights.iter().zip(&back) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(compressed.bits_per_value() < 33.0);
}

#[test]
fn f32_codecs_roundtrip_ml_weights() {
    let weights = datagen::ml_weights_f32(60_000, SEED);
    for codec in [
        codecs::Codec::Gorilla,
        codecs::Codec::Chimp,
        codecs::Codec::Chimp128,
        codecs::Codec::Patas,
    ] {
        let bytes = codec.compress_f32(&weights).unwrap();
        let back = codec.decompress_f32(&bytes, weights.len()).unwrap();
        for (i, (a, b)) in weights.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{} idx {i}", codec.name());
        }
    }
}
