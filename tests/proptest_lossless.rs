//! Property-based losslessness: every scheme must reproduce *arbitrary*
//! `f64`/`f32` bit patterns exactly — NaN payloads, ±0, infinities,
//! subnormals — regardless of vector boundaries and input lengths.

use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary doubles by bit pattern (covers every NaN payload, both zeros,
/// infinities and subnormals — not just "reasonable" values).
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Decimal-flavored doubles (the data ALP targets).
fn decimal_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), 0u32..10).prop_map(|(d, p)| d as f64 / 10f64.powi(p as i32))
}

/// Mixed: mostly decimals with arbitrary bit patterns sprinkled in.
fn mixed_f64() -> impl Strategy<Value = f64> {
    prop_oneof![4 => decimal_f64(), 1 => any_f64()]
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alp_compressor_is_lossless(data in vec(mixed_f64(), 0..5000)) {
        let compressed = alp::Compressor::new().compress(&data);
        assert_bits_eq(&data, &compressed.decompress());
    }

    #[test]
    fn alp_handles_pure_noise(data in vec(any_f64(), 1..3000)) {
        let compressed = alp::Compressor::new().compress(&data);
        assert_bits_eq(&data, &compressed.decompress());
    }

    #[test]
    fn alp_format_roundtrips(data in vec(mixed_f64(), 0..4000)) {
        let compressed = alp::Compressor::new().compress(&data);
        let bytes = alp::format::to_bytes(&compressed);
        let restored = alp::format::from_bytes::<f64>(&bytes).unwrap();
        assert_bits_eq(&data, &restored.decompress());
    }

    #[test]
    fn cascade_is_lossless(data in vec(mixed_f64(), 0..3000)) {
        let compressed = alp::cascade::CascadeCompressor::new().compress(&data);
        assert_bits_eq(&data, &compressed.decompress());
    }

    #[test]
    fn encode_vector_is_lossless_for_any_combo(
        data in vec(any_f64(), 1..1024),
        e in 0u8..=21,
        f_rel in 0u8..=21,
    ) {
        let f = f_rel.min(e);
        let v = alp::encode::encode_vector(&data, e, f);
        let mut out = vec![0.0f64; alp::VECTOR_SIZE];
        let n = alp::decode::decode_vector(&v, v.view(), &mut out);
        assert_eq!(n, data.len());
        assert_bits_eq(&data, &out[..n]);
    }

    #[test]
    fn gorilla_is_lossless(data in vec(any_f64(), 0..2000)) {
        let bytes = codecs::gorilla::compress_f64(&data);
        assert_bits_eq(&data, &codecs::gorilla::decompress_f64(&bytes, data.len()));
    }

    #[test]
    fn chimp_is_lossless(data in vec(any_f64(), 0..2000)) {
        let bytes = codecs::chimp::compress_f64(&data);
        assert_bits_eq(&data, &codecs::chimp::decompress_f64(&bytes, data.len()));
    }

    #[test]
    fn chimp128_is_lossless(data in vec(any_f64(), 0..2000)) {
        let bytes = codecs::chimp128::compress_f64(&data);
        assert_bits_eq(&data, &codecs::chimp128::decompress_f64(&bytes, data.len()));
    }

    #[test]
    fn patas_is_lossless(data in vec(any_f64(), 0..2000)) {
        let bytes = codecs::patas::compress_f64(&data);
        assert_bits_eq(&data, &codecs::patas::decompress_f64(&bytes, data.len()));
    }

    #[test]
    fn elf_is_lossless(data in vec(mixed_f64(), 0..800)) {
        let bytes = codecs::elf::compress(&data);
        assert_bits_eq(&data, &codecs::elf::decompress(&bytes, data.len()));
    }

    #[test]
    fn pde_is_lossless(data in vec(mixed_f64(), 0..2000)) {
        let bytes = codecs::pde::compress(&data);
        assert_bits_eq(&data, &codecs::pde::decompress(&bytes, data.len()));
    }

    #[test]
    fn gpzip_is_lossless(data in vec(any::<u8>(), 0..60_000)) {
        let z = gpzip::compress(&data);
        prop_assert_eq!(gpzip::decompress(&z), data);
    }

    #[test]
    fn f32_codecs_are_lossless(bits in vec(any::<u32>(), 0..1500)) {
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        for codec in [codecs::Codec::Gorilla, codecs::Codec::Chimp, codecs::Codec::Chimp128, codecs::Codec::Patas] {
            let bytes = codec.compress_f32(&data).unwrap();
            let back = codec.decompress_f32(&bytes, data.len()).unwrap();
            for (a, b) in data.iter().zip(&back) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{}", codec.name());
            }
        }
    }

    #[test]
    fn alp_f32_is_lossless(bits in vec(any::<u32>(), 0..3000)) {
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let compressed = alp::Compressor::new().compress(&data);
        let back = compressed.decompress();
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bitpack_roundtrips_any_width(
        values in vec(any::<u64>(), 1024..=1024),
        width in 0usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else if width == 0 { 0 } else { (1 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let packed = fastlanes::bitpack::pack(&masked, width);
        let mut out = vec![0u64; 1024];
        fastlanes::bitpack::unpack(&packed, width, &mut out);
        prop_assert_eq!(out, masked);
    }

    #[test]
    fn bitpack32_roundtrips_any_width(
        values in vec(any::<u32>(), 1024..=1024),
        width in 0usize..=32,
    ) {
        let mask = if width == 32 { u32::MAX } else if width == 0 { 0 } else { (1 << width) - 1 };
        let masked: Vec<u32> = values.iter().map(|&v| v & mask).collect();
        let packed = fastlanes::bitpack32::pack(&masked, width);
        let mut out = vec![0u32; 1024];
        fastlanes::bitpack32::unpack(&packed, width, &mut out);
        prop_assert_eq!(out, masked);
    }

    #[test]
    fn interleaved_roundtrips_any_width(
        values in vec(any::<u64>(), 1024..=1024),
        width in 0usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else if width == 0 { 0 } else { (1 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|&v| v & mask).collect();
        let packed = fastlanes::interleaved::pack(&masked, width);
        let mut out = vec![0u64; 1024];
        fastlanes::interleaved::unpack(&packed, width, &mut out);
        prop_assert_eq!(out, masked);
    }

    #[test]
    fn fpc_is_lossless(data in vec(any_f64(), 0..2000)) {
        let bytes = codecs::fpc::compress(&data);
        assert_bits_eq(&data, &codecs::fpc::decompress(&bytes, data.len()));
    }

    #[test]
    fn gpzip_fast_is_lossless(data in vec(any::<u8>(), 0..60_000)) {
        let z = gpzip::fast::compress(&data);
        prop_assert_eq!(gpzip::fast::decompress(&z), data);
    }

    #[test]
    fn stream_roundtrips_mixed(data in vec(mixed_f64(), 0..4000)) {
        let mut file = Vec::new();
        let mut w = alp::stream::ColumnWriter::<f64, _>::new(&mut file);
        w.push(&data).unwrap();
        w.finish().unwrap();
        let mut r = alp::stream::ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = r.next_rowgroup().unwrap() {
            restored.extend(values);
        }
        assert_bits_eq(&data, &restored);
    }

    #[test]
    fn ffor_roundtrips_any_i64(values in vec(any::<i64>(), 1024..=1024)) {
        let (base, width, packed) = fastlanes::ffor::ffor(&values);
        let mut out = vec![0i64; 1024];
        fastlanes::ffor::ffor_unpack(&packed, base, width, &mut out);
        prop_assert_eq!(out, values);
    }
}
