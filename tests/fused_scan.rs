//! Fused-scan equivalence: `ColumnCodec::try_scan_fused` must be
//! **bit-identical** to materialize-then-scan for every registry codec —
//! same sums (same floating-point chain), same match counts, same min/max,
//! same validity bitmap — and the query service's fused cache-bypass path
//! must match its materializing path at every thread count.
//!
//! The adversarial inputs are the ones that distinguish a correct fused
//! kernel from a plausible one: exception-heavy vectors (mid-stream patching
//! order), NaN-dense and all-NaN pages (validity bitmaps, min/max
//! emptiness), ragged tails (partial final vector), and ±0 ties.

use std::sync::Arc;

use alp_core::{ColumnCodec, Registry, ScanAgg, ScanPredicate, ScanResult, Scratch};
use fastlanes::VECTOR_SIZE;
use proptest::collection::vec;
use proptest::prelude::*;
use vectorq::cache::CacheConfig;
use vectorq::service::{QueryOptions, Service, ServiceConfig, Store};
use vectorq::{Column, Format};

/// Decimal-flavored doubles (ALP's target data — packs without exceptions).
fn decimal_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), 0u32..8).prop_map(|(d, p)| d as f64 / 10f64.powi(p as i32))
}

/// Arbitrary bit patterns: exception-heavy for ALP, NaN payloads included.
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Mostly decimals with exceptions and NaNs sprinkled in.
fn mixed_f64() -> impl Strategy<Value = f64> {
    let nan = any::<u8>().prop_map(|_| f64::NAN);
    prop_oneof![5 => decimal_f64(), 2 => any_f64(), 1 => nan]
}

/// The reference path: materialize through `try_decompress_into`, then fold
/// the shared `scan_values` contract chain over the buffer.
fn materialize_then_scan(
    codec: &'static dyn ColumnCodec,
    bytes: &[u8],
    count: usize,
    pred: ScanPredicate,
    agg: ScanAgg,
) -> ScanResult {
    let mut floats = Vec::new();
    codec
        .try_decompress_into(bytes, count, &mut floats, &mut Scratch::new())
        .expect("decoding bytes this test compressed");
    let mut r = ScanResult::new();
    alp_core::scan_values(&floats, pred, agg, &mut r);
    r
}

fn assert_scan_results_identical(fused: &ScanResult, reference: &ScanResult, label: &str) {
    assert_eq!(
        fused.sum.to_bits(),
        reference.sum.to_bits(),
        "{label}: sums must be bit-identical (fused {} vs {})",
        fused.sum,
        reference.sum
    );
    assert_eq!(fused.matches, reference.matches, "{label}: match counts");
    assert_eq!(fused.min.map(f64::to_bits), reference.min.map(f64::to_bits), "{label}: min");
    assert_eq!(fused.max.map(f64::to_bits), reference.max.map(f64::to_bits), "{label}: max");
    assert_eq!(fused.validity, reference.validity, "{label}: validity bitmap");
}

/// Asserts fused == materialized for every serializable registry codec, over
/// both aggregate modes and the given predicate.
fn check_all_codecs(data: &[f64], lo: f64, hi: f64) {
    let pred = ScanPredicate { lo, hi };
    for &codec in Registry::all() {
        if codec.caps().ratio_only {
            continue; // no byte serialization — nothing to scan
        }
        let mut bytes = Vec::new();
        let mut scratch = Scratch::new();
        codec
            .try_compress_into(data, &mut bytes, &mut scratch)
            .expect("compressing in-memory test data");
        for agg in [ScanAgg::SumCount, ScanAgg::All] {
            let fused = codec
                .try_scan_fused(&bytes, data.len(), pred, agg, &mut scratch)
                .expect("scanning bytes this test compressed");
            let reference = materialize_then_scan(codec, &bytes, data.len(), pred, agg);
            assert_scan_results_identical(
                &fused,
                &reference,
                &format!("{} (agg {agg:?}, n={})", codec.id(), data.len()),
            );
        }
    }
}

/// Builds data where every 1024-value vector carries many ALP exceptions:
/// decimals interleaved with full-precision noise.
fn exception_heavy(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                // Full-precision mantissa — an ALP exception almost surely.
                f64::from_bits(
                    0x3FF0_0000_0000_0000 | (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            } else {
                (i % 5000) as f64 / 100.0
            }
        })
        .collect()
}

#[test]
fn fused_scan_matches_materialized_on_exception_heavy_vectors() {
    let data = exception_heavy(10 * VECTOR_SIZE + 137);
    check_all_codecs(&data, 1.0, 40.0);
    check_all_codecs(&data, f64::NEG_INFINITY, f64::INFINITY);
}

#[test]
fn fused_scan_matches_materialized_on_nan_dense_and_all_nan_pages() {
    let mut data: Vec<f64> = (0..4 * VECTOR_SIZE).map(|i| (i % 997) as f64 / 10.0).collect();
    for i in (0..data.len()).step_by(2) {
        data[i] = f64::NAN; // NaN-dense: every other value
    }
    for v in data.iter_mut().take(VECTOR_SIZE) {
        *v = f64::NAN; // first page entirely NaN
    }
    check_all_codecs(&data, 0.0, 50.0);
    // All-NaN column: min/max must be None on both paths, never ±inf.
    let all_nan = vec![f64::NAN; 2 * VECTOR_SIZE + 100];
    check_all_codecs(&all_nan, f64::NEG_INFINITY, f64::INFINITY);
}

#[test]
fn fused_scan_matches_materialized_on_ragged_tails() {
    for n in [1, 63, 64, 65, VECTOR_SIZE - 1, VECTOR_SIZE + 1, 3 * VECTOR_SIZE + 777] {
        let data: Vec<f64> = (0..n).map(|i| (i % 313) as f64 / 4.0).collect();
        check_all_codecs(&data, 10.0, 60.0);
    }
}

#[test]
fn fused_scan_handles_signed_zero_ties() {
    // -0.0 == 0.0 but the bit patterns differ; the tie rule (keep the earlier
    // value) must agree between the fused kernels and the reference fold.
    let mut data = vec![0.0f64; 2 * VECTOR_SIZE];
    for (i, v) in data.iter_mut().enumerate() {
        *v = if i % 2 == 0 { -0.0 } else { 0.0 };
    }
    check_all_codecs(&data, -1.0, 1.0);
}

#[test]
fn every_codec_claiming_fused_scan_agrees_with_the_default_path() {
    // The capability flag is load-bearing: a codec claiming `fused_scan` runs
    // a real kernel here, and it must land on exactly the default's result.
    let data = exception_heavy(5 * VECTOR_SIZE + 19);
    let claimed: Vec<&str> =
        Registry::all().iter().filter(|c| c.caps().fused_scan).map(|c| c.id()).collect();
    assert!(claimed.contains(&"alp"), "alp must expose its fused kernel, found {claimed:?}");
    check_all_codecs(&data, 5.0, 45.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_scan_is_bit_identical_for_arbitrary_data(
        data in vec(mixed_f64(), 0..4000),
        lo in decimal_f64(),
        width in 0.0f64..1e6,
    ) {
        check_all_codecs(&data, lo, lo + width);
    }

    #[test]
    fn fused_scan_is_bit_identical_for_pure_noise(data in vec(any_f64(), 1..3000)) {
        check_all_codecs(&data, f64::NEG_INFINITY, f64::INFINITY);
    }
}

// ---------------------------------------------------------------------------
// Service-level equivalence: fused bypass path vs materializing path
// ---------------------------------------------------------------------------

fn service_data() -> Vec<f64> {
    let mut data = exception_heavy(600_000);
    for i in (0..data.len()).step_by(211) {
        data[i] = f64::NAN;
    }
    data
}

#[test]
fn service_fused_and_materializing_paths_agree_at_every_thread_count() {
    let data = service_data();
    // max_entries = 0: every miss is a predicted bypass, so the default
    // options take the fused path on every overlapping page.
    let bypass = CacheConfig { max_entries: 0, ..CacheConfig::default_config() };
    let column = Column::from_f64(&data, Format::alp());
    let service = Service::new(Arc::new(Store::new(column, bypass)), ServiceConfig::default());
    for (lo, hi) in [(5.0, 45.0), (f64::NEG_INFINITY, f64::INFINITY), (1e18, 2e18)] {
        let mut seen: Option<(u64, usize, usize, usize)> = None;
        for threads in [1usize, 2, 7] {
            let fused = service
                .sum_where(lo, hi, &QueryOptions { threads: Some(threads), ..Default::default() })
                .unwrap();
            let mat = service
                .sum_where(
                    lo,
                    hi,
                    &QueryOptions { threads: Some(threads), no_fused: true, ..Default::default() },
                )
                .unwrap();
            assert_eq!(mat.pages_fused, 0, "no_fused must force materialization");
            assert_eq!(
                fused.value.sum.to_bits(),
                mat.value.sum.to_bits(),
                "paths must agree bit-for-bit at {threads} threads over [{lo}, {hi}]"
            );
            assert_eq!(fused.value, mat.value, "all counters agree at {threads} threads");
            // And across thread counts: the tuple must never move.
            let key = (
                fused.value.sum.to_bits(),
                fused.value.matches,
                fused.value.valid,
                fused.value.invalid,
            );
            match seen {
                None => seen = Some(key),
                Some(first) => assert_eq!(first, key, "thread count changed the result"),
            }
        }
    }
}

#[test]
fn service_fused_path_reports_validity_counts() {
    let data = service_data();
    let nans = data.iter().filter(|x| x.is_nan()).count();
    let bypass = CacheConfig { max_entries: 0, ..CacheConfig::default_config() };
    let column = Column::from_f64(&data, Format::alp());
    let service = Service::new(Arc::new(Store::new(column, bypass)), ServiceConfig::default());
    let r = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
    assert!(r.pages_fused > 0, "bypass misses must run fused");
    // NaNs land in every vector (stride 211 < 1024), so nothing is pruned
    // and the scanned validity covers the whole column.
    assert_eq!(r.value.invalid, nans);
    assert_eq!(r.value.valid, data.len() - nans);
}
