//! Stream-layer truncation suite: a writer killed at an arbitrary byte
//! offset — mid-header, mid-payload, or mid-footer — leaves a stream that
//! salvage-reads to exactly the committed row-group prefix, reports the rest
//! as lost, and never claims to be committed. Offsets are proptest-chosen;
//! the boundary cuts (frame edges, terminator, footer) run exhaustively.

use alp::io::{fault_seed, FaultyRead, RetryPolicy};
use alp::stream::{ColumnReader, ColumnWriter};
use alp::SamplerParams;
use alp_repro::corruption::transient_plans;
use proptest::prelude::*;

/// Small row-groups (4 × 1024 values) keep each case cheap while still
/// giving several frames to cut between.
const ROWGROUP: usize = 4 * 1024;
/// Four full row-groups plus a 1000-value tail group: five frames.
const VALUES: usize = 4 * ROWGROUP + 1000;

fn params() -> SamplerParams {
    SamplerParams { vectors_per_rowgroup: 4, sample_vectors: 2, ..SamplerParams::default() }
}

fn dataset() -> Vec<f64> {
    (0..VALUES).map(|i| ((i % 577) as f64) * 0.25 + (i / 577) as f64).collect()
}

fn clean_stream(data: &[f64]) -> Vec<u8> {
    let mut sink = Vec::new();
    let mut writer =
        ColumnWriter::<f64, _>::with_params(&mut sink, params()).expect("valid params");
    writer.push(data).expect("push");
    writer.finish().expect("finish");
    sink
}

/// Exclusive end offset of every frame: 5-byte header, then each
/// `len:u32 | xxh64:u64 | body` frame up to the zero-length terminator.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut at = 5;
    let mut ends = Vec::new();
    loop {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("frame length")) as usize;
        if len == 0 {
            return ends;
        }
        at += 4 + 8 + len;
        ends.push(at);
    }
}

/// Values held by the first `frames` row-groups of the dataset.
fn values_in(frames: usize) -> usize {
    (frames * ROWGROUP).min(VALUES)
}

/// The invariant every truncation must satisfy: drains a salvage read of
/// `bytes[..cut]` and checks the recovered prefix, the loss report, and the
/// commit verdict against the frame layout.
fn check_cut(data: &[f64], clean: &[u8], ends: &[usize], cut: usize) {
    let torn = &clean[..cut];
    if cut < 5 {
        // Mid-header: not even the magic survives; the stream is unreadable.
        assert!(ColumnReader::<f64, _>::new(torn).is_err(), "cut {cut}: header must not parse");
        return;
    }
    let mut reader =
        ColumnReader::<f64, _>::new(torn).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
    let mut restored = Vec::new();
    while let Some(values) =
        reader.next_rowgroup_salvaged().unwrap_or_else(|e| panic!("cut {cut}: salvage failed: {e}"))
    {
        restored.extend(values);
    }
    // The committed prefix: every frame wholly inside the cut decodes
    // bit-exactly, in order.
    let committed_frames = ends.iter().filter(|&&e| e <= cut).count();
    let expected = values_in(committed_frames);
    assert_eq!(restored.len(), expected, "cut {cut}: salvaged prefix length");
    for (i, (a, b)) in data[..expected].iter().zip(&restored).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cut {cut}: value {i}");
    }
    // A truncated stream never reads as committed, and any frame loss is
    // reported.
    assert!(!reader.is_committed(), "cut {cut}: truncation must clear the commit");
    if committed_frames < ends.len() {
        assert!(!reader.lost_rowgroups().is_empty(), "cut {cut}: loss must be reported");
    }
}

#[test]
fn every_boundary_cut_salvages_the_committed_prefix() {
    let data = dataset();
    let clean = clean_stream(&data);
    let ends = frame_ends(&clean);
    assert_eq!(ends.len(), 5);

    let mut cuts: Vec<usize> = (0..=5).collect(); // mid-header and header edge
    for &e in &ends {
        cuts.extend([e - 1, e, e + 1]); // frame edges: last byte, exact, first of next
    }
    let term = ends[ends.len() - 1] + 4;
    cuts.extend([term - 2, term, term + 1]); // terminator edges
    cuts.extend([clean.len() - 1, clean.len() - 12, clean.len() - 23]); // mid-footer
    for cut in cuts {
        check_cut(&data, &clean, &ends, cut);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_cut_salvages_the_committed_prefix(frac in 0u64..1_000_000) {
        let data = dataset();
        let clean = clean_stream(&data);
        let ends = frame_ends(&clean);
        let cut = (frac as usize * (clean.len() - 1)) / 1_000_000;
        check_cut(&data, &clean, &ends, cut);
    }

    #[test]
    fn salvage_retries_transient_reads_while_truncated(frac in 0u64..1_000_000, which in 0usize..3) {
        // A torn stream read through a flaky source: the salvage path must
        // retry transients and recover exactly what a fault-free read of the
        // same torn bytes recovers.
        let data = dataset();
        let clean = clean_stream(&data);
        let cut = 5 + (frac as usize * (clean.len() - 6)) / 1_000_000;
        let torn = &clean[..cut];
        let plan = transient_plans(fault_seed(42))[which].1;

        let mut reference = ColumnReader::<f64, _>::new(torn).expect("open reference");
        let mut want = Vec::new();
        while let Some(values) = reference.next_rowgroup_salvaged().expect("reference salvage") {
            want.extend(values);
        }

        let source = FaultyRead::new(torn, plan);
        let mut reader = ColumnReader::<f64, _>::with_retry_policy(source, RetryPolicy::immediate(64))
            .expect("open faulty");
        let mut got = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().expect("faulty salvage") {
            got.extend(values);
        }
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(reader.is_committed(), reference.is_committed());
        prop_assert_eq!(reader.lost_rowgroups(), reference.lost_rowgroups());
    }
}

#[test]
fn legacy_streams_commit_at_the_terminator() {
    // `"ALPS"` has no footer: reaching the terminator *is* the commit
    // record, and a truncated legacy stream still reads as uncommitted.
    let data = dataset();
    let mut sink = Vec::new();
    let mut writer = ColumnWriter::<f64, _>::legacy(&mut sink);
    writer.push(&data).expect("legacy push");
    writer.finish().expect("legacy finish");
    let clean = sink;

    let mut reader = ColumnReader::<f64, _>::new(clean.as_slice()).expect("open legacy");
    while reader.next_rowgroup().expect("read legacy").is_some() {}
    assert!(reader.is_committed());
    assert!(reader.footer().is_none(), "legacy streams carry no footer");

    let torn = &clean[..clean.len() - 3];
    let mut reader = ColumnReader::<f64, _>::new(torn).expect("open torn legacy");
    while reader.next_rowgroup_salvaged().expect("salvage torn legacy").is_some() {}
    assert!(!reader.is_committed());
}
