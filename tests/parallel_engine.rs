//! Serial-vs-parallel equivalence across the whole compression engine.
//!
//! The morsel scheduler's core contract (DESIGN.md §10): thread count is
//! invisible in the output. Compressing on N workers must produce
//! byte-identical blocks to compressing serially, and decompressing on N
//! workers must produce bit-identical values — for every registered codec,
//! including columns with a partial tail row-group, and for the empty and
//! length-1 edge cases.

use alp::VECTOR_SIZE;
use alp_core::Registry;
use vectorq::ROWGROUP_VALUES;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Mixed-scheme column: decimal stretches (ALP-friendly), a noisy stretch
/// (exception-heavy), and enough values for several chunks plus a ragged
/// tail that is neither vector- nor row-group-aligned.
fn mixed_column(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| match i % 3000 {
            0..=1999 => (i % 977) as f64 * 0.25,
            2000..=2499 => ((i * 2654435761) % 100_000) as f64 * 1e-7,
            _ => (i as f64).sqrt() * 1e3,
        })
        .collect()
}

#[test]
fn every_codec_compresses_byte_identically_at_all_thread_counts() {
    // 3 chunks of 8 * VECTOR_SIZE plus a ragged 700-value tail.
    let chunk = 8 * VECTOR_SIZE;
    let data = mixed_column(3 * chunk + 700);
    for codec in Registry::all() {
        if codec.caps().ratio_only {
            continue;
        }
        let reference = codec.par_compress(&data, chunk, 1).unwrap();
        assert_eq!(reference.len(), 4, "{}: chunk layout", codec.id());
        for threads in THREAD_COUNTS {
            let blocks = codec.par_compress(&data, chunk, threads).unwrap();
            assert_eq!(blocks, reference, "{} at {threads} threads", codec.id());
        }
    }
}

#[test]
fn every_codec_decompresses_value_identically_at_all_thread_counts() {
    let chunk = 8 * VECTOR_SIZE;
    let data = mixed_column(2 * chunk + 1234);
    for codec in Registry::all() {
        if codec.caps().ratio_only {
            continue;
        }
        let blocks = codec.par_compress(&data, chunk, 2).unwrap();
        for threads in THREAD_COUNTS {
            let back = codec.par_decompress(&blocks, threads).unwrap();
            assert_eq!(back.len(), data.len(), "{} at {threads} threads", codec.id());
            for (i, (a, b)) in data.iter().zip(&back).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} at {threads} threads, value {i}",
                    codec.id()
                );
            }
        }
    }
}

#[test]
fn every_codec_handles_empty_and_length_one_columns_in_parallel() {
    for codec in Registry::all() {
        if codec.caps().ratio_only {
            continue;
        }
        for threads in THREAD_COUNTS {
            let blocks = codec.par_compress(&[], VECTOR_SIZE, threads).unwrap();
            assert!(blocks.is_empty(), "{}: empty column", codec.id());
            assert!(codec.par_decompress(&blocks, threads).unwrap().is_empty());

            let one = [6.625_f64];
            let blocks = codec.par_compress(&one, VECTOR_SIZE, threads).unwrap();
            assert_eq!(blocks.len(), 1, "{}: single value", codec.id());
            let back = codec.par_decompress(&blocks, threads).unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(back[0].to_bits(), one[0].to_bits(), "{}", codec.id());
        }
    }
}

/// ALP's native row-group compressor (not the chunked registry path): the
/// parallel row-group build must serialize to the very same bytes as the
/// serial one, tail row-group included.
#[test]
fn native_alp_rowgroup_compression_is_byte_identical_serialized() {
    // 2 full row-groups plus a partial third ending mid-vector.
    let data = mixed_column(2 * ROWGROUP_VALUES + 5 * VECTOR_SIZE + 333);
    let compressor = alp::Compressor::new();
    let serial = compressor.compress(&data);
    let serial_bytes = alp::format::to_bytes(&serial);
    for threads in THREAD_COUNTS {
        let parallel = compressor.compress_parallel(&data, threads);
        assert_eq!(
            alp::format::to_bytes(&parallel),
            serial_bytes,
            "serialized bytes at {threads} threads"
        );
        assert_eq!(parallel.stats, serial.stats, "sampler stats at {threads} threads");
        for threads_dec in THREAD_COUNTS {
            let back = parallel.decompress_parallel(threads_dec);
            assert_eq!(back.len(), data.len());
            for (a, b) in data.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

#[test]
fn native_alp_parallel_handles_empty_and_length_one() {
    let compressor = alp::Compressor::new();
    for threads in THREAD_COUNTS {
        let empty = compressor.compress_parallel(&[] as &[f64], threads);
        let serial_empty = compressor.compress::<f64>(&[]);
        assert_eq!(alp::format::to_bytes(&empty), alp::format::to_bytes(&serial_empty));
        assert!(empty.decompress_parallel(threads).is_empty());

        let one = compressor.compress_parallel(&[42.5_f64], threads);
        assert_eq!(one.decompress_parallel(threads), vec![42.5]);
    }
}
