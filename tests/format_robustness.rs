//! Adversarial-input robustness of the serialized column format: arbitrary
//! byte mutations and truncations must never panic, never allocate
//! unboundedly, and a successful parse must decompress safely.

use proptest::collection::vec;
use proptest::prelude::*;

fn sample_column() -> Vec<u8> {
    let mut data: Vec<f64> = (0..5000).map(|i| (i as f64) / 8.0).collect();
    // Mix in an ALP_rd row-group too.
    data.extend((0..3000).map(|i| ((i as f64) * 0.377).sin() * 1e-4));
    let compressed = alp::Compressor::new().compress(&data);
    alp::format::to_bytes(&compressed)
}

#[test]
fn lying_length_header_is_rejected() {
    let mut bytes = sample_column();
    // len lives at offset 5..13 (after magic + bits byte).
    bytes[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        alp::format::from_bytes::<f64>(&bytes),
        Err(alp::format::FormatError::Corrupt(_))
    ));
}

#[test]
fn every_truncation_point_fails_cleanly() {
    let bytes = sample_column();
    for cut in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        // Must return an error (or, for prefixes that happen to end on a
        // boundary, a shorter valid column) without panicking.
        let _ = alp::format::from_bytes::<f64>(&bytes[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_single_byte_corruptions_never_panic(
        pos_frac in 0.0f64..1.0,
        val in any::<u8>(),
    ) {
        let mut bytes = sample_column();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = val;
        if let Ok(col) = alp::format::from_bytes::<f64>(&bytes) {
            // A parse that survives validation must decode without panicking.
            let _ = col.decompress();
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in vec(any::<u8>(), 0..4096)) {
        if let Ok(col) = alp::format::from_bytes::<f64>(&bytes) {
            let _ = col.decompress();
        }
    }

    #[test]
    fn random_multi_corruptions_never_panic(
        seed_bytes in vec((0.0f64..1.0, any::<u8>()), 1..8),
    ) {
        let mut bytes = sample_column();
        for (frac, val) in seed_bytes {
            let pos = ((bytes.len() - 1) as f64 * frac) as usize;
            bytes[pos] ^= val;
        }
        if let Ok(col) = alp::format::from_bytes::<f64>(&bytes) {
            let _ = col.decompress();
        }
    }
}
