//! Acceptance suite for the fault-tolerant I/O subsystem (DESIGN.md §11).
//!
//! One seeded fault schedule demonstrates the three recovery guarantees:
//!
//! * (a) transient faults (`Interrupted`, `WouldBlock`, short ops) are
//!   absorbed by the retry layer with output byte-identical to a fault-free
//!   run, on both the write and the read path;
//! * (b) a torn write — the process dying mid-stream — is detected via the
//!   commit footer and salvaged to exactly the last committed row-group;
//! * (c) a poisoned row-group during `decompress_parallel_salvage` is
//!   quarantined with a lost-row-group report while every other row-group
//!   decodes byte-identically to the serial path.
//!
//! Every schedule is a pure function of the base seed, which comes from
//! `ALP_FAULT_SEED` (default 42) so CI can sweep a matrix; any failure
//! reproduces from the seed alone.

use alp::io::{fault_seed, FaultPlan, FaultyRead, FaultyWrite, RetryPolicy};
use alp::stream::{ColumnReader, ColumnWriter};
use alp::RowGroup;
use alp_repro::corruption::transient_plans;

/// Values per row-group at the paper's default parameters (100 × 1024).
const ROWGROUP: usize = 102_400;

/// 250 000 decimal-friendly values: two full row-groups plus a tail group.
fn dataset() -> Vec<f64> {
    (0..250_000).map(|i| ((i % 901) as f64) / 8.0 + (i / 901) as f64).collect()
}

/// The fault-free control arm: the exact bytes a healthy writer produces.
fn clean_stream(data: &[f64]) -> Vec<u8> {
    let mut sink = Vec::new();
    let mut writer = ColumnWriter::<f64, _>::new(&mut sink);
    writer.push(data).expect("clean push");
    writer.finish().expect("clean finish");
    sink
}

/// Exclusive end offset of every frame in a `"ALPT"` stream: walks the
/// 5-byte header, then each `len:u32 | xxh64:u64 | body` frame up to the
/// zero-length terminator.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut at = 5;
    let mut ends = Vec::new();
    loop {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("frame length")) as usize;
        if len == 0 {
            return ends;
        }
        at += 4 + 8 + len;
        ends.push(at);
    }
}

#[test]
fn transient_faults_are_absorbed_byte_identically() {
    let seed = fault_seed(42);
    let data = dataset();
    let clean = clean_stream(&data);
    // No backoff sleeps, and a budget no deterministic schedule outlasts.
    let retry = RetryPolicy::immediate(64);

    for (label, plan) in transient_plans(seed) {
        // Write side: every transient and short write retried away, and the
        // bytes that reach the sink are exactly the fault-free stream.
        let mut sink = FaultyWrite::new(Vec::new(), plan);
        let mut writer = ColumnWriter::<f64, _>::new(&mut sink);
        writer.set_retry_policy(retry);
        writer.push(&data).unwrap_or_else(|e| panic!("{label}: push failed: {e}"));
        let summary = writer.finish().unwrap_or_else(|e| panic!("{label}: finish failed: {e}"));
        assert_eq!(summary.rowgroups, 3, "{label}");
        let written = sink.into_inner();
        // Retried transients must not double-count: the summary tracks the
        // bytes that reached the sink, not the attempts.
        assert_eq!(summary.total_bytes, written.len(), "{label}: byte accounting drifted");
        assert_eq!(written, clean, "{label}: faulty write is not byte-identical");

        // Read side: same schedule on the source; the stream must still read
        // committed and bit-exact.
        let source = FaultyRead::new(clean.as_slice(), plan);
        let mut reader = ColumnReader::<f64, _>::with_retry_policy(source, retry)
            .unwrap_or_else(|e| panic!("{label}: open failed: {e}"));
        let mut restored = Vec::new();
        loop {
            match reader.next_rowgroup() {
                Ok(Some(values)) => restored.extend(values),
                Ok(None) => break,
                Err(e) => panic!("{label}: read failed: {e}"),
            }
        }
        assert!(reader.is_committed(), "{label}: commit footer lost to transients");
        assert_eq!(restored.len(), data.len(), "{label}");
        for (i, (a, b)) in data.iter().zip(&restored).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: value {i}");
        }
    }
}

#[test]
fn torn_write_is_detected_and_salvaged_to_committed_prefix() {
    let seed = fault_seed(42);
    let data = dataset();
    let clean = clean_stream(&data);
    let ends = frame_ends(&clean);
    assert_eq!(ends.len(), 3);

    // Control arm: the intact stream reads committed, footer attesting the
    // full contents.
    let mut reader = ColumnReader::<f64, _>::new(clean.as_slice()).expect("open clean");
    while reader.next_rowgroup().expect("read clean").is_some() {}
    assert!(reader.is_committed());
    let footer = reader.footer().expect("clean stream has a footer");
    assert_eq!(footer.values, data.len() as u64);
    assert_eq!(footer.rowgroups, 3);

    // Kill the writer mid-second-frame: exactly `torn` bytes persist, then
    // every write hard-fails, exactly like a crashed process.
    let torn = (ends[0] + ends[1]) / 2;
    let plan = FaultPlan::clean(seed).with_torn_write_at(torn as u64);
    let mut sink = FaultyWrite::new(Vec::new(), plan);
    let mut writer = ColumnWriter::<f64, _>::new(&mut sink);
    writer.set_retry_policy(RetryPolicy::immediate(4));
    let died = match writer.push(&data) {
        Err(e) => Err(e),
        Ok(()) => writer.finish().map(|_| ()),
    };
    assert!(died.is_err(), "a torn write must surface a hard error");
    let torn_bytes = sink.into_inner();
    assert_eq!(torn_bytes.len(), torn);
    assert_eq!(torn_bytes[..], clean[..torn]);

    // Salvage: the first row-group (fully framed before the tear) comes back
    // bit-exact; the tear is reported and the stream is uncommitted.
    let mut reader = ColumnReader::<f64, _>::new(torn_bytes.as_slice()).expect("open torn");
    let mut restored = Vec::new();
    while let Some(values) = reader.next_rowgroup_salvaged().expect("salvage torn") {
        restored.extend(values);
    }
    assert!(!reader.is_committed(), "a torn stream must not read as committed");
    assert!(reader.footer().is_none());
    assert!(!reader.lost_rowgroups().is_empty(), "the tear must be reported");
    assert_eq!(restored.len(), ROWGROUP);
    for (i, (a, b)) in data[..ROWGROUP].iter().zip(&restored).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "salvaged value {i}");
    }

    // Tear inside the footer itself: every frame persisted, so all data
    // salvages with nothing lost — but the commit record is gone, and only
    // `is_committed` tells this apart from a clean shutdown.
    let torn_bytes = &clean[..clean.len() - 10];
    let mut reader = ColumnReader::<f64, _>::new(torn_bytes).expect("open footer-torn");
    let mut restored = Vec::new();
    while let Some(values) = reader.next_rowgroup_salvaged().expect("salvage footer-torn") {
        restored.extend(values);
    }
    assert!(!reader.is_committed(), "a footer-torn stream must not read as committed");
    assert!(reader.lost_rowgroups().is_empty());
    assert_eq!(restored.len(), data.len());
    for (i, (a, b)) in data.iter().zip(&restored).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "footer-torn value {i}");
    }
}

#[test]
fn poisoned_rowgroup_is_quarantined_and_survivors_match_serial() {
    let data = dataset();
    let mut compressed = alp::Compressor::new().compress(&data);
    assert_eq!(compressed.rowgroups.len(), 3);
    let serial = compressed.decompress();

    // Poison the middle row-group in memory — the kind of damage that slips
    // past serialization checksums — by truncating a vector's packed words
    // so its unpack kernel panics.
    match &mut compressed.rowgroups[1] {
        RowGroup::Alp(g) => {
            assert!(g.vectors[0].bit_width > 0, "poison needs a packed vector");
            g.vectors[0].packed.truncate(1);
        }
        RowGroup::Rd(..) => unreachable!("decimal dataset compresses as ALP"),
    }

    let salvage = compressed.decompress_parallel_salvage(4);
    assert_eq!(salvage.total_rowgroups, 3);
    assert!(!salvage.is_complete());
    assert_eq!(salvage.lost_rowgroups.len(), 1, "exactly the poisoned row-group is lost");
    assert_eq!(salvage.lost_rowgroups[0].morsel, 1);
    assert!(!salvage.lost_rowgroups[0].message.is_empty());

    // Survivors decode byte-identically to the serial path, concatenated in
    // row-group order around the quarantined gap.
    let expected: Vec<f64> =
        serial[..ROWGROUP].iter().chain(&serial[2 * ROWGROUP..]).copied().collect();
    assert_eq!(salvage.values.len(), expected.len());
    for (i, (a, b)) in expected.iter().zip(&salvage.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "surviving value {i}");
    }
}
