//! Hot-loop allocation discipline, enforced by a counting allocator: once
//! scratch buffers are warm, decompression must touch the heap zero times
//! per vector.
//!
//! Scope matches the scratch-buffer design (DESIGN.md §9):
//!
//! * every registered byte-serializable codec's `try_decompress_into`,
//!   except the gpzip modes — their entropy stages build per-block Huffman /
//!   match tables on the heap by design, which is why `Capabilities::
//!   block_based` exists and why they are excluded here;
//! * ALP's per-vector random access (`Compressed::decompress_vector`), the
//!   skip-friendly path the paper's query engine relies on. ALP's registry
//!   `try_decompress_into` parses the checksummed column format first, and
//!   building that column index allocates once per *column*, not per vector.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts allocation events per thread.
///
/// The counter is thread-local so the other test threads of the harness
/// cannot perturb a measurement, and `try_with` keeps the hook safe during
/// thread setup/teardown when the TLS slot may not be live.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_count() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

// SAFETY: a counting veneer; every allocator duty is delegated verbatim to
// `System`, which upholds the `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc`/`realloc` above with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: same contract as `System::realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events triggered by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = alloc_count();
    f();
    alloc_count() - before
}

/// Decimal-flavored data with a sprinkle of exceptions, so ALP exercises its
/// patch path and the XOR codecs see realistic tails.
fn sample(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if i % 1000 == 999 { (i as f64).sqrt() * 1e-7 } else { i as f64 * 0.05 - 31.7 })
        .collect()
}

#[test]
fn registry_decompression_is_allocation_free_after_warmup() {
    let excluded = ["alp", "lwc-alp", "gpzip", "gpzip-fast"];
    let data = sample(4 * alp::VECTOR_SIZE);
    let mut scratch = alp_core::Scratch::new();
    let mut out = Vec::new();
    for codec in alp_core::Registry::all().iter().filter(|c| !excluded.contains(&c.id())) {
        let mut bytes = Vec::new();
        codec.try_compress_into(&data, &mut bytes, &mut scratch).expect("compress");
        for _ in 0..2 {
            codec.try_decompress_into(&bytes, data.len(), &mut out, &mut scratch).expect("warm-up");
        }
        let allocs = allocations_in(|| {
            for _ in 0..8 {
                codec
                    .try_decompress_into(&bytes, data.len(), &mut out, &mut scratch)
                    .expect("decode");
            }
        });
        assert_eq!(allocs, 0, "{}: decompression allocated after warm-up", codec.id());
        assert_eq!(out.len(), data.len(), "{}", codec.id());
    }
}

#[test]
fn alp_per_vector_decode_is_allocation_free_after_warmup() {
    let vectors = 6;
    let data = sample(vectors * alp::VECTOR_SIZE);
    let compressed = alp::Compressor::new().compress(&data);
    let mut buf = vec![0.0f64; alp::VECTOR_SIZE];
    for v in 0..vectors {
        compressed.decompress_vector(0, v, &mut buf); // warm-up sweep
    }
    let allocs = allocations_in(|| {
        for _ in 0..4 {
            for v in 0..vectors {
                compressed.decompress_vector(0, v, &mut buf);
            }
        }
    });
    assert_eq!(allocs, 0, "ALP per-vector decode allocated after warm-up");
}

#[test]
fn baseline_codec_layer_is_allocation_free_after_warmup() {
    // The same guarantee one layer down, where the registry impls delegate:
    // `codecs::Codec::try_decompress_f64_into` over a caller-owned scratch.
    let data = sample(2 * alp::VECTOR_SIZE);
    let mut scratch = codecs::DecodeScratch::default();
    let mut out = Vec::new();
    for codec in codecs::Codec::EXTENDED {
        let bytes = codec.compress_f64(&data);
        for _ in 0..2 {
            codec
                .try_decompress_f64_into(&bytes, data.len(), &mut out, &mut scratch)
                .expect("warm");
        }
        let allocs = allocations_in(|| {
            for _ in 0..8 {
                codec
                    .try_decompress_f64_into(&bytes, data.len(), &mut out, &mut scratch)
                    .expect("decode");
            }
        });
        assert_eq!(allocs, 0, "{}: codec layer allocated after warm-up", codec.name());
    }
}
