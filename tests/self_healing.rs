//! Acceptance suite for the self-healing storage layer (DESIGN.md §16).
//!
//! Four guarantees, end to end:
//!
//! * (a) a parity-protected stream repairs *any* single corrupted data frame
//!   per group byte-identically, for every group size, at seed-derived
//!   corruption offsets (property test);
//! * (b) the three parity fault families uphold their contracts: one fault
//!   per group repairs, two faults in one group degrade to an honest loss
//!   report, a damaged parity frame costs no data;
//! * (c) the pipelined parity writer is byte-identical to the serial parity
//!   writer at every thread count × pipeline depth;
//! * (d) the query-service scrubber un-quarantines healed pages while query
//!   workers race it — results only ever improve (partial → complete, loss
//!   never grows), and the final result is complete and bit-identical to a
//!   never-poisoned store.
//!
//! Plus the registry-wide container check: every codec's `"ALPC"` envelope,
//! written with `ParityConfig { group_size: 4 }`, survives a corrupted
//! payload chunk and decodes byte-identically through the salvage path.
//!
//! Everything derives from `ALP_FAULT_SEED` (default 42 for corruption
//! offsets, 1 for poison plans) so CI sweeps seeds without recompiling.

use std::sync::Arc;

use alp::io::fault_seed;
use alp::pipeline::{PipelineConfig, PipelinedColumnWriter};
use alp::stream::{ColumnReader, ColumnWriter};
use alp::ParityConfig;
use alp_repro::corruption::{
    parity_fault_family, stream_frame_spans, ParityExpectation, SplitMix64,
};
use fastlanes::VECTOR_SIZE;
use proptest::prelude::*;
use vectorq::cache::CacheConfig;
use vectorq::scrub::ScrubOptions;
use vectorq::service::{PoisonPlan, QueryOptions, Service, ServiceConfig, Store};
use vectorq::{Column, Format};

/// 250 000 decimal-friendly values: two full row-groups plus a tail group.
fn dataset() -> Vec<f64> {
    (0..250_000).map(|i| ((i % 901) as f64) / 8.0 + (i / 901) as f64).collect()
}

/// A parity-protected `"ALPT"` stream over `data`.
fn parity_stream(data: &[f64], group_size: usize) -> Vec<u8> {
    let mut sink = Vec::new();
    let mut writer = ColumnWriter::<f64, _>::with_parity(&mut sink, ParityConfig { group_size })
        .expect("valid group size");
    writer.push(data).expect("clean push");
    writer.finish().expect("clean finish");
    sink
}

/// Drains `bytes` through the repairing salvage reader; returns the values
/// plus the loss and repair reports.
fn drain_salvaged(bytes: &[u8]) -> (Vec<f64>, Vec<usize>, Vec<usize>) {
    let mut reader = ColumnReader::<f64, _>::new(bytes).expect("open stream");
    let mut values = Vec::new();
    while let Some(chunk) = reader.next_rowgroup_salvaged().expect("salvage walk") {
        values.extend(chunk);
    }
    (values, reader.lost_rowgroups().to_vec(), reader.repaired_rowgroups().to_vec())
}

fn assert_bits_eq(expect: &[f64], got: &[f64], label: &str) {
    assert_eq!(expect.len(), got.len(), "{label}: length");
    for (i, (a, b)) in expect.iter().zip(got).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: value {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) For every group size and a seed-derived corruption offset inside
    /// a seed-picked data frame's body, the salvage reader reconstructs the
    /// stream byte-identically and names exactly the repaired row-group.
    #[test]
    fn any_single_corrupt_frame_per_group_repairs_byte_identically(
        gs_index in 0usize..3,
        frame_pick in any::<u64>(),
        offset_pick in any::<u64>(),
    ) {
        let group_size = [2usize, 4, 8][gs_index];
        let data = dataset();
        let clean = parity_stream(&data, group_size);

        let spans = stream_frame_spans(&clean);
        let data_frames: Vec<(usize, usize)> =
            spans.iter().filter(|&&(_, _, p)| !p).map(|&(s, e, _)| (s, e)).collect();
        prop_assert_eq!(data_frames.len(), 3);

        let victim = (frame_pick % data_frames.len() as u64) as usize;
        let (s, e) = data_frames[victim];
        // Land strictly inside the frame body, past the len|xxh64 prefix.
        let pos = s + 12 + (offset_pick % (e - s - 12) as u64) as usize;
        let mut bytes = clean.clone();
        bytes[pos] ^= 0xFF;

        let (values, lost, repaired) = drain_salvaged(&bytes);
        prop_assert!(lost.is_empty(), "group {group_size}, frame {victim}, byte {pos}: lost {lost:?}");
        prop_assert_eq!(repaired, vec![victim]);
        prop_assert_eq!(values.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&values).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "value {}", i);
        }
    }
}

/// (b) The seeded fault families against a group-size-4 stream: repairable
/// damage repairs bit-exactly, over-budget damage degrades to a loss report,
/// parity-only damage costs no data.
#[test]
fn parity_fault_families_uphold_their_contracts() {
    let seed = fault_seed(42);
    let data = dataset();
    let clean = parity_stream(&data, 4);

    let cases = parity_fault_family(&clean, seed);
    assert!(cases.len() >= 3, "expected all three fault families");
    for case in cases {
        let label = &case.label;
        let (values, lost, repaired) = drain_salvaged(&case.bytes);
        match case.expect {
            ParityExpectation::Repairs => {
                assert!(lost.is_empty(), "{label}: lost {lost:?}");
                assert!(!repaired.is_empty(), "{label}: nothing repaired");
                assert_bits_eq(&data, &values, label);
            }
            ParityExpectation::DegradesToLoss => {
                assert!(!lost.is_empty(), "{label}: over-budget damage went unreported");
                assert!(values.len() < data.len(), "{label}: loss not reflected in output");
            }
            ParityExpectation::DataClean => {
                assert!(lost.is_empty(), "{label}: lost {lost:?}");
                assert!(repaired.is_empty(), "{label}: repaired {repaired:?}");
                assert_bits_eq(&data, &values, label);
            }
        }
    }
}

/// (c) The pipelined parity writer commits the exact bytes of the serial
/// parity writer at every thread count × pipeline depth (PR-9 byte-identity
/// extended to the parity frames, which are folded in at the commit seam).
#[test]
fn pipelined_parity_is_byte_identical_across_threads_and_depths() {
    let data = dataset();
    let reference = parity_stream(&data, 4);

    for threads in [1usize, 2, 7] {
        for depth in [1usize, 2, 4] {
            let config = PipelineConfig { threads, depth, ..PipelineConfig::default() };
            let mut sink = Vec::new();
            let mut writer = PipelinedColumnWriter::<f64, _>::with_parity(
                &mut sink,
                config,
                ParityConfig { group_size: 4 },
            )
            .expect("valid parity config");
            writer.push(&data).expect("pipelined push");
            writer.finish().expect("pipelined finish");
            assert_eq!(
                sink, reference,
                "threads {threads} depth {depth}: pipelined parity stream diverged"
            );
        }
    }
}

/// Registry-wide container repair: every serializable codec's checksummed
/// `"ALPC"` envelope, written with parity group size 4, survives a corrupted
/// payload byte — the salvage read repairs the damaged chunk and decodes
/// byte-identically, while the strict read proves the damage was real.
#[test]
fn every_registry_codec_container_repairs_single_chunk_damage() {
    use alp_core::{try_read_container_into, Registry, Scratch};

    let seed = fault_seed(42);
    let data: Vec<f64> = (0..40_000).map(|i| ((i % 523) as f64) / 4.0).collect();
    let mut scratch = Scratch::new();
    for codec in Registry::all().iter().filter(|c| !c.caps().ratio_only) {
        let frame = alp_core::write_container_with_parity(
            *codec,
            &data,
            &mut scratch,
            ParityConfig { group_size: 4 },
        )
        .unwrap_or_else(|e| panic!("{}: parity container write failed: {e}", codec.id()));

        // Probe seed-derived offsets until one provably damages the strict
        // read (a flip inside the parity section would not), then demand the
        // salvage read repair it.
        let mut rng = SplitMix64::new(seed ^ alp::hash::xxh64(codec.id().as_bytes(), 2));
        let mut out = Vec::new();
        let mut repaired_one = false;
        for _ in 0..64 {
            let pos = 16 + rng.below(frame.len() - 16);
            let mut bytes = frame.clone();
            bytes[pos] ^= 0xFF;
            if try_read_container_into(&bytes, &mut out, &mut scratch).is_ok() {
                continue; // flip landed outside the checksummed payload
            }
            let salvage = alp_core::try_read_container_salvaged(&bytes, &mut out, &mut scratch, 2)
                .unwrap_or_else(|e| panic!("{}: repair at byte {pos} failed: {e}", codec.id()));
            assert!(
                !salvage.repaired_chunks.is_empty(),
                "{}: salvage at byte {pos} repaired nothing",
                codec.id()
            );
            assert_bits_eq(&data, &out, codec.id());
            repaired_one = true;
            break;
        }
        assert!(repaired_one, "{}: no probe damaged the strict read", codec.id());
    }
}

/// (d) The concurrent healing drill: a poisoned store serves partial results;
/// after the fault heals, a scrubber un-quarantines pages while 8 query
/// workers race it. Loss must shrink monotonically per worker, and the final
/// result must be complete and bit-identical to a never-poisoned store.
#[test]
fn scrubber_heals_pages_while_query_workers_race() {
    let data: Vec<f64> = (0..60 * 10 * VECTOR_SIZE).map(|i| ((i % 9173) as f64) / 100.0).collect();
    let cache = CacheConfig {
        max_entries: 8,
        page_size_rows: 10 * VECTOR_SIZE,
        max_bytes: 6 * 10 * VECTOR_SIZE * 8,
    };
    let poison = PoisonPlan::seeded(fault_seed(1));
    let pages = data.len().div_ceil(10 * VECTOR_SIZE);
    let expected_bad: Vec<usize> = (0..pages).filter(|&p| poison.poisons(p)).collect();
    assert!(
        !expected_bad.is_empty(),
        "seed poisons no page out of {pages}; pick a different ALP_FAULT_SEED"
    );

    let store = Arc::new(Store::with_poison(Column::from_f64(&data, Format::alp()), cache, poison));
    let service = Service::new(
        Arc::clone(&store),
        ServiceConfig { max_concurrent: 9, max_queued: 64, threads: 2 },
    );

    // Reference: the same column, never poisoned.
    let clean_store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), cache));
    let clean = Service::new(clean_store, ServiceConfig::default())
        .sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default())
        .expect("clean reference query");
    assert!(clean.loss.is_complete());

    // Detect + contain: the first full scan quarantines the poisoned pages
    // and degrades to a partial result.
    let opts = QueryOptions::default();
    let first = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &opts).expect("first query");
    assert!(!first.loss.is_complete(), "poisoned store served a complete result");
    assert_eq!(store.quarantined_pages(), expected_bad);

    // Heal the underlying fault, then race the scrubber against 8 workers.
    store.heal_poison();
    std::thread::scope(|scope| {
        let service = &service;
        scope.spawn(move || {
            // Repair: scrub until the quarantine drains. Each pass
            // re-verifies every quarantined page, so one pass suffices once
            // the fault is healed; the loop guards against scheduling races.
            while !service.store().quarantined_pages().is_empty() {
                let report = service.scrub_once(&ScrubOptions::default());
                assert!(!report.cancelled, "scrub pass cancelled without a deadline");
            }
        });
        for worker in 0..8usize {
            scope.spawn(move || {
                let mut last_lost = usize::MAX;
                for round in 0..20 {
                    let result = service
                        .sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default())
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    let lost = result.loss.rows_lost();
                    assert!(
                        lost <= last_lost,
                        "worker {worker} round {round}: loss regressed {last_lost} -> {lost}"
                    );
                    last_lost = lost;
                }
            });
        }
    });

    // After the race: fully healed, complete, and bit-identical to the
    // never-poisoned store — with the scrub counters on the report.
    assert!(store.quarantined_pages().is_empty());
    let healed = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &opts).expect("healed query");
    assert!(healed.loss.is_complete(), "healed store still partial: {:?}", healed.loss.pages);
    assert_eq!(healed.value.sum.to_bits(), clean.value.sum.to_bits());
    assert_eq!(healed.value.matches, clean.value.matches);
    assert!(healed.loss.scrub_repaired >= expected_bad.len() as u64);
    assert!(healed.loss.scrub_checked >= healed.loss.scrub_repaired);
}
