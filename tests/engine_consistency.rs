//! Integration: the vectorized engine must produce identical query answers
//! over every storage format and at every parallelism level.

use vectorq::{Column, Format};

/// Every storage format the engine supports: raw plus every registered,
/// serializable codec.
fn all_formats() -> Vec<Format> {
    let mut f = vec![Format::Uncompressed];
    f.extend(alp_core::Registry::all().iter().filter_map(|c| Format::by_id(c.id())));
    f
}

#[test]
fn sums_agree_across_formats_on_diverse_datasets() {
    for name in ["City-Temp", "Gov/26", "Blockchain", "POI-lat", "CMS/9"] {
        let data = datagen::generate(name, 150_000, 5);
        let reference: f64 = data.iter().sum();
        for fmt in all_formats() {
            let col = Column::from_f64(&data, fmt);
            let got = col.sum();
            let tolerance = reference.abs().max(1.0) * 1e-9;
            assert!(
                (got - reference).abs() <= tolerance,
                "{name} via {}: {got} vs {reference}",
                fmt.name()
            );
        }
    }
}

#[test]
fn scan_counts_are_exact() {
    let data = datagen::generate("Stocks-DE", 123_457, 5); // deliberately odd length
    for fmt in all_formats() {
        let col = Column::from_f64(&data, fmt);
        assert_eq!(col.scan(), data.len(), "{}", fmt.name());
    }
}

#[test]
fn parallelism_does_not_change_answers() {
    let data = datagen::generate("Food-prices", 400_000, 5);
    let col = Column::from_f64(&data, Format::alp());
    let serial = col.sum();
    for threads in [2, 3, 4, 8] {
        let parallel = col.par_sum(threads);
        assert!(
            (serial - parallel).abs() <= serial.abs() * 1e-9,
            "threads {threads}: {parallel} vs {serial}"
        );
        assert_eq!(col.par_scan(threads), data.len());
    }
}

#[test]
fn compressed_footprints_rank_sensibly_on_decimals() {
    // On a classic decimal dataset ALP must compress, and must beat the
    // XOR codecs clearly (the paper's Table 4 shape).
    let data = datagen::generate("City-Temp", 300_000, 5);
    let raw = Column::from_f64(&data, Format::Uncompressed).compressed_bytes();
    let alp = Column::from_f64(&data, Format::alp()).compressed_bytes();
    let gorilla = Column::from_f64(&data, Format::by_id("gorilla").unwrap()).compressed_bytes();
    assert!(alp * 3 < raw, "ALP {alp} vs raw {raw}");
    assert!(alp < gorilla, "ALP {alp} vs Gorilla {gorilla}");
}
