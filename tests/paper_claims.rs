//! Integration: qualitative claims of the paper that must hold on the
//! synthetic datasets — who wins, roughly by how much, and where the
//! adaptive switches fall. (Absolute numbers live in EXPERIMENTS.md; these
//! tests pin the *shape*.)

use alp::Compressor;

fn bits_per_value_alp(data: &[f64]) -> f64 {
    Compressor::new().compress(data).bits_per_value()
}

fn bits_per_value_codec(codec: codecs::Codec, data: &[f64]) -> f64 {
    codec.compress_f64(data).len() as f64 * 8.0 / data.len() as f64
}

#[test]
fn alp_beats_gorilla_and_chimp_on_every_decimal_dataset() {
    // Table 4: ALP is better than Gorilla and Chimp essentially everywhere.
    for ds in &datagen::DATASETS {
        if matches!(ds.name, "POI-lat" | "POI-lon") {
            continue; // real doubles: covered separately below
        }
        let data = datagen::generate(ds.name, 120_000, 17);
        let alp = bits_per_value_alp(&data);
        let gorilla = bits_per_value_codec(codecs::Codec::Gorilla, &data);
        assert!(alp < gorilla, "{}: ALP {alp:.1} vs Gorilla {gorilla:.1}", ds.name);
    }
}

#[test]
fn alp_rd_takes_over_on_real_doubles_and_still_wins() {
    // §4.1: POI datasets switch to ALP_rd and beat every float codec.
    for name in ["POI-lat", "POI-lon"] {
        let data = datagen::generate(name, 120_000, 17);
        let compressed = Compressor::new().compress(&data);
        assert!(compressed.stats.rowgroups_rd > 0, "{name} should use ALP_rd");
        let alp = compressed.bits_per_value();
        for codec in codecs::Codec::ALL {
            let other = bits_per_value_codec(codec, &data);
            assert!(alp < other + 0.5, "{name}: ALP_rd {alp:.1} vs {} {other:.1}", codec.name());
        }
    }
}

#[test]
fn decimal_time_series_compress_below_half() {
    // Table 4 TS average: ALP ≈ 16 bits/value. Allow generous slack for the
    // synthetic data, but require substantial compression.
    let mut total = 0.0;
    let mut count = 0;
    for ds in datagen::DATASETS.iter().filter(|d| d.time_series) {
        let data = datagen::generate(ds.name, 120_000, 17);
        total += bits_per_value_alp(&data);
        count += 1;
    }
    let avg = total / count as f64;
    assert!(avg < 32.0, "TS average {avg:.1} bits/value");
}

#[test]
fn sparse_gov_columns_compress_to_almost_nothing() {
    // Table 4: Gov/26 and Gov/40 reach < 1 bit/value with ALP.
    // (Paper: 0.4 and 0.8 bits/value. The synthetic generators draw burst
    // lengths with high variance, so individual realizations can carry more
    // non-zeros than the long-run average — the bound stays loose.)
    for name in ["Gov/26", "Gov/40"] {
        let data = datagen::generate(name, 200_000, 17);
        let bpv = bits_per_value_alp(&data);
        assert!(bpv < 6.0, "{name}: {bpv:.2} bits/value");
    }
}

#[test]
fn cascade_improves_on_duplicate_heavy_datasets() {
    // Table 4's LWC+ALP column: dictionary/RLE cascades help on repetitive
    // columns and never hurt.
    for name in ["Gov/26", "SD-bench", "PM10-dust"] {
        let data = datagen::generate(name, 150_000, 17);
        let plain = Compressor::new().compress(&data).bits_per_value();
        let cascade = alp::cascade::CascadeCompressor::new().compress(&data).bits_per_value();
        assert!(cascade <= plain + 1e-9, "{name}: cascade {cascade:.2} vs plain {plain:.2}");
    }
}

#[test]
fn elf_trades_ratio_for_speed_against_chimp() {
    // §5: Elf gains ratio over Chimp128 on decimal data while being slower.
    let data = datagen::generate("Dew-Temp", 80_000, 17);
    let elf = bits_per_value_codec(codecs::Codec::Elf, &data);
    let chimp = bits_per_value_codec(codecs::Codec::Chimp, &data);
    assert!(elf < chimp, "Elf {elf:.1} vs Chimp {chimp:.1}");
}

#[test]
fn chimp128_beats_chimp_on_windowed_duplicates() {
    // §5: the 128-value window pays off when equal values recur within it.
    let data = datagen::generate("Stocks-USA", 120_000, 17);
    let c128 = bits_per_value_codec(codecs::Codec::Chimp128, &data);
    let chimp = bits_per_value_codec(codecs::Codec::Chimp, &data);
    assert!(c128 < chimp, "Chimp128 {c128:.1} vs Chimp {chimp:.1}");
}

#[test]
fn gorilla_wins_back_on_zero_runs() {
    // §5's observation: on Gov/26-style consecutive zeros, Gorilla/Chimp beat
    // Chimp128 because the previous value is the perfect reference.
    let data = datagen::generate("Gov/26", 150_000, 17);
    let gorilla = bits_per_value_codec(codecs::Codec::Gorilla, &data);
    let c128 = bits_per_value_codec(codecs::Codec::Chimp128, &data);
    assert!(gorilla < c128, "Gorilla {gorilla:.1} vs Chimp128 {c128:.1}");
}

#[test]
fn alp_decompression_is_much_faster_than_xor_codecs() {
    // The headline speed claim, asserted loosely: ALP decodes at least 5x
    // faster than Chimp on a decimal dataset. (The measured gap is far
    // larger in release mode; the weak bound keeps the test robust.)
    if cfg!(debug_assertions) {
        return; // timing assertions are meaningless un-optimized
    }
    let data = datagen::generate("City-Temp", alp::VECTOR_SIZE, 17);
    let v = {
        let c = Compressor::new().compress(&data);
        match &c.rowgroups[0] {
            alp::RowGroup::Alp(g) => g.owned_vector(0).expect("non-empty row-group"),
            _ => panic!("expected ALP row-group"),
        }
    };
    let mut out = vec![0.0f64; alp::VECTOR_SIZE];
    let reps = 2000;

    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        alp::decode::decode_vector(&v, v.view(), &mut out);
        std::hint::black_box(&out);
    }
    let alp_time = t0.elapsed();

    let chimp_bytes = codecs::Codec::Chimp.compress_f64(&data);
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(codecs::Codec::Chimp.decompress_f64(&chimp_bytes, data.len()));
    }
    let chimp_time = t0.elapsed();

    assert!(chimp_time > alp_time * 5, "ALP {alp_time:?} vs Chimp {chimp_time:?}");
}

#[test]
fn patas_trades_ratio_for_speed_against_chimp128() {
    // §5: Patas's byte alignment costs compression ratio relative to
    // Chimp128 — on every dataset.
    let mut patas_worse = 0;
    let mut total = 0;
    for ds in &datagen::DATASETS {
        let data = datagen::generate(ds.name, 60_000, 17);
        let patas = bits_per_value_codec(codecs::Codec::Patas, &data);
        let c128 = bits_per_value_codec(codecs::Codec::Chimp128, &data);
        total += 1;
        patas_worse += (patas > c128) as i32;
    }
    assert!(patas_worse * 10 >= total * 9, "{patas_worse}/{total}");
}

#[test]
fn zstd_stand_in_has_competitive_ratio() {
    // Figure 1 / Table 4: the general-purpose compressor matches or beats
    // every XOR codec's ratio on typical decimal datasets.
    for name in ["City-Temp", "Stocks-DE", "Bio-Temp"] {
        let data = datagen::generate(name, 120_000, 17);
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let z = gpzip::compress(&raw).len() as f64 * 8.0 / data.len() as f64;
        let chimp128 = bits_per_value_codec(codecs::Codec::Chimp128, &data);
        assert!(z < chimp128 * 1.05, "{name}: zstd* {z:.1} vs chimp128 {chimp128:.1}");
    }
}

#[test]
fn fpc_lands_between_gorilla_and_alp() {
    // Related-work positioning: the predictive scheme beats raw and plain
    // Gorilla on predictable time series but not ALP.
    let data = datagen::generate("Air-Pressure", 120_000, 17);
    let fpc = bits_per_value_codec(codecs::Codec::Fpc, &data);
    let gorilla = bits_per_value_codec(codecs::Codec::Gorilla, &data);
    let alp = bits_per_value_alp(&data);
    assert!(fpc < 64.0, "fpc {fpc:.1}");
    assert!(fpc < gorilla, "fpc {fpc:.1} vs gorilla {gorilla:.1}");
    assert!(alp < fpc, "alp {alp:.1} vs fpc {fpc:.1}");
}

#[test]
fn gpzip_fast_mode_trades_ratio_for_speed() {
    // §1: LZ4-class compressors sit on the fast/low-ratio end of the
    // general-purpose spectrum.
    let data = datagen::generate("City-Temp", 200_000, 17);
    let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let full = gpzip::compress(&raw).len();
    let fast = gpzip::fast::compress(&raw).len();
    assert!(fast >= full, "fast {fast} vs full {full}");
    assert!(fast < raw.len(), "fast mode should still compress");
}

#[test]
fn ml_weights_favor_alp_rd32() {
    // Table 7: ALP_rd32 compresses ML weights below 32 bits while XOR codecs
    // expand or barely break even.
    let weights = datagen::ml_weights_f32(200_000, 17);
    let compressed = Compressor::new().compress(&weights);
    assert!(compressed.stats.rowgroups_rd > 0);
    let alp = compressed.bits_per_value();
    assert!(alp < 32.0, "ALP_rd32 {alp:.1}");
    let patas = codecs::Codec::Patas.compress_f32(&weights).unwrap().len() as f64 * 8.0
        / weights.len() as f64;
    assert!(alp < patas, "ALP_rd32 {alp:.1} vs Patas {patas:.1}");
}
