//! Registry-driven losslessness over the columns that break codecs in
//! practice: empty input, a single value, all-NaN, negative zero, subnormals,
//! and lengths straddling the 1024-value vector boundary. One suite covers
//! every registered codec — adding a codec to `alp_core::Registry` adds it
//! here with no edits — plus a property-based sweep over mixed bit patterns.

use alp_core::{ColumnCodec, CoreError, Registry, Scratch};
use proptest::collection::vec;
use proptest::prelude::*;

/// The deterministic edge-case columns every codec must survive.
///
/// Lengths bracket the paper's 1024-value vector: one under, exact, one over,
/// and a multi-vector column with a ragged tail.
fn edge_columns() -> Vec<(&'static str, Vec<f64>)> {
    let vs = alp::VECTOR_SIZE;
    vec![
        ("empty", Vec::new()),
        ("single value", vec![3.25]),
        ("single NaN", vec![f64::NAN]),
        ("all NaN", vec![f64::NAN; vs + 3]),
        ("negative zero", vec![-0.0; 100]),
        ("mixed zeros", (0..200).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }).collect()),
        ("subnormals", (1..300).map(|i| f64::from_bits(i as u64)).collect()),
        ("vector boundary - 1", (0..vs - 1).map(|i| i as f64 / 100.0).collect()),
        ("vector boundary exact", (0..vs).map(|i| i as f64 / 100.0).collect()),
        ("vector boundary + 1", (0..vs + 1).map(|i| i as f64 / 100.0).collect()),
        ("ragged multi-vector", (0..3 * vs + 17).map(|i| (i as f64) * 0.005 - 9.5).collect()),
    ]
}

fn assert_bits_eq(label: &str, codec: &dyn ColumnCodec, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{}: {label}: length drift", codec.id());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: {label}: value {i} not bit-exact ({x} vs {y})",
            codec.id()
        );
    }
}

/// Roundtrips one column through one codec's byte path, tolerating only the
/// documented refusals (ratio-only codecs never serialize).
fn roundtrip(codec: &dyn ColumnCodec, label: &str, data: &[f64], scratch: &mut Scratch) {
    let mut bytes = Vec::new();
    match codec.try_compress_into(data, &mut bytes, scratch) {
        Ok(()) => {}
        Err(CoreError::Unsupported { .. }) if codec.caps().ratio_only => return,
        Err(e) => panic!("{}: {label}: compress failed: {e}", codec.id()),
    }
    let mut out = Vec::new();
    codec
        .try_decompress_into(&bytes, data.len(), &mut out, scratch)
        .unwrap_or_else(|e| panic!("{}: {label}: decompress failed: {e}", codec.id()));
    assert_bits_eq(label, codec, data, &out);
}

#[test]
fn every_codec_roundtrips_every_edge_column() {
    let mut scratch = Scratch::new();
    for (label, data) in edge_columns() {
        for codec in Registry::all() {
            roundtrip(*codec, label, &data, &mut scratch);
        }
    }
}

#[test]
fn every_ratio_codec_measures_every_edge_column() {
    // Codecs that cannot serialize must still *measure* the edge columns:
    // `verified_compressed_bits` internally roundtrips and checks bit
    // equality, so ratio-only schemes get the same losslessness guarantee.
    let mut scratch = Scratch::new();
    for (label, data) in edge_columns() {
        if data.is_empty() {
            continue; // ratio of an empty column is a bench-layer error
        }
        for codec in Registry::all() {
            let bits = codec
                .verified_compressed_bits(&data, &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {label}: measure failed: {e}", codec.id()));
            assert!(bits > 0, "{}: {label}: zero-size claim", codec.id());
        }
    }
}

#[test]
fn f32_capable_codecs_roundtrip_edge_columns() {
    let vs = alp::VECTOR_SIZE;
    let columns: Vec<(&str, Vec<f32>)> = vec![
        ("empty", Vec::new()),
        ("single value", vec![-7.5]),
        ("all NaN", vec![f32::NAN; 40]),
        ("negative zero", vec![-0.0; 40]),
        ("subnormals", (1..200).map(|i| f32::from_bits(i as u32)).collect()),
        ("vector boundary", (0..vs + 1).map(|i| i as f32 / 4.0).collect()),
    ];
    let mut scratch = Scratch::new();
    for (label, data) in &columns {
        for codec in Registry::all().iter().filter(|c| c.caps().f32) {
            let mut bytes = Vec::new();
            codec
                .try_compress_f32_into(data, &mut bytes, &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {label}: f32 compress failed: {e}", codec.id()));
            let mut out = Vec::new();
            codec
                .try_decompress_f32_into(&bytes, data.len(), &mut out, &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {label}: f32 decompress failed: {e}", codec.id()));
            assert_eq!(data.len(), out.len(), "{}: {label}", codec.id());
            for (i, (x, y)) in data.iter().zip(&out).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: {label}: value {i} not bit-exact",
                    codec.id()
                );
            }
        }
    }
}

/// Mixed doubles: mostly decimals (ALP's target) with raw bit patterns mixed
/// in so NaN payloads, infinities, and subnormals appear organically.
fn mixed_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => (any::<i32>(), 0u32..10).prop_map(|(d, p)| d as f64 / 10f64.powi(p as i32)),
        1 => any::<u64>().prop_map(f64::from_bits),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_codec_roundtrips_arbitrary_columns(data in vec(mixed_f64(), 0..2600)) {
        let mut scratch = Scratch::new();
        for codec in Registry::all() {
            roundtrip(*codec, "proptest column", &data, &mut scratch);
        }
    }
}
