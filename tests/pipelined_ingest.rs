//! Pipelined-ingest equivalence suite: the `PipelinedColumnWriter` must
//! produce byte-for-byte the same `"ALPT"` stream as the serial
//! `ColumnWriter` at every thread count and pipeline depth — including under
//! `ALP_FAULT_SEED`-driven transient sink faults — and must degrade to the
//! same torn-tail shapes (salvage-readable whole-frame prefix, never a torn
//! frame) under hard faults and quarantined worker panics.

use alp::io::{fault_seed, FaultPlan, FaultyWrite};
use alp::pipeline::{IngestError, PipelineConfig, PipelinedColumnWriter};
use alp::stream::{ColumnReader, ColumnWriter};
use alp::SamplerParams;
use alp_repro::corruption::transient_plans;

/// Small row-groups (4 × 1024 values) keep the sweep cheap while giving the
/// pipeline several frames to keep in flight.
const ROWGROUP: usize = 4 * 1024;
/// Six full row-groups plus a ragged 1500-value tail: seven frames.
const VALUES: usize = 6 * ROWGROUP + 1500;

const THREADS: [usize; 3] = [1, 2, 7];
const DEPTHS: [usize; 3] = [1, 2, 4];

fn params() -> SamplerParams {
    SamplerParams { vectors_per_rowgroup: 4, sample_vectors: 2, ..SamplerParams::default() }
}

fn dataset() -> Vec<f64> {
    (0..VALUES).map(|i| ((i % 577) as f64) * 0.25 + (i / 577) as f64).collect()
}

fn serial_stream(data: &[f64]) -> Vec<u8> {
    let mut sink = Vec::new();
    let mut writer =
        ColumnWriter::<f64, _>::with_params(&mut sink, params()).expect("valid params");
    writer.push(data).expect("push");
    writer.finish().expect("finish");
    sink
}

fn pipelined_stream(data: &[f64], threads: usize, depth: usize, chunk: usize) -> Vec<u8> {
    let mut sink = Vec::new();
    let config = PipelineConfig { threads, depth, panic_at: None };
    let mut writer = PipelinedColumnWriter::<f64, _>::with_params(&mut sink, params(), config)
        .expect("valid params");
    for c in data.chunks(chunk) {
        writer.push(c).expect("push");
    }
    let summary = writer.finish().expect("finish");
    assert_eq!(summary.values, data.len());
    assert_eq!(summary.total_bytes, sink.len(), "summary must match sink length");
    sink
}

/// The headline equivalence claim: every (threads, depth) combination, fed
/// with ragged pushes, produces the identical stream — frames, terminator,
/// and commit footer.
#[test]
fn pipelined_matches_serial_across_threads_and_depths() {
    let data = dataset();
    let serial = serial_stream(&data);
    for threads in THREADS {
        for depth in DEPTHS {
            let pipelined = pipelined_stream(&data, threads, depth, 1777);
            assert_eq!(
                pipelined, serial,
                "threads={threads} depth={depth}: pipelined stream diverged"
            );
        }
    }
}

/// Push granularity must not matter: one giant push, value-at-a-time
/// pushes, and row-group-aligned pushes all land on the same bytes.
#[test]
fn pipelined_is_insensitive_to_push_chunking() {
    let data = dataset();
    let serial = serial_stream(&data);
    for chunk in [VALUES, ROWGROUP, 999] {
        let pipelined = pipelined_stream(&data, 4, 2, chunk);
        assert_eq!(pipelined, serial, "chunk={chunk}: pipelined stream diverged");
    }
}

/// A column shorter than one row-group (pure ragged tail) and an exact
/// row-group multiple both round the pipeline unchanged.
#[test]
fn pipelined_handles_tail_only_and_aligned_columns() {
    for values in [137usize, ROWGROUP, 3 * ROWGROUP] {
        let data: Vec<f64> = (0..values).map(|i| (i % 91) as f64 / 4.0).collect();
        let serial = serial_stream(&data);
        let pipelined = pipelined_stream(&data, 3, 2, 500);
        assert_eq!(pipelined, serial, "values={values}: pipelined stream diverged");
    }
}

/// Transient sink faults (retryable `Interrupted`/`WouldBlock`/short writes,
/// plans derived from `ALP_FAULT_SEED`) are absorbed by the inner writer's
/// retry policy: the faulty-sink pipelined stream stays byte-identical.
#[test]
fn pipelined_absorbs_transient_write_faults() {
    let seed = fault_seed(42);
    let data = dataset();
    let serial = serial_stream(&data);
    for (label, plan) in transient_plans(seed) {
        for threads in [2usize, 7] {
            let mut sink = FaultyWrite::new(Vec::new(), plan);
            let config = PipelineConfig { threads, depth: 2, panic_at: None };
            let mut writer =
                PipelinedColumnWriter::<f64, _>::with_params(&mut sink, params(), config)
                    .expect("valid params");
            for c in data.chunks(2048) {
                writer.push(c).unwrap_or_else(|e| panic!("{label}: push failed: {e}"));
            }
            writer.finish().unwrap_or_else(|e| panic!("{label}: finish failed: {e}"));
            assert_eq!(
                sink.into_inner(),
                serial,
                "{label} threads={threads}: faulty-sink stream diverged"
            );
        }
    }
}

/// A torn write — the process dying mid-stream — surfaces as a typed I/O
/// error from the pipelined writer, persists exactly the bytes before the
/// tear, and salvage-reads to the committed whole-frame prefix.
#[test]
fn pipelined_torn_write_salvages_committed_prefix() {
    let seed = fault_seed(42);
    let data = dataset();
    let serial = serial_stream(&data);
    // Tear mid-way through the stream: inside some frame's payload.
    let torn = serial.len() / 2;
    let plan = FaultPlan::clean(seed).with_torn_write_at(torn as u64);
    let mut sink = FaultyWrite::new(Vec::new(), plan);
    let config = PipelineConfig { threads: 4, depth: 2, panic_at: None };
    let mut writer = PipelinedColumnWriter::<f64, _>::with_params(&mut sink, params(), config)
        .expect("valid params");
    let mut died = Ok(());
    for c in data.chunks(2048) {
        died = writer.push(c).and(died);
        if died.is_err() {
            break;
        }
    }
    let died = match died {
        Err(e) => {
            drop(writer);
            Err(e)
        }
        Ok(()) => writer.finish().map(|_| ()),
    };
    match died {
        Err(IngestError::Io(_)) => {}
        other => panic!("a torn write must surface IngestError::Io, got {other:?}"),
    }

    let torn_bytes = sink.into_inner();
    assert_eq!(torn_bytes.len(), torn, "exactly the pre-tear bytes persist");
    assert_eq!(torn_bytes[..], serial[..torn], "persisted prefix matches the clean stream");
    let mut reader = ColumnReader::<f64, _>::new(torn_bytes.as_slice()).expect("open torn");
    let mut restored = Vec::new();
    while let Some(values) = reader.next_rowgroup_salvaged().expect("salvage torn") {
        restored.extend(values);
    }
    assert!(!reader.is_committed(), "a torn stream must not read as committed");
    assert_eq!(restored.len() % ROWGROUP, 0, "only whole committed row-groups come back");
    for (i, (a, b)) in data.iter().zip(&restored).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "salvaged value {i}");
    }
}

/// A worker panic is quarantined by the morsel scheduler and surfaces as
/// `IngestError::Poisoned` carrying the row-group sequence number; the sink
/// holds only whole frames from before the poisoned row-group.
#[test]
fn worker_panic_quarantines_and_leaves_salvageable_sink() {
    let data = dataset();
    let poison_seq = 3u64;
    let mut sink = Vec::new();
    let config = PipelineConfig { threads: 4, depth: 2, panic_at: Some(poison_seq) };
    let mut writer = PipelinedColumnWriter::<f64, _>::with_params(&mut sink, params(), config)
        .expect("valid params");
    let mut outcome = Ok(());
    for c in data.chunks(2048) {
        outcome = writer.push(c);
        if outcome.is_err() {
            break;
        }
    }
    let err = match outcome {
        Err(e) => {
            drop(writer);
            e
        }
        Ok(()) => match writer.finish() {
            Err(e) => e,
            Ok(_) => panic!("the injected panic must surface from push or finish"),
        },
    };
    match err {
        IngestError::Poisoned(failure) => {
            assert_eq!(failure.morsel, poison_seq as usize, "failure names the row-group");
            assert!(
                failure.message.contains("injected pipeline fault"),
                "failure carries the rendered panic message, got {:?}",
                failure.message
            );
        }
        other => panic!("expected IngestError::Poisoned, got {other:?}"),
    }

    // Never a torn frame: the sink salvage-reads to a whole-row-group prefix
    // of the column, and only row-groups before the poisoned one.
    let mut reader = ColumnReader::<f64, _>::new(sink.as_slice()).expect("open poisoned sink");
    let mut restored = Vec::new();
    while let Some(values) = reader.next_rowgroup_salvaged().expect("salvage poisoned") {
        restored.extend(values);
    }
    assert!(!reader.is_committed(), "a poisoned stream is never committed");
    assert!(restored.len() <= poison_seq as usize * ROWGROUP);
    assert_eq!(restored.len() % ROWGROUP, 0, "only whole frames reach the sink");
    for (i, (a, b)) in data.iter().zip(&restored).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "committed-prefix value {i}");
    }
}
