//! Concurrent stress suite for `vectorq::service` (DESIGN.md §12): many OS
//! threads hammering one shared [`Store`] must produce results byte-identical
//! to serial execution, respect the cache's hard memory ceiling, surface
//! overload and deadlines as typed errors, and — under `ALP_FAULT_SEED`
//! injection — quarantine exactly the poisoned pages while every healthy
//! page keeps being served. Zero panics escape: a panicking page is
//! contained at the morsel boundary and the query degrades to a partial.
//!
//! The fault variants derive their poison plan from `ALP_FAULT_SEED`
//! (defaulting to seed 1), so CI can sweep seeds without recompiling.

use std::sync::Arc;
use std::time::Duration;

use alp::io::fault_seed;
use fastlanes::VECTOR_SIZE;
use vectorq::cache::CacheConfig;
use vectorq::service::{
    LossReason, PoisonPlan, QueryOptions, Service, ServiceConfig, ServiceError, Store,
};
use vectorq::{Column, Format};

/// Deterministic scheme-mixed data: decimal-ish values with occasional
/// high-precision outliers, no RNG required.
fn dataset(n: usize) -> Vec<f64> {
    (0..n)
        .map(
            |i| {
                if i % 777 == 776 {
                    (i as f64).sqrt() * 1e-6
                } else {
                    ((i % 9173) as f64) / 100.0
                }
            },
        )
        .collect()
}

/// Small pages (10 vectors) so a modest column spans dozens of pages, and a
/// deliberately tight cache so eviction pressure is constant.
fn tight_cache() -> CacheConfig {
    CacheConfig {
        max_entries: 8,
        page_size_rows: 10 * VECTOR_SIZE,
        max_bytes: 6 * 10 * VECTOR_SIZE * 8, // six pages' worth of f64s
    }
}

/// The mixed query workload: selective, broad, empty, and unbounded ranges.
const PREDICATES: &[(f64, f64)] = &[
    (10.0, 20.0),
    (0.0, 91.73),
    (500.0, 400.0), // empty range
    (f64::NEG_INFINITY, f64::INFINITY),
    (90.0, 90.0),
];

#[test]
fn concurrent_mixed_queries_are_byte_identical_to_serial() {
    let data = dataset(50 * 10 * VECTOR_SIZE + 700);
    let store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache()));
    let service = Service::new(
        Arc::clone(&store),
        ServiceConfig { max_concurrent: 8, max_queued: 64, threads: 2 },
    );

    // Serial reference on an identical but separate store (its own cache).
    let ref_store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache()));
    let ref_service =
        Service::new(ref_store, ServiceConfig { threads: 1, ..ServiceConfig::default() });
    let serial: Vec<_> = PREDICATES
        .iter()
        .map(|(lo, hi)| ref_service.sum_where(*lo, *hi, &QueryOptions::default()).unwrap())
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8usize {
            let service = &service;
            let serial = &serial;
            scope.spawn(move || {
                // Each worker runs the whole mix, rotated so different
                // predicates overlap in time across workers.
                for round in 0..3 {
                    for k in 0..PREDICATES.len() {
                        let idx = (k + worker + round) % PREDICATES.len();
                        let (lo, hi) = PREDICATES[idx];
                        let got = service.sum_where(lo, hi, &QueryOptions::default()).unwrap();
                        let want = &serial[idx];
                        assert!(got.loss.is_complete());
                        assert_eq!(got.value.matches, want.value.matches);
                        assert_eq!(
                            got.value.sum.to_bits(),
                            want.value.sum.to_bits(),
                            "predicate {idx} diverged from serial"
                        );
                    }
                }
            });
        }
    });

    // The hard ceilings held under all that pressure.
    let cfg = tight_cache();
    let stats = store.cache_stats();
    assert!(
        stats.bytes_peak <= cfg.max_bytes,
        "peak {} > ceiling {}",
        stats.bytes_peak,
        cfg.max_bytes
    );
    assert!(stats.entries <= cfg.max_entries);
    assert!(stats.hits > 0, "a 50-page column under an 8-page cache should still see reuse");
    assert!(stats.evictions > 0, "the tight cache must have evicted under pressure");
}

#[test]
fn thread_count_and_cache_state_never_change_query_bits() {
    let data = dataset(30 * 10 * VECTOR_SIZE);
    let store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache()));
    let service = Service::new(store, ServiceConfig::default());
    for (lo, hi) in PREDICATES {
        let mut bits = None;
        for threads in [1, 2, 7] {
            let opts = QueryOptions { threads: Some(threads), ..QueryOptions::default() };
            let r = service.sum_where(*lo, *hi, &opts).unwrap();
            let b = (r.value.sum.to_bits(), r.value.matches);
            match bits {
                None => bits = Some(b),
                Some(prev) => assert_eq!(prev, b, "t={threads} lo={lo} hi={hi}"),
            }
        }
    }
}

/// Block-based storage (GPZip) flows through the same service seam.
#[test]
fn block_granular_formats_serve_identically() {
    let data = dataset(3 * 100 * VECTOR_SIZE);
    let cache = CacheConfig {
        max_entries: 4,
        page_size_rows: 100 * VECTOR_SIZE, // one page per row-group block
        max_bytes: 64 << 20,
    };
    let column = Column::from_f64(&data, Format::by_id("gpzip").unwrap());
    let direct = column.sum_where(10.0, 20.0);
    let service = Service::new(Arc::new(Store::new(column, cache)), ServiceConfig::default());
    let r = service.sum_where(10.0, 20.0, &QueryOptions::default()).unwrap();
    assert!(r.loss.is_complete());
    assert_eq!(r.value.matches, direct.matches);
    assert_eq!(r.value.sum.to_bits(), direct.sum.to_bits());
}

#[test]
fn fault_injected_store_quarantines_and_degrades_without_panicking() {
    // CI sweeps ALP_FAULT_SEED; default to 1 locally.
    let seed = fault_seed(1);
    let poison = PoisonPlan::seeded(seed);
    let data = dataset(40 * 10 * VECTOR_SIZE);
    let store =
        Arc::new(Store::with_poison(Column::from_f64(&data, Format::alp()), tight_cache(), poison));
    let expected_bad: Vec<usize> = (0..store.pages()).filter(|p| poison.poisons(*p)).collect();
    assert!(
        !expected_bad.is_empty(),
        "seed {seed} poisoned no pages in {} — pick a different seed",
        store.pages()
    );
    let lost_rows: usize = expected_bad.iter().map(|p| store.page_rows(*p)).sum();
    let service = Service::new(
        Arc::clone(&store),
        ServiceConfig { max_concurrent: 8, max_queued: 64, threads: 2 },
    );

    // Eight workers × full-range queries, all racing to discover the bad
    // pages. Every query must return Ok (a partial, never a panic or a
    // poisoned-lock hang), and every loss report must name exactly the
    // poisoned pages.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = &service;
            let expected_bad = &expected_bad;
            scope.spawn(move || {
                for _ in 0..3 {
                    let r = service
                        .sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default())
                        .unwrap();
                    let lost: Vec<usize> = r.loss.pages.iter().map(|p| p.page).collect();
                    assert_eq!(&lost, expected_bad);
                    assert_eq!(r.loss.rows_lost(), lost_rows);
                    assert_eq!(r.value.matches, service.store().column().len() - lost_rows);
                }
            });
        }
    });

    assert_eq!(store.quarantined_pages(), expected_bad);

    // After the dust settles, a fresh query skips the quarantined pages
    // without re-decoding them: every loss reason is now `Quarantined`.
    let r = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
    assert!(r.loss.pages.iter().all(|p| p.reason == LossReason::Quarantined));
    assert_eq!(r.loss.rows_lost(), lost_rows);
}

#[test]
fn overload_is_a_typed_refusal_never_a_panic_or_hang() {
    let data = dataset(20 * 10 * VECTOR_SIZE);
    let store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache()));
    let service =
        Service::new(store, ServiceConfig { max_concurrent: 1, max_queued: 0, threads: 1 });

    // Deterministic overload: with the only slot held and no queue, the
    // next query is refused immediately with a retry hint.
    let held = service.admit().unwrap();
    let err = service.sum_where(0.0, 1.0, &QueryOptions::default()).unwrap_err();
    assert!(
        matches!(err, ServiceError::Overloaded { retry_after_hint } if retry_after_hint > Duration::ZERO)
    );
    drop(held);
    assert!(service.sum_where(0.0, 1.0, &QueryOptions::default()).is_ok());

    // A queued query (queue room available) completes once the slot frees —
    // bounded waiting, not refusal, and never a hang.
    let roomy = Service::new(
        Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache())),
        ServiceConfig { max_concurrent: 1, max_queued: 4, threads: 1 },
    );
    let held = roomy.admit().unwrap();
    let queued = std::thread::scope(|scope| {
        let handle = scope.spawn(|| roomy.sum_where(0.0, 1.0, &QueryOptions::default()));
        std::thread::sleep(Duration::from_millis(10));
        drop(held);
        handle.join().expect("queued query must not panic")
    });
    assert!(queued.is_ok(), "queued query should complete once the slot frees");

    // Under a free-for-all on the zero-queue service, every outcome is Ok or
    // a typed refusal — nothing panics, nothing hangs.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = &service;
            scope.spawn(move || {
                for _ in 0..5 {
                    match service.sum_where(10.0, 30.0, &QueryOptions::default()) {
                        Ok(r) => assert!(r.loss.is_complete()),
                        Err(ServiceError::Overloaded { .. }) => {}
                        Err(other) => panic!("unexpected refusal: {other}"),
                    }
                }
            });
        }
    });
}

#[test]
fn deadlines_abandon_work_at_morsel_boundaries() {
    let data = dataset(40 * 10 * VECTOR_SIZE);
    let store = Arc::new(Store::new(Column::from_f64(&data, Format::alp()), tight_cache()));
    let service = Service::new(Arc::clone(&store), ServiceConfig::default());
    let opts = QueryOptions { deadline: Some(Duration::ZERO), ..QueryOptions::default() };
    let err = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &opts).unwrap_err();
    assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
    // The abandoned query left the store healthy: a follow-up without a
    // deadline is complete and correct.
    let r = service.sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default()).unwrap();
    assert!(r.loss.is_complete());
    assert_eq!(r.value.matches, data.len());
}
