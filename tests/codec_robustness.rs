//! Corrupt-input fault injection across every decoder in the workspace: the
//! seven baseline codecs (f64 and f32 paths), both gpzip modes, the ALP
//! column format, and the streaming layer. All of them run the shared
//! corpus from `alp_repro::corruption` — truncations, bit flips, garbage —
//! and must return `Err` or a valid value, never panic.

use alp_repro::corruption::{assert_decoder_robust, corpus, single_bit_flips};

fn sample_f64() -> Vec<f64> {
    // Decimal-looking values, noise, and specials: exercises every scheme
    // and every patch/exception path of the codecs under test.
    let mut data: Vec<f64> = (0..6000).map(|i| (i as f64) / 8.0).collect();
    data.extend((0..4000).map(|i| ((i as f64) * 0.377).sin() * 1e-4));
    data.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 5e-324]);
    data
}

fn sample_f32() -> Vec<f32> {
    (0..8000).map(|i| (i % 997) as f32 / 16.0).collect()
}

#[test]
fn every_f64_codec_survives_the_corruption_corpus() {
    let data = sample_f64();
    for codec in codecs::Codec::EXTENDED {
        let bytes = codec.compress_f64(&data);
        assert_decoder_robust(&bytes, 0xC0DEC + codec.name().len() as u64, |b| {
            codec.try_decompress_f64(b, data.len())
        });
    }
}

#[test]
fn every_f32_codec_survives_the_corruption_corpus() {
    let data = sample_f32();
    for codec in codecs::Codec::EXTENDED.into_iter().filter(|c| c.supports_f32()) {
        let bytes = codec.compress_f32(&data).unwrap();
        assert_decoder_robust(&bytes, 0xF32 + codec.name().len() as u64, |b| {
            codec.try_decompress_f32(b, data.len())
        });
    }
}

#[test]
fn gpzip_default_mode_survives_the_corruption_corpus() {
    let raw: Vec<u8> = sample_f64().iter().flat_map(|v| v.to_le_bytes()).collect();
    let bytes = gpzip::compress(&raw);
    assert_decoder_robust(&bytes, 0x67707A, gpzip::try_decompress);
}

#[test]
fn gpzip_fast_mode_survives_the_corruption_corpus() {
    let raw: Vec<u8> = sample_f64().iter().flat_map(|v| v.to_le_bytes()).collect();
    let bytes = gpzip::fast::compress(&raw);
    assert_decoder_robust(&bytes, 0x6661, gpzip::fast::try_decompress);
}

#[test]
fn alp_column_format_survives_the_corruption_corpus() {
    let data = sample_f64();
    let bytes = alp::format::to_bytes(&alp::Compressor::new().compress(&data));
    // A strict parse that succeeds must also decompress without panicking.
    assert_decoder_robust(&bytes, 0xA172, |b| {
        alp::format::from_bytes::<f64>(b).map(|c| c.decompress())
    });
}

#[test]
fn alp_checksums_catch_every_single_bit_flip() {
    // The stronger guarantee integrity frames buy: unlike the bare codecs,
    // an ALP2 column rejects *any* one-bit change, wherever it lands.
    let data = sample_f64();
    let bytes = alp::format::to_bytes(&alp::Compressor::new().compress(&data));
    for case in single_bit_flips(&bytes, 0xB117, 128) {
        assert!(alp::format::from_bytes::<f64>(&case.bytes).is_err(), "{}", case.label);
    }
}

#[test]
fn alp_salvage_survives_the_corruption_corpus() {
    let data = sample_f64();
    let bytes = alp::format::to_bytes(&alp::Compressor::new().compress(&data));
    for case in corpus(&bytes, 0x5A17) {
        // Salvage may or may not recover data; it must never panic, and
        // whatever it recovers must decompress.
        if let Ok(salvage) = alp::format::from_bytes_salvage::<f64>(&case.bytes) {
            let recovered = salvage.column.decompress();
            assert_eq!(recovered.len(), salvage.column.len, "{}", case.label);
        }
    }
}

#[test]
fn legacy_v1_format_survives_the_corruption_corpus() {
    let data = sample_f64();
    let bytes = alp::format::to_bytes_v1(&alp::Compressor::new().compress(&data));
    assert_decoder_robust(&bytes, 0xA171, |b| {
        alp::format::from_bytes::<f64>(b).map(|c| c.decompress())
    });
}

#[test]
fn stream_reader_survives_the_corruption_corpus() {
    let data = sample_f64();
    let mut file = Vec::new();
    let mut writer = alp::stream::ColumnWriter::<f64, _>::new(&mut file);
    writer.push(&data).unwrap();
    writer.finish().unwrap();

    let read_all = |bytes: &[u8]| -> Result<usize, alp::stream::StreamError> {
        let mut reader = alp::stream::ColumnReader::<f64, _>::new(bytes)?;
        let mut total = 0;
        while let Some(values) = reader.next_rowgroup()? {
            total += values.len();
        }
        Ok(total)
    };
    assert_decoder_robust(&file, 0x57EA, read_all);

    // The salvage path must also hold up: skip what it can, never panic.
    for case in corpus(&file, 0x57EB) {
        let Ok(mut reader) = alp::stream::ColumnReader::<f64, _>::new(&case.bytes[..]) else {
            continue;
        };
        while let Ok(Some(_)) = reader.next_rowgroup_salvaged() {}
    }
}
