//! Corrupt-input fault injection across every decoder in the workspace.
//!
//! The per-codec coverage is registry-driven: `assert_registry_robust`
//! iterates `alp_core::Registry`, so a newly registered codec is fault-tested
//! automatically with no list to update here. The remaining tests cover the
//! layers the registry cannot express — the gpzip byte-stream API, ALP's
//! integrity/salvage/legacy formats, and the streaming reader. Everything
//! runs the shared corpus from `alp_repro::corruption` — truncations, bit
//! flips, garbage — and must return `Err` or a valid value, never panic.

use alp_repro::corruption::{
    assert_decoder_robust, assert_registry_robust, assert_registry_robust_f32, corpus,
    single_bit_flips,
};

fn sample_f64() -> Vec<f64> {
    // Decimal-looking values, noise, and specials: exercises every scheme
    // and every patch/exception path of the codecs under test.
    let mut data: Vec<f64> = (0..6000).map(|i| (i as f64) / 8.0).collect();
    data.extend((0..4000).map(|i| ((i as f64) * 0.377).sin() * 1e-4));
    data.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 5e-324]);
    data
}

fn sample_f32() -> Vec<f32> {
    (0..8000).map(|i| (i % 997) as f32 / 16.0).collect()
}

#[test]
fn every_registered_codec_survives_the_corruption_corpus() {
    assert_registry_robust(&sample_f64(), 0xC0DEC);
}

#[test]
fn every_registered_f32_codec_survives_the_corruption_corpus() {
    assert_registry_robust_f32(&sample_f32(), 0xF32);
}

#[test]
fn gpzip_default_mode_survives_the_corruption_corpus() {
    let raw: Vec<u8> = sample_f64().iter().flat_map(|v| v.to_le_bytes()).collect();
    let bytes = gpzip::compress(&raw);
    assert_decoder_robust(&bytes, 0x67707A, gpzip::try_decompress);
}

#[test]
fn gpzip_fast_mode_survives_the_corruption_corpus() {
    let raw: Vec<u8> = sample_f64().iter().flat_map(|v| v.to_le_bytes()).collect();
    let bytes = gpzip::fast::compress(&raw);
    assert_decoder_robust(&bytes, 0x6661, gpzip::fast::try_decompress);
}

#[test]
fn alp_checksums_catch_every_single_bit_flip() {
    // The stronger guarantee integrity frames buy: unlike the bare codecs,
    // an ALP2 column rejects *any* one-bit change, wherever it lands.
    let data = sample_f64();
    let bytes = alp::format::to_bytes(&alp::Compressor::new().compress(&data));
    for case in single_bit_flips(&bytes, 0xB117, 128) {
        assert!(alp::format::from_bytes::<f64>(&case.bytes).is_err(), "{}", case.label);
    }
}

#[test]
fn alp_salvage_survives_the_corruption_corpus() {
    let data = sample_f64();
    let bytes = alp::format::to_bytes(&alp::Compressor::new().compress(&data));
    for case in corpus(&bytes, 0x5A17) {
        // Salvage may or may not recover data; it must never panic, and
        // whatever it recovers must decompress.
        if let Ok(salvage) = alp::format::from_bytes_salvage::<f64>(&case.bytes) {
            let recovered = salvage.column.decompress();
            assert_eq!(recovered.len(), salvage.column.len, "{}", case.label);
        }
    }
}

#[test]
fn legacy_v1_format_survives_the_corruption_corpus() {
    let data = sample_f64();
    let bytes = alp::format::to_bytes_v1(&alp::Compressor::new().compress(&data));
    assert_decoder_robust(&bytes, 0xA171, |b| {
        alp::format::from_bytes::<f64>(b).map(|c| c.decompress())
    });
}

#[test]
fn stream_reader_survives_the_corruption_corpus() {
    let data = sample_f64();
    let mut file = Vec::new();
    let mut writer = alp::stream::ColumnWriter::<f64, _>::new(&mut file);
    writer.push(&data).unwrap();
    writer.finish().unwrap();

    let read_all = |bytes: &[u8]| -> Result<usize, alp::stream::StreamError> {
        let mut reader = alp::stream::ColumnReader::<f64, _>::new(bytes)?;
        let mut total = 0;
        while let Some(values) = reader.next_rowgroup()? {
            total += values.len();
        }
        Ok(total)
    };
    assert_decoder_robust(&file, 0x57EA, read_all);

    // The salvage path must also hold up: skip what it can, never panic.
    for case in corpus(&file, 0x57EB) {
        let Ok(mut reader) = alp::stream::ColumnReader::<f64, _>::new(&case.bytes[..]) else {
            continue;
        };
        while let Ok(Some(_)) = reader.next_rowgroup_salvaged() {}
    }
}
