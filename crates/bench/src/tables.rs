//! Plain-text table rendering and CSV export for the harness binaries.

use std::fs;
use std::path::PathBuf;

/// A simple left-labelled numeric table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New table with column headers (the first column is the row label).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of already-formatted cells.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Adds a row of floats rendered with `decimals` places.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64], decimals: usize) {
        self.row(label, values.iter().map(|v| format!("{v:.decimals$}")).collect());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let label_w = self.rows.iter().map(|(l, _)| l.len()).chain([8]).max().unwrap();
        let col_w: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .filter_map(|(_, cells)| cells.get(i).map(|c| c.len()))
                    .chain([h.len()])
                    .max()
                    .unwrap()
            })
            .collect();

        println!("\n== {} ==", self.title);
        print!("{:<label_w$}", "");
        for (h, w) in self.headers.iter().zip(&col_w) {
            print!("  {h:>w$}");
        }
        println!();
        for (label, cells) in &self.rows {
            print!("{label:<label_w$}");
            for (c, w) in cells.iter().zip(&col_w) {
                print!("  {c:>w$}");
            }
            println!();
        }
    }

    /// Writes the table as CSV under `results/<name>.csv` (relative to the
    /// workspace root when run via cargo) and returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        csv.push_str("name");
        for h in &self.headers {
            csv.push(',');
            csv.push_str(h);
        }
        csv.push('\n');
        for (label, cells) in &self.rows {
            csv.push_str(label);
            for c in cells {
                csv.push(',');
                csv.push_str(c);
            }
            csv.push('\n');
        }
        fs::write(&path, csv)?;
        Ok(path)
    }
}

/// Directory benchmark CSVs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var("ALP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_exports() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row_f64("row1", &[1.234, 5.6789], 2);
        t.row("row2", vec!["x".into(), "y".into()]);
        t.print();
        let dir = std::env::temp_dir().join("alp_table_test");
        std::env::set_var("ALP_RESULTS_DIR", &dir);
        let path = t.write_csv("demo_test").unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("row1,1.23,5.68"));
        std::env::remove_var("ALP_RESULTS_DIR");
    }
}
