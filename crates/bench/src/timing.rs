//! Cycle-level timing.
//!
//! The paper reports **tuples per CPU cycle**. On x86-64 we read the
//! time-stamp counter directly (`rdtsc`; constant-rate on every CPU from the
//! last decade, ticking at the base frequency — the same proxy the paper's
//! methodology implies). On other architectures we fall back to wall-clock
//! nanoseconds scaled by a calibrated frequency estimate.

use std::time::Instant;

/// Reads the cycle counter.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub fn cycles_now() -> u64 {
    // SAFETY: rdtsc has no preconditions.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Fallback: nanoseconds since an arbitrary epoch, scaled to pseudo-cycles
/// using the calibrated frequency.
#[cfg(not(target_arch = "x86_64"))]
pub fn cycles_now() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    (epoch.elapsed().as_nanos() as f64 * tsc_ghz()) as u64
}

/// TSC frequency in GHz, measured once against the wall clock.
pub fn tsc_ghz() -> f64 {
    use std::sync::OnceLock;
    static GHZ: OnceLock<f64> = OnceLock::new();
    *GHZ.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let t0 = Instant::now();
            let c0 = cycles_now();
            while t0.elapsed().as_millis() < 50 {
                std::hint::spin_loop();
            }
            let dc = cycles_now() - c0;
            dc as f64 / t0.elapsed().as_nanos() as f64
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1.0 // pseudo-cycles == nanoseconds
        }
    })
}

/// Measurement of a repeated operation.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Average cycles per call.
    pub cycles_per_call: f64,
    /// Average nanoseconds per call.
    pub ns_per_call: f64,
    /// Number of calls measured.
    pub calls: u64,
}

impl Measurement {
    /// Tuples per cycle given `tuples` processed per call — the paper's speed
    /// metric (Table 5 / Figure 1).
    pub fn tuples_per_cycle(&self, tuples: usize) -> f64 {
        tuples as f64 / self.cycles_per_call
    }

    /// Cycles per tuple (Figure 6's inverted metric).
    pub fn cycles_per_tuple(&self, tuples: usize) -> f64 {
        self.cycles_per_call / tuples as f64
    }
}

/// Measures `f` adaptively: batches are grown until a batch runs for at least
/// `min_batch_ms`, then `batches` batches are averaged (minimum taken across
/// batches to suppress interference, as is standard for micro-benchmarks).
pub fn measure<F: FnMut()>(mut f: F, min_batch_ms: u64, batches: u32) -> Measurement {
    // Warm up and find a batch size that runs long enough.
    let mut batch: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= min_batch_ms as u128 || batch >= (1 << 30) {
            break;
        }
        // Aim directly for the target with headroom.
        let grow = ((min_batch_ms as f64 * 1.5e6) / (dt.as_nanos().max(1) as f64)).ceil();
        batch = (batch as f64 * grow.clamp(2.0, 1024.0)) as u64;
    }

    let mut best_ns_per_call = f64::INFINITY;
    let mut best_cycles_per_call = f64::INFINITY;
    for _ in 0..batches.max(1) {
        let c0 = cycles_now();
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64;
        let dc = cycles_now().wrapping_sub(c0) as f64;
        best_ns_per_call = best_ns_per_call.min(ns / batch as f64);
        best_cycles_per_call = best_cycles_per_call.min(dc / batch as f64);
    }
    Measurement {
        cycles_per_call: best_cycles_per_call,
        ns_per_call: best_ns_per_call,
        calls: batch * batches as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_frequency_is_plausible() {
        let ghz = tsc_ghz();
        assert!((0.5..8.0).contains(&ghz), "{ghz} GHz");
    }

    #[test]
    fn measure_scales_with_work() {
        let small = measure(
            || {
                std::hint::black_box((0..100u64).sum::<u64>());
            },
            2,
            2,
        );
        let large = measure(
            || {
                std::hint::black_box((0..10_000u64).sum::<u64>());
            },
            2,
            2,
        );
        assert!(large.ns_per_call > small.ns_per_call * 5.0);
    }

    #[test]
    fn tuples_per_cycle_math() {
        let m = Measurement { cycles_per_call: 512.0, ns_per_call: 200.0, calls: 1 };
        assert_eq!(m.tuples_per_cycle(1024), 2.0);
        assert_eq!(m.cycles_per_tuple(1024), 0.5);
    }
}
