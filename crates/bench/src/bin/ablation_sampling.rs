//! **Ablation** — sensitivity of compression ratio and compression time to
//! the sampling parameters DESIGN.md calls out: the candidate budget `k`
//! and the per-vector sample size (level-1 and level-2 share it here, as in
//! the paper's tuning).
//!
//! The paper fixes k=5 and 32 samples/vector after tuning; this ablation
//! shows the trade-off surface those defaults sit on.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_sampling
//! ```

use std::time::Instant;

use alp::{Compressor, SamplerParams};
use bench::tables::Table;

const DATASETS: [&str; 6] =
    ["City-Temp", "Stocks-USA", "CMS/1", "Gov/30", "Food-prices", "Basel-Temp"];

fn run(params: SamplerParams) -> (f64, f64) {
    let mut bits = 0usize;
    let mut values = 0usize;
    let mut seconds = 0.0;
    let compressor = Compressor::with_params(params).expect("ablation params are nonzero");
    for name in DATASETS {
        let data = bench::dataset(name);
        let t0 = Instant::now();
        let compressed = compressor.compress(&data);
        seconds += t0.elapsed().as_secs_f64();
        bits += compressed.compressed_bits();
        values += data.len();
    }
    (bits as f64 / values as f64, seconds)
}

fn main() {
    let base = SamplerParams::default();
    let (base_bpv, base_time) = run(base);

    let mut k_table = Table::new(
        "Ablation: candidate budget k (avg bits/value over 6 datasets)",
        &["bits/value", "vs k=5", "comp time", "vs k=5"],
    );
    for k in [1usize, 2, 3, 5, 8] {
        let (bpv, secs) = run(SamplerParams { max_combinations: k, ..base });
        k_table.row(
            format!("k = {k}"),
            vec![
                format!("{bpv:.2}"),
                format!("{:+.2}%", (bpv - base_bpv) / base_bpv * 100.0),
                format!("{secs:.2}s"),
                format!("{:+.0}%", (secs - base_time) / base_time * 100.0),
            ],
        );
    }
    k_table.print();
    k_table.write_csv("ablation_sampling_k").ok();

    let mut s_table = Table::new(
        "Ablation: samples per vector (level-1 and level-2)",
        &["bits/value", "vs 32", "comp time", "vs 32"],
    );
    for s in [8usize, 16, 32, 64, 128] {
        let (bpv, secs) = run(SamplerParams { sample_values: s, second_level_values: s, ..base });
        s_table.row(
            format!("{s} samples"),
            vec![
                format!("{bpv:.2}"),
                format!("{:+.2}%", (bpv - base_bpv) / base_bpv * 100.0),
                format!("{secs:.2}s"),
                format!("{:+.0}%", (secs - base_time) / base_time * 100.0),
            ],
        );
    }
    s_table.print();
    s_table.write_csv("ablation_sampling_values").ok();

    let mut v_table = Table::new(
        "Ablation: sampled vectors per row-group (level-1)",
        &["bits/value", "vs 8", "comp time", "vs 8"],
    );
    for m in [2usize, 4, 8, 16, 32] {
        let (bpv, secs) = run(SamplerParams { sample_vectors: m, ..base });
        v_table.row(
            format!("{m} vectors"),
            vec![
                format!("{bpv:.2}"),
                format!("{:+.2}%", (bpv - base_bpv) / base_bpv * 100.0),
                format!("{secs:.2}s"),
                format!("{:+.0}%", (secs - base_time) / base_time * 100.0),
            ],
        );
    }
    v_table.print();
    v_table.write_csv("ablation_sampling_vectors").ok();

    println!("\nPaper's defaults: k=5, 32 samples/vector, 8 vectors/row-group.");
}
