//! **Figure 1** — the headline scatter: compression ratio vs compression
//! speed vs decompression speed, one point per (scheme, dataset).
//!
//! Emits a CSV (`results/fig1_scatter.csv`) with columns
//! `dataset,scheme,bits_per_value,compress_tpc,decompress_tpc` and prints a
//! per-scheme summary. The paper's claim to check: ALP sits 1–2 orders of
//! magnitude above every competitor in both speed axes while matching or
//! beating their ratios.
//!
//! ```sh
//! cargo run --release -p bench --bin fig1_scatter
//! ```

use alp_core::{Registry, Scratch, SPEED_IDS};
use bench::schemes::{bits_per_value, measure_speed};
use bench::tables::{results_dir, Table};

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);

    let codecs = Registry::resolve(&SPEED_IDS).expect("all speed ids registered");
    let mut csv = String::from("dataset,scheme,bits_per_value,compress_tpc,decompress_tpc\n");
    // Per codec: bits/value series, compression t/c series, decompression t/c.
    let mut summary: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        vec![(Vec::new(), Vec::new(), Vec::new()); codecs.len()];
    let mut scratch = Scratch::new();

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        for (i, codec) in codecs.iter().enumerate() {
            let bpv = bits_per_value(*codec, &data, &mut scratch)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.id(), ds.name));
            let speed = measure_speed(*codec, &data, batch_ms)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.id(), ds.name));
            csv.push_str(&format!(
                "{},{},{:.2},{:.4},{:.4}\n",
                ds.name,
                codec.name(),
                bpv,
                speed.compress_tpc(),
                speed.decompress_tpc()
            ));
            summary[i].0.push(bpv);
            summary[i].1.push(speed.compress_tpc());
            summary[i].2.push(speed.decompress_tpc());
        }
        eprintln!("done: {}", ds.name);
    }

    std::fs::create_dir_all(results_dir()).ok();
    let path = results_dir().join("fig1_scatter.csv");
    std::fs::write(&path, &csv).expect("write csv");
    eprintln!("wrote {}", path.display());

    let mut table = Table::new(
        "Figure 1 summary (averages over datasets)",
        &["bits/value", "comp t/c", "dec t/c"],
    );
    for (codec, (bpvs, cts, dts)) in codecs.iter().zip(&summary) {
        table.row(
            codec.name(),
            vec![
                format!("{:.1}", bench::mean(bpvs)),
                format!("{:.3}", bench::mean(cts)),
                format!("{:.3}", bench::mean(dts)),
            ],
        );
    }
    table.print();
}
