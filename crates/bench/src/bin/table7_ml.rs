//! **Table 7** — compression of 32-bit machine-learning weights (§4.4):
//! ALP (which falls back to ALP_rd32 on such data) against the codecs that
//! have 32-bit variants (Gorilla, Chimp, Chimp128, Patas) and the Zstd
//! stand-in. Metric: bits per value (uncompressed = 32).
//!
//! The paper's four models are replaced by synthetic Gaussian weights at
//! scaled-down parameter counts (see DESIGN.md §2) — what matters is the
//! high-precision, exponent-clustered profile, which the generator matches.
//!
//! ```sh
//! cargo run --release -p bench --bin table7_ml
//! ```

use bench::tables::Table;

fn main() {
    let mut table = Table::new(
        "Table 7: ML weights, bits per value (uncompressed = 32)",
        &["params", "Gorilla", "Chimp", "Chimp128", "Patas", "ALP(rd32)", "Zstd*"],
    );

    let mut sums = [0.0f64; 6];
    for (i, (model, params)) in datagen::ML_MODELS.iter().enumerate() {
        let weights = datagen::ml_weights_f32(*params, bench::bench_seed() + i as u64);
        let n = weights.len() as f64;

        let mut row: Vec<f64> = Vec::new();
        for codec in [
            codecs::Codec::Gorilla,
            codecs::Codec::Chimp,
            codecs::Codec::Chimp128,
            codecs::Codec::Patas,
        ] {
            let bytes = codec.compress_f32(&weights).unwrap();
            let back = codec.decompress_f32(&bytes, weights.len()).unwrap();
            assert!(back.iter().zip(&weights).all(|(a, b)| a.to_bits() == b.to_bits()));
            row.push(bytes.len() as f64 * 8.0 / n);
        }

        let compressed = alp::Compressor::new().compress(&weights);
        let back = compressed.decompress();
        assert!(back.iter().zip(&weights).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(
            compressed.stats.rowgroups_rd > 0 || weights.len() < alp::VECTOR_SIZE,
            "ML weights should trigger ALP_rd"
        );
        row.push(compressed.bits_per_value());

        let raw: Vec<u8> = weights.iter().flat_map(|v| v.to_le_bytes()).collect();
        let z = gpzip::compress(&raw);
        assert_eq!(gpzip::decompress(&z), raw);
        row.push(z.len() as f64 * 8.0 / n);

        for (s, v) in sums.iter_mut().zip(&row) {
            *s += v;
        }
        let mut cells = vec![params.to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.1}")));
        table.row(*model, cells);
        eprintln!("done: {model}");
    }

    let mut cells = vec!["".to_string()];
    cells.extend(sums.iter().map(|s| format!("{:.1}", s / datagen::ML_MODELS.len() as f64)));
    table.row("AVG.", cells);

    table.print();
    table.write_csv("table7_ml").ok();
    println!("\nPaper's claim: ALP_rd32 is the only float encoding to compress ML weights (28.1 avg, Zstd 29.7).");
}
