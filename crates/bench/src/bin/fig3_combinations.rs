//! **Figure 3** — how many (exponent, factor) combinations cover the best
//! combination of every vector in a dataset (§2.6).
//!
//! For each dataset we brute-force the best combination for **every** 1024-
//! value vector over the full 253-combination space, then report the number
//! of distinct winners and the cumulative vector coverage of the top-k most
//! frequent ones. The paper's finding: for most datasets 5 combinations cover
//! everything, for several a single one does.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3_combinations
//! ```

use std::collections::HashMap;

use alp::sampler::full_search;
use alp::VECTOR_SIZE;
use bench::tables::Table;

fn main() {
    let mut table = Table::new(
        "Figure 3: best (e,f) combinations per dataset",
        &["vectors", "distinct", "top1%", "top2%", "top3%", "top5%", "k_99%"],
    );

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        let mut counts: HashMap<(u8, u8), usize> = HashMap::new();
        let mut vectors = 0usize;
        for chunk in data.chunks(VECTOR_SIZE) {
            let (combo, _) = full_search(chunk);
            *counts.entry((combo.e, combo.f)).or_insert(0) += 1;
            vectors += 1;
        }
        let mut by_freq: Vec<usize> = counts.values().copied().collect();
        by_freq.sort_unstable_by(|a, b| b.cmp(a));
        let coverage = |k: usize| -> f64 {
            by_freq.iter().take(k).sum::<usize>() as f64 / vectors as f64 * 100.0
        };
        // Smallest k covering >= 99% of vectors.
        let mut cum = 0usize;
        let mut k99 = by_freq.len();
        for (i, &c) in by_freq.iter().enumerate() {
            cum += c;
            if cum as f64 / vectors as f64 >= 0.99 {
                k99 = i + 1;
                break;
            }
        }
        table.row_f64(
            ds.name,
            &[
                vectors as f64,
                by_freq.len() as f64,
                coverage(1),
                coverage(2),
                coverage(3),
                coverage(5),
                k99 as f64,
            ],
            1,
        );
    }

    table.print();
    if let Ok(p) = table.write_csv("fig3_combinations") {
        eprintln!("\nwrote {}", p.display());
    }
    println!("\nPaper's claim: for most datasets 5 combinations suffice; for some, one.");
}
