//! **Table 5** — average compression and decompression speed in tuples per
//! CPU cycle across all datasets (§4.2).
//!
//! Methodology mirrors the paper: one 1024-value vector per dataset, kept
//! L1-resident by repetition; GPZip (the Zstd stand-in) runs on a full
//! row-group because it is block-based.
//!
//! ```sh
//! cargo run --release -p bench --bin table5_speed
//! ```

use bench::schemes::{measure_speed, Scheme};
use bench::tables::Table;
use bench::timing::tsc_ghz;

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    eprintln!("TSC ~{:.2} GHz; batch {batch_ms} ms", tsc_ghz());

    let mut comp_avg: Vec<(Scheme, Vec<f64>)> =
        Scheme::SPEED.iter().map(|&s| (s, Vec::new())).collect();
    let mut dec_avg: Vec<(Scheme, Vec<f64>)> =
        Scheme::SPEED.iter().map(|&s| (s, Vec::new())).collect();

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        for (i, &scheme) in Scheme::SPEED.iter().enumerate() {
            let speed = measure_speed(scheme, &data, batch_ms);
            comp_avg[i].1.push(speed.compress_tpc());
            dec_avg[i].1.push(speed.decompress_tpc());
        }
        eprintln!("done: {}", ds.name);
    }

    let mut table = Table::new(
        "Table 5: average speed (tuples per CPU cycle, higher is better)",
        &["Compression", "ALP is faster by", "Decompression", "ALP is faster by"],
    );
    let alp_c = bench::mean(&comp_avg[0].1);
    let alp_d = bench::mean(&dec_avg[0].1);
    for ((scheme, cs), (_, ds_)) in comp_avg.iter().zip(&dec_avg) {
        let c = bench::mean(cs);
        let d = bench::mean(ds_);
        let speedup_c =
            if *scheme == Scheme::Alp { "-".to_string() } else { format!("{:.0}x", alp_c / c) };
        let speedup_d =
            if *scheme == Scheme::Alp { "-".to_string() } else { format!("{:.0}x", alp_d / d) };
        table.row(scheme.name(), vec![format!("{c:.3}"), speedup_c, format!("{d:.3}"), speedup_d]);
    }
    table.print();
    if let Ok(p) = table.write_csv("table5_speed") {
        eprintln!("\nwrote {}", p.display());
    }
}
