//! **Table 5** — average compression and decompression speed in tuples per
//! CPU cycle across all datasets (§4.2).
//!
//! Methodology mirrors the paper: one 1024-value vector per dataset, kept
//! L1-resident by repetition; the block-based general-purpose compressors run
//! on a full row-group.
//!
//! ```sh
//! cargo run --release -p bench --bin table5_speed
//! ```

use alp_core::{Registry, SPEED_IDS};
use bench::schemes::measure_speed;
use bench::tables::Table;
use bench::timing::tsc_ghz;

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    eprintln!("TSC ~{:.2} GHz; batch {batch_ms} ms", tsc_ghz());

    let codecs = Registry::resolve(&SPEED_IDS).expect("all speed ids registered");
    let mut comp_avg: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];
    let mut dec_avg: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        for (i, codec) in codecs.iter().enumerate() {
            let speed = measure_speed(*codec, &data, batch_ms)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.id(), ds.name));
            comp_avg[i].push(speed.compress_tpc());
            dec_avg[i].push(speed.decompress_tpc());
        }
        eprintln!("done: {}", ds.name);
    }

    let mut table = Table::new(
        "Table 5: average speed (tuples per CPU cycle, higher is better)",
        &["Compression", "ALP is faster by", "Decompression", "ALP is faster by"],
    );
    let alp_c = bench::mean(&comp_avg[0]);
    let alp_d = bench::mean(&dec_avg[0]);
    for (i, codec) in codecs.iter().enumerate() {
        let c = bench::mean(&comp_avg[i]);
        let d = bench::mean(&dec_avg[i]);
        let is_alp = codec.id() == "alp";
        let speedup_c = if is_alp { "-".to_string() } else { format!("{:.0}x", alp_c / c) };
        let speedup_d = if is_alp { "-".to_string() } else { format!("{:.0}x", alp_d / d) };
        table.row(codec.name(), vec![format!("{c:.3}"), speedup_c, format!("{d:.3}"), speedup_d]);
    }
    table.print();
    if let Ok(p) = table.write_csv("table5_speed") {
        eprintln!("\nwrote {}", p.display());
    }
}
