//! **§4.2 "Sampling Overhead in Compression"** — three measurements:
//!
//! 1. the histogram of how many candidate combinations each vector's
//!    second-level sampling tried (paper: ~54% skip it entirely; 22.9% try 2,
//!    20.0% try 3, 2.9% try 4, 0.3% try 5);
//! 2. the share of total compression time spent in second-level sampling
//!    (paper: ≈6%);
//! 3. the compression-ratio gain a full brute-force search per vector would
//!    deliver over the sampled parameters (paper: <1%).
//!
//! ```sh
//! cargo run --release -p bench --bin sampling_overhead
//! ```

use std::time::Instant;

use alp::sampler::{full_search, SamplerParams};
use alp::{Compressor, VECTOR_SIZE};
use bench::tables::Table;

fn main() {
    let mut hist = [0usize; 8];
    let mut total_vectors = 0usize;
    let mut skipped = 0usize;

    let mut sampled_time = 0.0f64;
    let mut total_time = 0.0f64;
    let mut sampled_bits = 0usize;
    let mut brute_bits = 0usize;
    let mut uncompressed_values = 0usize;

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);

        // Full compression (includes both sampling levels).
        let t0 = Instant::now();
        let compressed = Compressor::new().compress(&data);
        total_time += t0.elapsed().as_secs_f64();

        for (i, &n) in compressed.stats.combinations_tried.iter().enumerate() {
            hist[i] += n;
        }
        total_vectors += compressed.stats.vectors_encoded;
        skipped += compressed.stats.second_level_skipped;
        let rd_dataset = compressed.stats.rowgroups_rd > 0;
        if !rd_dataset {
            sampled_bits += compressed.compressed_bits();
            uncompressed_values += data.len();
        }

        // Isolate second-level time: re-run level-2 on every vector.
        let params = SamplerParams::default();
        let outcome = alp::sampler::first_level(&data, &params);
        let mut stats = alp::SamplerStats::default();
        let t1 = Instant::now();
        for chunk in data.chunks(VECTOR_SIZE) {
            std::hint::black_box(alp::sampler::second_level(
                chunk,
                &outcome.combinations,
                &params,
                &mut stats,
            ));
        }
        sampled_time += t1.elapsed().as_secs_f64();

        // Brute force: best combination per vector over the full space, then
        // encode with it. Only meaningful for decimal (non-rd) datasets.
        if !rd_dataset {
            let mut bits = 0usize;
            for chunk in data.chunks(VECTOR_SIZE) {
                let (combo, _) = full_search(chunk);
                let v = alp::encode::encode_vector(chunk, combo.e, combo.f);
                bits += v.compressed_bits::<f64>();
            }
            brute_bits += bits;
        }
        eprintln!("done: {}", ds.name);
    }

    let mut table = Table::new(
        "Second-level sampling: combinations tried per vector",
        &["vectors", "% of vectors"],
    );
    for (tried, &n) in hist.iter().enumerate().skip(1) {
        if n > 0 {
            table.row(
                format!("{tried} combination(s)"),
                vec![n.to_string(), format!("{:.1}%", n as f64 / total_vectors as f64 * 100.0)],
            );
        }
    }
    table.print();

    println!(
        "\nvectors skipping second-level sampling (k'=1): {:.1}% (paper: ~54%)",
        skipped as f64 / total_vectors as f64 * 100.0
    );
    println!(
        "second-level sampling share of compression time: {:.1}% (paper: ~6%)",
        sampled_time / total_time * 100.0
    );
    let sampled_bpv = sampled_bits as f64 / uncompressed_values as f64;
    let brute_bpv = brute_bits as f64 / uncompressed_values as f64;
    println!(
        "sampled {sampled_bpv:.2} bits/value vs brute-force {brute_bpv:.2}: brute-force gains {:.2}% (paper: <1%)",
        (sampled_bpv - brute_bpv) / sampled_bpv * 100.0
    );
    table.write_csv("sampling_overhead").ok();
}
