//! **Ablation** — the remaining design choices DESIGN.md calls out:
//!
//! 1. **FOR vs Delta** as the integer stage after `ALP_enc` (§3.1 fixes FOR;
//!    the cascade discussion suggests Delta for sorted data). We measure the
//!    packed residual width both ways on every dataset, plus a sorted
//!    synthetic column where Delta should win.
//! 2. **ALP_rd cut position**: bits/value at every forced left width vs the
//!    sampled choice (§3.4's "smallest p >= 48 with low-variance front").
//! 3. **Exception patch value**: `first_encoded` (the paper's choice) vs
//!    patching with zero, measured as packed bit width.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_design
//! ```

use alp::encode::encode_one;
use alp::sampler::full_search;
use alp::VECTOR_SIZE;
use bench::tables::Table;
use fastlanes::{bits_needed, delta, ffor};

/// Average packed bits/value under FOR vs Delta for the ALP-encoded integers
/// of a dataset (exceptions excluded on both sides).
fn for_vs_delta(data: &[f64]) -> (f64, f64) {
    let mut for_bits = 0usize;
    let mut delta_bits = 0usize;
    let mut values = 0usize;
    for chunk in data.chunks(VECTOR_SIZE) {
        let (combo, _) = full_search(chunk);
        let ints: Vec<i64> = chunk.iter().map(|&n| encode_one(n, combo.e, combo.f)).collect();
        let (_, w) = ffor::frame_of(&ints);
        for_bits += w * ints.len();
        let (_, deltas) = delta::delta_encode(&ints);
        delta_bits += delta::delta_width(&deltas) * ints.len() + 64;
        values += ints.len();
    }
    (for_bits as f64 / values as f64, delta_bits as f64 / values as f64)
}

fn main() {
    // ---- 1. FOR vs Delta ----
    let mut t = Table::new(
        "Ablation: FOR vs Delta residuals after ALP_enc (packed bits/value)",
        &["FOR", "Delta", "winner"],
    );
    let mut for_wins = 0usize;
    let mut rows = 0usize;
    for ds in &datagen::DATASETS {
        if matches!(ds.name, "POI-lat" | "POI-lon") {
            continue; // ALP_rd territory
        }
        let data = bench::dataset(ds.name);
        let (f, d) = for_vs_delta(&data);
        for_wins += (f <= d) as usize;
        rows += 1;
        t.row(
            ds.name,
            vec![format!("{f:.1}"), format!("{d:.1}"), if f <= d { "FOR" } else { "Delta" }.into()],
        );
    }
    // A sorted column: the case the paper's cascade discussion reserves Delta for.
    let sorted: Vec<f64> = (0..262_144).map(|i| (i as f64) / 100.0).collect();
    let (f, d) = for_vs_delta(&sorted);
    t.row(
        "sorted (synthetic)",
        vec![format!("{f:.1}"), format!("{d:.1}"), if f <= d { "FOR" } else { "Delta" }.into()],
    );
    t.print();
    println!("FOR wins on {for_wins}/{rows} datasets; Delta wins on sorted data — supporting FOR as the fixed default with Delta reserved for cascades.");
    t.write_csv("ablation_for_vs_delta").ok();

    // ---- 2. ALP_rd cut position ----
    let mut rd = Table::new(
        "Ablation: ALP_rd left-width sweep (bits/value on POI-lat)",
        &["bits/value", "dict size"],
    );
    let data = bench::dataset("POI-lat");
    let chosen = alp::rd::choose_cut::<f64>(&data, 256);
    for lw in 1..=16usize {
        let meta = alp::rd::meta_for_width::<f64>(&data, 256, lw);
        let mut bits = 0usize;
        for chunk in data.chunks(VECTOR_SIZE) {
            let v = alp::rd::encode_rd_vector(chunk, &meta);
            bits += v.compressed_bits::<f64>(&meta);
        }
        let label = if lw == chosen.left_width as usize {
            format!("left {lw:>2} (chosen)")
        } else {
            format!("left {lw:>2}")
        };
        rd.row(
            label,
            vec![format!("{:.2}", bits as f64 / data.len() as f64), meta.dict.len().to_string()],
        );
    }
    rd.print();
    rd.write_csv("ablation_rd_cut").ok();

    // ---- 3. Exception patch value ----
    let mut patch = Table::new(
        "Ablation: exception patch value (packed width, vectors with exceptions)",
        &["first_encoded", "zero-patch"],
    );
    for name in ["Gov/30", "CMS/1", "Food-prices"] {
        let data = bench::dataset(name);
        let mut first_bits = 0u64;
        let mut zero_bits = 0u64;
        let mut counted = 0u64;
        for chunk in data.chunks(VECTOR_SIZE) {
            let (combo, _) = full_search(chunk);
            let v = alp::encode::encode_vector(chunk, combo.e, combo.f);
            if v.exc_positions().is_empty() {
                continue;
            }
            counted += 1;
            first_bits += v.bit_width as u64;
            // Re-encode with zero patches to compare the frame width.
            let mut ints: Vec<i64> =
                chunk.iter().map(|&n| encode_one(n, combo.e, combo.f)).collect();
            for &p in v.exc_positions() {
                ints[p as usize] = 0;
            }
            let (base, _) = ffor::frame_of(&ints);
            let max = ints.iter().map(|&x| (x as u64).wrapping_sub(base as u64)).max().unwrap();
            zero_bits += bits_needed(max) as u64;
        }
        if counted > 0 {
            patch.row(
                name,
                vec![
                    format!("{:.1} bits", first_bits as f64 / counted as f64),
                    format!("{:.1} bits", zero_bits as f64 / counted as f64),
                ],
            );
        }
    }
    patch.print();
    println!("Patching with first_encoded keeps the frame tight; a zero patch widens it whenever 0 lies outside the value range (the paper's rationale).");
    patch.write_csv("ablation_patch_value").ok();
}
