//! **Figure 4** — decompression speed of ALP's decode implementations.
//!
//! The paper compares SIMDized / auto-vectorized / scalar builds across five
//! CPU architectures. With a single host CPU we reproduce the software axis:
//!
//! * `fused` — the production branch-free kernel (auto-vectorizable),
//! * `unfused` — same math through a materialized integer buffer,
//! * `scalar` — deliberately value-at-a-time with per-value branching
//!   (proxy for the `-fno-vectorize` builds of the paper).
//!
//! To reproduce the ISA axis, re-run with
//! `RUSTFLAGS="-C target-cpu=native"` vs the default target.
//!
//! ```sh
//! cargo run --release -p bench --bin fig4_arch
//! ```

use alp::VECTOR_SIZE;
use bench::tables::Table;
use bench::timing::measure;

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    let mut table = Table::new(
        "Figure 4: ALP decode variants (tuples per cycle, higher is better)",
        &["fused", "unfused", "scalar", "fused/scalar"],
    );

    let mut speedups = Vec::new();
    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        let compressed = alp::Compressor::new().compress(&data);
        // First ALP-encoded (non-rd) vector, or skip rd-only datasets for the
        // decimal kernel comparison.
        let Some(vector) = compressed.rowgroups.iter().find_map(|rg| match rg {
            alp::RowGroup::Alp(g) => g.owned_vector(0),
            _ => None,
        }) else {
            eprintln!("skip {} (ALP_rd row-groups only)", ds.name);
            continue;
        };

        let mut out = vec![0.0f64; VECTOR_SIZE];
        let mut scratch = vec![0i64; VECTOR_SIZE];
        let fused = measure(
            || {
                alp::decode::decode_vector(&vector, vector.view(), &mut out);
                std::hint::black_box(&out);
            },
            batch_ms,
            3,
        );
        let unfused = measure(
            || {
                alp::decode::decode_vector_unfused(&vector, vector.view(), &mut scratch, &mut out);
                std::hint::black_box(&out);
            },
            batch_ms,
            3,
        );
        let scalar = measure(
            || {
                alp::decode::decode_vector_scalar(&vector, vector.view(), &mut out);
                std::hint::black_box(&out);
            },
            batch_ms,
            3,
        );
        let f = fused.tuples_per_cycle(VECTOR_SIZE);
        let u = unfused.tuples_per_cycle(VECTOR_SIZE);
        let s = scalar.tuples_per_cycle(VECTOR_SIZE);
        speedups.push(f / s);
        table.row(
            ds.name,
            vec![format!("{f:.3}"), format!("{u:.3}"), format!("{s:.3}"), format!("{:.1}x", f / s)],
        );
    }

    table.print();
    println!("\nmedian fused/scalar speedup: {:.1}x", median(&mut speedups));
    if let Ok(p) = table.write_csv("fig4_arch") {
        eprintln!("wrote {}", p.display());
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        0.0
    } else {
        xs[xs.len() / 2]
    }
}
