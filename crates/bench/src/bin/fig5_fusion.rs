//! **Figure 5** — kernel fusion ablation: ALP decode with FFOR fused into the
//! multiply loop vs two separate kernels.
//!
//! Top: per-dataset comparison (first ALP vector of each dataset).
//! Bottom: synthetic vectors sweeping every packed bit width 0..=52, the
//! robustness check the paper adds because real datasets do not cover all
//! widths.
//!
//! ```sh
//! cargo run --release -p bench --bin fig5_fusion
//! ```

use alp::encode::{AlpVector, ExcView};
use alp::VECTOR_SIZE;
use bench::tables::Table;
use bench::timing::measure;
use fastlanes::ffor;

fn bench_vector(vector: &AlpVector, exc: ExcView<'_>, batch_ms: u64) -> (f64, f64) {
    let mut out = vec![0.0f64; VECTOR_SIZE];
    let mut scratch = vec![0i64; VECTOR_SIZE];
    let fused = measure(
        || {
            alp::decode::decode_vector(vector, exc, &mut out);
            std::hint::black_box(&out);
        },
        batch_ms,
        3,
    );
    let unfused = measure(
        || {
            alp::decode::decode_vector_unfused(vector, exc, &mut scratch, &mut out);
            std::hint::black_box(&out);
        },
        batch_ms,
        3,
    );
    (fused.tuples_per_cycle(VECTOR_SIZE), unfused.tuples_per_cycle(VECTOR_SIZE))
}

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);

    // ---- Top: datasets ----
    let mut table = Table::new(
        "Figure 5 (top): fused vs unfused decode on datasets (tuples/cycle)",
        &["fused", "unfused", "speedup"],
    );
    let mut speedups = Vec::new();
    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        let compressed = alp::Compressor::new().compress(&data);
        let Some(vector) = compressed.rowgroups.iter().find_map(|rg| match rg {
            alp::RowGroup::Alp(g) => g.owned_vector(0),
            _ => None,
        }) else {
            continue;
        };
        let (f, u) = bench_vector(&vector, vector.view(), batch_ms);
        speedups.push(f / u);
        table.row(ds.name, vec![format!("{f:.3}"), format!("{u:.3}"), format!("{:.2}x", f / u)]);
    }
    table.print();
    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !speedups.is_empty() {
        println!(
            "median fusion speedup: {:.2}x (paper: ~1.4x median)",
            speedups[speedups.len() / 2]
        );
    }
    table.write_csv("fig5_fusion_datasets").ok();

    // ---- Bottom: synthetic bit widths 0..=52 ----
    let mut sweep = Table::new(
        "Figure 5 (bottom): fused vs unfused by packed bit width (tuples/cycle)",
        &["fused", "unfused", "speedup"],
    );
    for width in 0..=52usize {
        // Build a synthetic ALP vector with exactly this packed width: encoded
        // integers spanning [0, 2^width) with e=f=0 (identity decimals).
        let ints: Vec<i64> = (0..VECTOR_SIZE as u64)
            .map(|i| {
                if width == 0 {
                    0
                } else {
                    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << width) - 1)) as i64
                }
            })
            .collect();
        let (base, w) = ffor::frame_of(&ints);
        let packed = ffor::ffor_pack(&ints, base, w);
        let vector = AlpVector {
            exponent: 14,
            factor: 14,
            bit_width: w as u8,
            for_base: base,
            packed,
            exc_start: 0,
            exc_count: 0,
            len: VECTOR_SIZE as u16,
        };
        let (f, u) = bench_vector(&vector, ExcView::empty(), batch_ms);
        sweep.row(
            format!("width {width:>2}"),
            vec![format!("{f:.3}"), format!("{u:.3}"), format!("{:.2}x", f / u)],
        );
    }
    sweep.print();
    sweep.write_csv("fig5_fusion_widths").ok();
}
