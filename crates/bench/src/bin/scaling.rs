//! Morsel-scheduler scaling harness: sweeps thread counts 1/2/4/N for every
//! codec with a timed byte path, prints speedup and parallel efficiency, and
//! flags sublinear scaling or outright collapse (more threads, less
//! throughput). Writes `results/SCALING_*.json`.
//!
//! ```sh
//! cargo run --release -p bench --bin scaling
//! ```
//!
//! Knobs: `ALP_BENCH_VALUES`, `ALP_BENCH_SEED` (dataset size/seed) and
//! `ALP_BENCH_MS` is not used — each point is best-of-3 wall clock.

use alp_core::Registry;
use bench::scaling::{measure_scaling, sweep_threads};
use bench::tables::results_dir;

const DATASET: &str = "City-Temp";

fn main() {
    let sweep = sweep_threads();
    let hw = alp_core::par::resolve_threads(None);
    let data = bench::dataset(DATASET);
    println!(
        "scaling sweep on {DATASET} ({} values), hardware threads: {hw}, sweep: {sweep:?}",
        data.len()
    );
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>9} {:>11} {:<10}",
        "codec", "threads", "comp MB/s", "dec MB/s", "speedup", "efficiency", "verdict"
    );

    let mut collapsed = Vec::new();
    let mut json_rows = Vec::new();
    for codec in Registry::all() {
        if codec.caps().ratio_only {
            continue;
        }
        let points = measure_scaling(*codec, &data, &sweep, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", codec.id()));
        for p in &points {
            let verdict = p.verdict();
            println!(
                "{:<10} {:>7} {:>12.0} {:>12.0} {:>8.2}x {:>10.0}% {:<10}",
                codec.id(),
                p.threads,
                p.compress_mbps,
                p.decompress_mbps,
                p.decompress_speedup,
                p.efficiency() * 100.0,
                verdict
            );
            if verdict != "ok" {
                collapsed.push(format!("{} @ {} threads ({verdict})", codec.id(), p.threads));
            }
            json_rows.push(format!(
                concat!(
                    "    {{\"codec\": \"{}\", \"threads\": {}, ",
                    "\"compress_mbps\": {:.3}, \"decompress_mbps\": {:.3}, ",
                    "\"compress_speedup\": {:.4}, \"decompress_speedup\": {:.4}, ",
                    "\"efficiency\": {:.4}, \"verdict\": \"{}\"}}"
                ),
                codec.id(),
                p.threads,
                p.compress_mbps,
                p.decompress_mbps,
                p.compress_speedup,
                p.decompress_speedup,
                p.efficiency(),
                verdict,
            ));
        }
    }

    if collapsed.is_empty() {
        println!("\nscaling healthy: every point at >= 50% parallel efficiency");
    } else {
        println!("\nSUBLINEAR SCALING FLAGGED ({} points):", collapsed.len());
        for c in &collapsed {
            println!("  {c}");
        }
        println!(
            "  (expected when the sweep oversubscribes the host: {hw} hardware thread(s) here)"
        );
    }

    let doc = format!(
        concat!(
            "{{\n",
            "  \"dataset\": \"{}\",\n",
            "  \"values\": {},\n",
            "  \"seed\": {},\n",
            "  \"threads_available\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        DATASET,
        data.len(),
        bench::bench_seed(),
        hw,
        json_rows.join(",\n"),
    );
    std::fs::create_dir_all(results_dir()).ok();
    let path = results_dir().join(format!(
        "SCALING_s{}_v{}.json",
        bench::bench_seed(),
        bench::bench_values()
    ));
    std::fs::write(&path, &doc).expect("write json");
    println!("wrote {}", path.display());
}
