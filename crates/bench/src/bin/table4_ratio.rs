//! **Table 4** — compression ratio in bits per value for every scheme on
//! every dataset (§4.1). Every measurement verifies bit-exact losslessness.
//!
//! ```sh
//! cargo run --release -p bench --bin table4_ratio
//! ```

use alp_core::{Registry, Scratch, TABLE4_IDS};
use bench::schemes::bits_per_value;
use bench::tables::Table;

fn main() {
    let codecs = Registry::resolve(&TABLE4_IDS).expect("all Table 4 ids registered");
    let headers: Vec<&str> = codecs.iter().map(|c| c.name()).collect();
    let mut table = Table::new("Table 4: compression ratio (bits per value)", &headers);
    let mut scratch = Scratch::new();

    let mut ts_rows: Vec<Vec<f64>> = Vec::new();
    let mut nts_rows: Vec<Vec<f64>> = Vec::new();

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        let row: Vec<f64> = codecs
            .iter()
            .map(|c| {
                bits_per_value(*c, &data, &mut scratch)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", c.id(), ds.name))
            })
            .collect();
        if ds.time_series {
            ts_rows.push(row.clone());
        } else {
            nts_rows.push(row.clone());
        }
        table.row_f64(ds.name, &row, 1);
        eprintln!("done: {}", ds.name);
    }

    let avg = |rows: &[Vec<f64>]| -> Vec<f64> {
        let n = rows.len() as f64;
        (0..rows[0].len()).map(|c| rows.iter().map(|r| r[c]).sum::<f64>() / n).collect()
    };
    let ts_avg = avg(&ts_rows);
    let nts_avg = avg(&nts_rows);
    table.row_f64("TS AVG.", &ts_avg, 1);
    table.row_f64("NON-TS AVG.", &nts_avg, 1);
    let all: Vec<Vec<f64>> = ts_rows.into_iter().chain(nts_rows).collect();
    let all_avg = avg(&all);
    table.row_f64("ALL AVG.", &all_avg, 1);

    table.print();
    if let Ok(p) = table.write_csv("table4_ratio") {
        eprintln!("\nwrote {}", p.display());
    }

    // Headline comparisons the paper calls out.
    let idx = |name: &str| codecs.iter().position(|c| c.name() == name).unwrap();
    let alp = all_avg[idx("ALP")];
    println!("\nHeadline (ALL AVG. bits/value):");
    for name in ["Gorilla", "Chimp", "Chimp128", "Patas", "PDE", "Elf", "Zstd*", "LWC+ALP"] {
        let v = all_avg[idx(name)];
        println!("  ALP {alp:.1} vs {name} {v:.1}  ({:+.0}% vs ALP)", (v - alp) / v * 100.0);
    }
}
