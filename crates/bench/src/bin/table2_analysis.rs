//! **Table 2** — detailed metrics computed on the datasets (§2).
//!
//! Prints, for every synthetic dataset: decimal precision (max/min/avg/vector
//! std-dev), per-vector non-unique fraction, value magnitude (avg/std), IEEE
//! exponent (avg/std per vector), success of the naive `P_enc`/`P_dec`
//! procedures with per-value / per-dataset / per-vector exponents, and the
//! XOR-with-previous leading/trailing zero bits.
//!
//! ```sh
//! cargo run --release -p bench --bin table2_analysis
//! ```

use alp::analysis::dataset_metrics;
use bench::tables::Table;

fn main() {
    let headers = [
        "prec.max",
        "prec.min",
        "prec.avg",
        "prec.std",
        "nonuniq%",
        "val.avg",
        "val.std",
        "exp.avg",
        "exp.std",
        "penc.val%",
        "best.e",
        "penc.ds%",
        "penc.vec%",
        "xor.lz",
        "xor.tz",
    ];
    let headers: Vec<&str> = headers.into();
    let mut table = Table::new("Table 2: dataset metrics", &headers);

    let mut ts_rows: Vec<Vec<f64>> = Vec::new();
    let mut nts_rows: Vec<Vec<f64>> = Vec::new();

    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        let m = dataset_metrics(&data);
        let row = vec![
            m.precision.max,
            m.precision.min,
            m.precision.mean,
            m.precision.std_dev,
            m.non_unique_fraction * 100.0,
            m.magnitude.mean,
            m.magnitude.std_dev,
            m.ieee_exponent_mean,
            m.ieee_exponent_std,
            m.penc_per_value * 100.0,
            m.penc_best_exponent as f64,
            m.penc_per_dataset * 100.0,
            m.penc_per_vector * 100.0,
            m.xor_leading_zeros,
            m.xor_trailing_zeros,
        ];
        if ds.time_series {
            ts_rows.push(row.clone());
        } else {
            nts_rows.push(row.clone());
        }
        table.row_f64(ds.name, &row, 1);
    }

    let avg = |rows: &[Vec<f64>]| -> Vec<f64> {
        let n = rows.len() as f64;
        (0..rows[0].len()).map(|c| rows.iter().map(|r| r[c]).sum::<f64>() / n).collect()
    };
    table.row_f64("TS AVG.", &avg(&ts_rows), 1);
    table.row_f64("NON-TS AVG.", &avg(&nts_rows), 1);
    let all: Vec<Vec<f64>> = ts_rows.into_iter().chain(nts_rows).collect();
    table.row_f64("ALL AVG.", &avg(&all), 1);

    table.print();
    if let Ok(p) = table.write_csv("table2_analysis") {
        eprintln!("\nwrote {}", p.display());
    }
}
