//! **Table 6** — end-to-end query performance in the vectorized engine
//! (§4.3): SCAN and SUM at 1/8/16 threads plus COMP, in per-core tuples per
//! cycle, on the City-Temp dataset scaled up by concatenation.
//!
//! The paper scales to 1B doubles on a 16-core Ice Lake; the default here is
//! 20M values (override with `ALP_E2E_VALUES`), and thread counts are clamped
//! to the host's cores — on smaller hosts the scaling columns degenerate but
//! the single-thread ordering (the headline) is preserved.
//!
//! ```sh
//! cargo run --release -p bench --bin table6_endtoend
//! ```

use std::time::Instant;

use bench::tables::Table;
use bench::timing::tsc_ghz;
use vectorq::{Column, Format};

fn formats() -> Vec<Format> {
    let mut out = vec![Format::alp(), Format::Uncompressed];
    for id in ["pde", "patas", "gorilla", "chimp", "chimp128", "gpzip"] {
        out.push(Format::by_id(id).expect("registered serializable codec"));
    }
    out
}

fn scaled_dataset(name: &str, target: usize) -> Vec<f64> {
    let base = bench::dataset(name);
    let mut out = Vec::with_capacity(target);
    while out.len() < target {
        let take = (target - out.len()).min(base.len());
        out.extend_from_slice(&base[..take]);
    }
    out
}

/// Per-core tuples per cycle of `f` over `tuples` total tuples on `threads`.
fn per_core_tpc(tuples: usize, threads: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up, then best of 3.
    f();
    let ghz = tsc_ghz();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let cycles_total = best * ghz * 1e9 * threads as f64;
    tuples as f64 / cycles_total
}

fn main() {
    let target: usize =
        std::env::var("ALP_E2E_VALUES").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000_000);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let thread_counts: Vec<usize> =
        [1usize, 8, 16].iter().map(|&t| t.min(cores)).collect::<Vec<_>>();
    eprintln!("values: {target}, host cores: {cores}, threads tested: {thread_counts:?}");

    let data = scaled_dataset("City-Temp", target);
    let mut table = Table::new(
        "Table 6: end-to-end on City-Temp (per-core tuples/cycle, higher is better)",
        &["SCAN 1", "SCAN 8", "SCAN 16", "SUM 1", "SUM 8", "SUM 16", "COMP", "bits/val"],
    );

    for fmt in formats() {
        // COMP: time the constructor.
        let t0 = Instant::now();
        let col = Column::from_f64(&data, fmt);
        let comp_s = t0.elapsed().as_secs_f64();
        let comp_tpc = if fmt == Format::Uncompressed {
            f64::NAN
        } else {
            data.len() as f64 / (comp_s * tsc_ghz() * 1e9)
        };
        let bits_per_value = col.compressed_bytes() as f64 * 8.0 / data.len() as f64;

        let mut cells = Vec::new();
        for &t in &thread_counts {
            let tpc = per_core_tpc(data.len(), t, || {
                std::hint::black_box(col.par_scan(t));
            });
            cells.push(format!("{tpc:.3}"));
        }
        for &t in &thread_counts {
            let tpc = per_core_tpc(data.len(), t, || {
                std::hint::black_box(col.par_sum(t));
            });
            cells.push(format!("{tpc:.3}"));
        }
        cells.push(if comp_tpc.is_nan() { "N/A".into() } else { format!("{comp_tpc:.3}") });
        cells.push(format!("{bits_per_value:.1}"));
        table.row(fmt.name(), cells);
        eprintln!("done: {}", fmt.name());
    }

    table.print();
    table.write_csv("table6_endtoend").ok();
}
