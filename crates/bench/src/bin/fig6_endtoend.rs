//! **Figure 6** — end-to-end SUM cost in CPU cycles per tuple for five
//! diverse datasets (Gov/26, City-Temp, Food-prices, Blockchain-tr, NYC/29),
//! decomposed into SCAN and summing work (SUM − SCAN), across thread counts.
//!
//! Lower is better. The paper's claims to check: ALP is cheaper end-to-end
//! than every other scheme *and* than uncompressed, and its per-core cost
//! stays flat as threads scale.
//!
//! ```sh
//! cargo run --release -p bench --bin fig6_endtoend
//! ```

use std::time::Instant;

use bench::tables::Table;
use bench::timing::tsc_ghz;
use vectorq::{Column, Format};

const DATASETS: [&str; 5] = ["Gov/26", "City-Temp", "Food-prices", "Blockchain", "NYC/29"];

fn formats() -> Vec<Format> {
    let mut out = vec![Format::alp(), Format::Uncompressed];
    for id in ["pde", "patas", "gorilla", "chimp", "chimp128", "gpzip"] {
        out.push(Format::by_id(id).expect("registered serializable codec"));
    }
    out
}

fn cycles_per_tuple(tuples: usize, threads: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * tsc_ghz() * 1e9 * threads as f64 / tuples as f64
}

fn main() {
    let target: usize =
        std::env::var("ALP_E2E_VALUES").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000_000);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = [1usize, 8.min(cores), 16.min(cores)];
    eprintln!("values: {target}, threads: {threads:?}");

    for name in DATASETS {
        let base = bench::dataset(name);
        let mut data = Vec::with_capacity(target);
        while data.len() < target {
            let take = (target - data.len()).min(base.len());
            data.extend_from_slice(&base[..take]);
        }

        let mut table = Table::new(
            format!("Figure 6: SUM on {name} (cycles per tuple per core, lower is better)"),
            &["scan@1", "sum@1", "sum-scan@1", "sum@8", "sum@16", "bits/val"],
        );
        for fmt in formats() {
            let col = Column::from_f64(&data, fmt);
            let scan1 = cycles_per_tuple(data.len(), 1, || {
                std::hint::black_box(col.par_scan(1));
            });
            let sums: Vec<f64> = threads
                .iter()
                .map(|&t| {
                    cycles_per_tuple(data.len(), t, || {
                        std::hint::black_box(col.par_sum(t));
                    })
                })
                .collect();
            let bpv = col.compressed_bytes() as f64 * 8.0 / data.len() as f64;
            table.row(
                fmt.name(),
                vec![
                    format!("{scan1:.2}"),
                    format!("{:.2}", sums[0]),
                    format!("{:.2}", (sums[0] - scan1).max(0.0)),
                    format!("{:.2}", sums[1]),
                    format!("{:.2}", sums[2]),
                    format!("{bpv:.1}"),
                ],
            );
            eprintln!("done: {name} / {}", fmt.name());
        }
        table.print();
        table.write_csv(&format!("fig6_{}", name.replace('/', "_"))).ok();
    }
}
