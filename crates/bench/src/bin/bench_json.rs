//! Machine-readable benchmark output: per-scheme bits-per-value and
//! throughput for every dataset, plus a morsel-scheduler thread sweep,
//! written as JSON to `results/BENCH_*.json` so downstream tooling (plotting
//! scripts, regression dashboards) can consume runs without scraping table
//! text.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_json
//! ```
//!
//! Ratio-only schemes have no timed byte path, so their records carry no
//! `compress_tpc` / `decompress_tpc` keys at all (consumers test for key
//! presence, never for `null`). `ALP_BENCH_MS=0` skips speed measurement and
//! the thread sweep entirely for a fast ratio-only run.

use alp_core::{Registry, Scratch, TABLE4_IDS};
use bench::scaling::{measure_scaling, sweep_threads};
use bench::schemes::{bits_per_value, measure_speed};
use bench::tables::results_dir;

/// Self-describing schema embedded in the file header, so the format is
/// explicit in every emitted file rather than documented only here.
const SCHEMA: &str = concat!(
    "records[]: one object per (dataset, codec) with bits_per_value always ",
    "present; compress_tpc/decompress_tpc (tuples per CPU cycle, ",
    "single-thread microbenchmark) appear only for codecs with a timed byte ",
    "path — ratio-only codecs omit both keys. thread_sweep[]: wall-clock ",
    "MB/s of par_compress/par_decompress per (codec, threads) on the sweep ",
    "dataset, with *_speedup relative to that codec's threads=1 row and ",
    "verdict in {ok, sublinear, collapse}; threads_available is the host ",
    "hardware parallelism the sweep ran under. service: one query-service ",
    "pass over the sweep dataset (cold then warm predicated sums) with the ",
    "page cache's hit/miss/eviction/bypass counters and byte high-water ",
    "mark, plus a cache-bypass scan comparison — fused_scan_mbps vs ",
    "materialize_scan_mbps (best-of-N interquartile-band predicated sums on a zero-entry cache, ",
    "fused compressed-domain kernels vs forced materialization) with ",
    "valid/invalid validity-bitmap counts. ingest: end-to-end stream-write ",
    "throughput on the sweep dataset — serial_mbps (inline ColumnWriter) vs ",
    "pipelined_mbps (worker-pool PipelinedColumnWriter at the resolved ",
    "threads/depth), best-of-N, byte-identical outputs asserted. scrub: one ",
    "background-scrubber pass over a seeded-corruption store (quarantine via ",
    "a full scan, heal, then a timed scrub_once) — scrub_pass_ms is the ",
    "pass's wall clock, repair_mbps the decoded bytes of re-verified pages ",
    "per second, pages_repaired the quarantined pages returned to service. ",
    "Every run also appends one line to results/BENCH_HISTORY.jsonl (see ",
    "HISTORY_SCHEMA_VERSION)."
);

/// Version stamp of each `results/BENCH_HISTORY.jsonl` line. Bump when the
/// per-line keys change; consumers skip lines with unknown versions.
/// v2 added the pipelined-ingest keys (`ingest_serial_mbps`,
/// `ingest_pipelined_mbps`, `ingest_speedup`, `ingest_threads`,
/// `ingest_depth`); v3 added the scrubber keys (`scrub_pass_ms`,
/// `scrub_repair_mbps`, `scrub_pages_repaired`).
const HISTORY_SCHEMA_VERSION: u32 = 3;

/// Dataset the thread sweep runs on: decimal-heavy and scheme-mixed, so both
/// ALP vector decoding and exception patching are exercised.
const SWEEP_DATASET: &str = "City-Temp";

/// Minimal JSON string escape (registry ids and dataset names are ASCII, but
/// stay correct regardless).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let codecs = Registry::resolve(&TABLE4_IDS).expect("all Table 4 ids registered");
    let mut scratch = Scratch::new();

    let mut records = String::new();
    let mut first = true;
    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        for codec in &codecs {
            let bpv = bits_per_value(*codec, &data, &mut scratch)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.id(), ds.name));
            let speed =
                if batch_ms > 0 { measure_speed(*codec, &data, batch_ms).ok() } else { None };
            if !first {
                records.push_str(",\n");
            }
            first = false;
            // Ratio-only codecs (and ALP_BENCH_MS=0 runs) omit the timing
            // keys instead of writing literal nulls.
            let timing = match speed {
                Some(s) => format!(
                    ", \"compress_tpc\": {}, \"decompress_tpc\": {}",
                    json_f64(s.compress_tpc()),
                    json_f64(s.decompress_tpc()),
                ),
                None => String::new(),
            };
            records.push_str(&format!(
                concat!(
                    "    {{\"dataset\": \"{}\", \"time_series\": {}, \"codec\": \"{}\", ",
                    "\"name\": \"{}\", \"bits_per_value\": {}{}}}"
                ),
                esc(ds.name),
                ds.time_series,
                esc(codec.id()),
                esc(codec.name()),
                json_f64(bpv),
                timing,
            ));
        }
        eprintln!("done: {}", ds.name);
    }

    let sweep_json = if batch_ms > 0 { thread_sweep_json() } else { String::new() };
    let service = service_json(batch_ms);
    let ingest = ingest_json(batch_ms);
    let scrub = scrub_json(batch_ms);

    let doc = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"{}\",\n",
            "  \"values_per_dataset\": {},\n",
            "  \"seed\": {},\n",
            "  \"batch_ms\": {},\n",
            "  \"threads_available\": {},\n",
            "  \"sweep_dataset\": \"{}\",\n",
            "  \"records\": [\n{}\n  ],\n",
            "  \"thread_sweep\": [\n{}\n  ],\n",
            "  \"service\": {},\n",
            "  \"ingest\": {},\n",
            "  \"scrub\": {}\n",
            "}}\n"
        ),
        esc(SCHEMA),
        bench::bench_values(),
        bench::bench_seed(),
        batch_ms,
        alp_core::par::resolve_threads(None),
        esc(SWEEP_DATASET),
        records,
        sweep_json,
        service.json,
        ingest.json,
        scrub.json,
    );

    std::fs::create_dir_all(results_dir()).ok();
    let path = results_dir().join(format!(
        "BENCH_s{}_v{}.json",
        bench::bench_seed(),
        bench::bench_values()
    ));
    std::fs::write(&path, &doc).expect("write json");
    println!("wrote {}", path.display());

    append_history(batch_ms, &service, &ingest, &scrub);
}

/// Appends this run's headline numbers as one schema-versioned line of
/// `results/BENCH_HISTORY.jsonl` — the ROADMAP's perf ledger. The file is
/// append-only: each run adds a line, so regressions are a diff away.
fn append_history(batch_ms: u64, service: &ServiceBench, ingest: &IngestBench, scrub: &ScrubBench) {
    use std::io::Write;

    let unix_epoch_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = format!(
        concat!(
            "{{\"history_schema_version\": {}, \"unix_epoch_s\": {}, ",
            "\"seed\": {}, \"values_per_dataset\": {}, \"batch_ms\": {}, ",
            "\"threads_available\": {}, \"sweep_dataset\": \"{}\", ",
            "\"service_fused_scan_mbps\": {}, ",
            "\"service_materialize_scan_mbps\": {}, ",
            "\"service_fused_speedup\": {}, ",
            "\"ingest_threads\": {}, \"ingest_depth\": {}, ",
            "\"ingest_serial_mbps\": {}, \"ingest_pipelined_mbps\": {}, ",
            "\"ingest_speedup\": {}, ",
            "\"scrub_pass_ms\": {}, \"scrub_repair_mbps\": {}, ",
            "\"scrub_pages_repaired\": {}}}\n"
        ),
        HISTORY_SCHEMA_VERSION,
        unix_epoch_s,
        bench::bench_seed(),
        bench::bench_values(),
        batch_ms,
        alp_core::par::resolve_threads(None),
        esc(SWEEP_DATASET),
        json_f64(service.fused_mbps),
        json_f64(service.materialize_mbps),
        json_f64(service.fused_mbps / service.materialize_mbps),
        ingest.threads,
        ingest.depth,
        json_f64(ingest.serial_mbps),
        json_f64(ingest.pipelined_mbps),
        json_f64(ingest.pipelined_mbps / ingest.serial_mbps),
        json_f64(scrub.pass_ms),
        json_f64(scrub.repair_mbps),
        scrub.pages_repaired,
    );
    let path = results_dir().join("BENCH_HISTORY.jsonl");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match appended {
        Ok(()) => println!("appended {}", path.display()),
        Err(e) => eprintln!("could not append {}: {e}", path.display()),
    }
}

/// The query-service section plus the headline numbers the history ledger
/// reuses.
struct ServiceBench {
    json: String,
    /// Cache-bypass predicated-sum throughput, fused compressed-domain path.
    fused_mbps: f64,
    /// Same scan with `no_fused` forcing materialization.
    materialize_mbps: f64,
}

/// One pass through the query service on the sweep dataset: a cold
/// predicated sum (all cache misses) and a warm repeat (all hits), reporting
/// the page cache's counters so regression dashboards can watch cache
/// effectiveness alongside raw codec speed — plus a cache-bypass comparison
/// of the fused compressed-domain scan against forced materialization
/// (zero-entry cache, best-of-N, bit-identical results asserted).
fn service_json(batch_ms: u64) -> ServiceBench {
    use vectorq::cache::CacheConfig;
    use vectorq::service::{QueryOptions, QueryResult, Service, ServiceConfig, Store};

    let data = bench::dataset(SWEEP_DATASET);
    let column = vectorq::Column::from_f64(&data, vectorq::Format::alp());
    let store = std::sync::Arc::new(Store::new(column, CacheConfig::default_config()));
    let service = Service::new(store, ServiceConfig::default());
    let opts = QueryOptions::default();
    let (lo, hi) = (f64::NEG_INFINITY, f64::INFINITY);
    let cold = service.sum_where(lo, hi, &opts).expect("cold service query");
    let warm = service.sum_where(lo, hi, &opts).expect("warm service query");
    let stats = service.cache_stats();

    // Cache-bypass comparison: a zero-entry cache predicts a bypass on every
    // miss, so default options run the fused kernels; `no_fused` forces the
    // materializing path over the same pages. The predicate is the dataset's
    // interquartile band — a selective scan is the workload predicated
    // aggregates exist for, and it exercises the hit-bitmap sparse chain on
    // both paths rather than degenerating to a full-column sum.
    let (band_lo, band_hi) = {
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        (sorted[sorted.len() / 4], sorted[3 * sorted.len() / 4])
    };
    let bypass_column = vectorq::Column::from_f64(&data, vectorq::Format::alp());
    let bypass = std::sync::Arc::new(Store::new(
        bypass_column,
        CacheConfig { max_entries: 0, ..CacheConfig::default_config() },
    ));
    let bypass_svc = Service::new(bypass, ServiceConfig::default());
    let reps = if batch_ms == 0 { 1 } else { 5 };
    let run = |opts: &QueryOptions| -> (QueryResult, f64) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let r = bypass_svc.sum_where(band_lo, band_hi, opts).expect("bypass service query");
            best = best.min(r.elapsed.as_secs_f64());
            last = Some(r);
        }
        (last.expect("reps >= 1"), best)
    };
    let (fused, fused_s) = run(&QueryOptions::default());
    let (mat, mat_s) = run(&QueryOptions { no_fused: true, ..QueryOptions::default() });
    assert_eq!(
        fused.value.sum.to_bits(),
        mat.value.sum.to_bits(),
        "fused and materializing bypass scans must agree bit-for-bit"
    );
    assert!(fused.pages_fused > 0, "bypass scan must exercise the fused path");
    let mb = (data.len() * 8) as f64 / 1e6;
    let (fused_mbps, materialize_mbps) = (mb / fused_s, mb / mat_s);

    let json = format!(
        concat!(
            "{{\"dataset\": \"{}\", \"pages\": {}, ",
            "\"cold_query_ms\": {}, \"warm_query_ms\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, ",
            "\"cache_bypasses\": {}, \"cache_bytes_peak\": {}, ",
            "\"bypass_pages_fused\": {}, \"valid_values\": {}, \"invalid_values\": {}, ",
            "\"fused_scan_mbps\": {}, \"materialize_scan_mbps\": {}, ",
            "\"fused_speedup\": {}}}"
        ),
        esc(SWEEP_DATASET),
        service.store().pages(),
        json_f64(cold.elapsed.as_secs_f64() * 1e3),
        json_f64(warm.elapsed.as_secs_f64() * 1e3),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.bypasses,
        stats.bytes_peak,
        fused.pages_fused,
        fused.value.valid,
        fused.value.invalid,
        json_f64(fused_mbps),
        json_f64(materialize_mbps),
        json_f64(fused_mbps / materialize_mbps),
    );
    ServiceBench { json, fused_mbps, materialize_mbps }
}

/// The pipelined-ingest section plus the headline numbers the history
/// ledger reuses.
struct IngestBench {
    json: String,
    /// Worker threads the pipelined run used (caller thread included).
    threads: usize,
    /// In-flight row-group bound of the pipelined run.
    depth: usize,
    /// End-to-end stream-write throughput, inline `ColumnWriter`.
    serial_mbps: f64,
    /// Same ingest through the `PipelinedColumnWriter` worker pool.
    pipelined_mbps: f64,
}

/// End-to-end ingest comparison on the sweep dataset: the serial
/// `ColumnWriter` versus the `PipelinedColumnWriter` at the resolved
/// thread/depth knobs, chunked pushes, best-of-N wall clock, byte-identical
/// streams asserted every rep.
fn ingest_json(batch_ms: u64) -> IngestBench {
    use alp_core::ingest::{
        resolve_pipeline_depth, ColumnWriter, PipelineConfig, PipelinedColumnWriter,
    };

    let data = bench::dataset(SWEEP_DATASET);
    let threads = alp_core::par::resolve_threads(None);
    let depth = resolve_pipeline_depth(None);
    let reps = if batch_ms == 0 { 1 } else { 5 };
    // Push granularity: smaller than a row-group, as a streaming source
    // delivering batches would.
    let chunk = 64 * 1024;

    let mut serial_s = f64::INFINITY;
    let mut serial_stream = Vec::new();
    for _ in 0..reps {
        let mut sink = Vec::new();
        let t0 = std::time::Instant::now();
        let mut writer = ColumnWriter::<f64, _>::new(&mut sink);
        for c in data.chunks(chunk) {
            writer.push(c).expect("serial ingest push");
        }
        let summary = writer.finish().expect("serial ingest finish");
        serial_s = serial_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(summary.total_bytes, sink.len(), "summary must match sink length");
        serial_stream = sink;
    }

    let config = PipelineConfig { threads, depth, panic_at: None };
    let mut pipelined_s = f64::INFINITY;
    let mut rowgroups = 0usize;
    for _ in 0..reps {
        let mut sink = Vec::new();
        let t0 = std::time::Instant::now();
        let mut writer = PipelinedColumnWriter::<f64, _>::new(&mut sink, config);
        for c in data.chunks(chunk) {
            writer.push(c).expect("pipelined ingest push");
        }
        let summary = writer.finish().expect("pipelined ingest finish");
        pipelined_s = pipelined_s.min(t0.elapsed().as_secs_f64());
        rowgroups = summary.rowgroups;
        assert_eq!(sink, serial_stream, "pipelined ingest must be byte-identical to serial");
    }

    let mb = (data.len() * 8) as f64 / 1e6;
    let (serial_mbps, pipelined_mbps) = (mb / serial_s, mb / pipelined_s);
    let json = format!(
        concat!(
            "{{\"dataset\": \"{}\", \"threads\": {}, \"depth\": {}, ",
            "\"rowgroups\": {}, \"stream_bytes\": {}, ",
            "\"serial_mbps\": {}, \"pipelined_mbps\": {}, \"speedup\": {}}}"
        ),
        esc(SWEEP_DATASET),
        threads,
        depth,
        rowgroups,
        serial_stream.len(),
        json_f64(serial_mbps),
        json_f64(pipelined_mbps),
        json_f64(pipelined_mbps / serial_mbps),
    );
    eprintln!("ingest done: serial {serial_mbps:.0} MB/s, pipelined {pipelined_mbps:.0} MB/s");
    IngestBench { json, threads, depth, serial_mbps, pipelined_mbps }
}

/// The background-scrubber section plus the headline numbers the history
/// ledger reuses.
struct ScrubBench {
    json: String,
    /// Wall clock of one healing `scrub_once` pass, milliseconds.
    pass_ms: f64,
    /// Decoded bytes of re-verified pages per second during that pass.
    repair_mbps: f64,
    /// Quarantined pages the pass returned to service.
    pages_repaired: usize,
}

/// One detect→contain→repair cycle on the sweep dataset: a seeded poison
/// plan quarantines a deterministic page set during a full scan, the fault
/// is healed, and a single `scrub_once` pass re-verifies and un-quarantines
/// every page — timed best-of-N with a fresh store per rep, since a
/// successful scrub drains the quarantine it measures.
fn scrub_json(batch_ms: u64) -> ScrubBench {
    use vectorq::cache::CacheConfig;
    use vectorq::scrub::ScrubOptions;
    use vectorq::service::{PoisonPlan, QueryOptions, Service, ServiceConfig, Store};

    let data = bench::dataset(SWEEP_DATASET);
    // Small pages so even reduced-size runs span enough of them for the
    // ~25% poison rate to hit, and a seed picked deterministically from the
    // page geometry (not ALP_FAULT_SEED: benchmark numbers must be
    // comparable across runs regardless of the fault environment).
    let page_rows = 10 * 1024;
    let cache = CacheConfig { page_size_rows: page_rows, ..CacheConfig::default_config() };
    let page_count = data.len().div_ceil(page_rows);
    let seed = (1..=64u64)
        .find(|&s| (0..page_count).any(|p| PoisonPlan::seeded(s).poisons(p)))
        .expect("some seed in 1..=64 poisons a page");

    let reps = if batch_ms == 0 { 1 } else { 3 };
    let mut best_s = f64::INFINITY;
    let mut pages_repaired = 0usize;
    let mut repaired_bytes = 0usize;
    let mut pages_total = 0usize;
    for _ in 0..reps {
        let column = vectorq::Column::from_f64(&data, vectorq::Format::alp());
        let store =
            std::sync::Arc::new(Store::with_poison(column, cache, PoisonPlan::seeded(seed)));
        let service = Service::new(std::sync::Arc::clone(&store), ServiceConfig::default());
        // Detect + contain: the full scan quarantines every poisoned page.
        let scan = service
            .sum_where(f64::NEG_INFINITY, f64::INFINITY, &QueryOptions::default())
            .expect("quarantining scan");
        assert!(!scan.loss.is_complete(), "seeded poison must quarantine pages");
        let bad = store.quarantined_pages();
        repaired_bytes = bad.iter().map(|&p| store.page_rows(p) * 8).sum();
        pages_total = store.pages();
        // Heal, then time the repair pass.
        store.heal_poison();
        let t0 = std::time::Instant::now();
        let report = service.scrub_once(&ScrubOptions::default());
        best_s = best_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(report.pages_repaired, bad.len(), "healed pages must all repair");
        pages_repaired = report.pages_repaired;
    }

    let pass_ms = best_s * 1e3;
    let repair_mbps = repaired_bytes as f64 / 1e6 / best_s;
    let json = format!(
        concat!(
            "{{\"dataset\": \"{}\", \"pages\": {}, \"pages_repaired\": {}, ",
            "\"repaired_bytes\": {}, \"scrub_pass_ms\": {}, \"repair_mbps\": {}}}"
        ),
        esc(SWEEP_DATASET),
        pages_total,
        pages_repaired,
        repaired_bytes,
        json_f64(pass_ms),
        json_f64(repair_mbps),
    );
    eprintln!("scrub done: {pages_repaired} pages repaired in {pass_ms:.2} ms");
    ScrubBench { json, pass_ms, repair_mbps, pages_repaired }
}

/// Runs the 1/2/4/N morsel-scheduler sweep on every codec with a timed byte
/// path and renders the `thread_sweep` records.
fn thread_sweep_json() -> String {
    let sweep = sweep_threads();
    let data = bench::dataset(SWEEP_DATASET);
    let mut rows = Vec::new();
    for codec in Registry::all() {
        if codec.caps().ratio_only {
            continue;
        }
        let points = measure_scaling(*codec, &data, &sweep, 3)
            .unwrap_or_else(|e| panic!("{} sweep: {e}", codec.id()));
        for p in &points {
            rows.push(format!(
                concat!(
                    "    {{\"codec\": \"{}\", \"threads\": {}, ",
                    "\"compress_mbps\": {}, \"decompress_mbps\": {}, ",
                    "\"compress_speedup\": {}, \"decompress_speedup\": {}, ",
                    "\"verdict\": \"{}\"}}"
                ),
                esc(codec.id()),
                p.threads,
                json_f64(p.compress_mbps),
                json_f64(p.decompress_mbps),
                json_f64(p.compress_speedup),
                json_f64(p.decompress_speedup),
                p.verdict(),
            ));
        }
        eprintln!("sweep done: {}", codec.id());
    }
    rows.join(",\n")
}
