//! Machine-readable benchmark output: per-scheme bits-per-value and
//! throughput for every dataset, written as JSON to `results/BENCH_*.json`
//! so downstream tooling (plotting scripts, regression dashboards) can
//! consume runs without scraping table text.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_json
//! ```
//!
//! Speed measurement is skipped for ratio-only schemes (their `compress_tpc`
//! / `decompress_tpc` fields are `null`). `ALP_BENCH_MS=0` skips speed
//! entirely for a fast ratio-only run.

use alp_core::{Registry, Scratch, TABLE4_IDS};
use bench::schemes::{bits_per_value, measure_speed};
use bench::tables::results_dir;

/// Minimal JSON string escape (registry ids and dataset names are ASCII, but
/// stay correct regardless).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let batch_ms: u64 =
        std::env::var("ALP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let codecs = Registry::resolve(&TABLE4_IDS).expect("all Table 4 ids registered");
    let mut scratch = Scratch::new();

    let mut records = String::new();
    let mut first = true;
    for ds in &datagen::DATASETS {
        let data = bench::dataset(ds.name);
        for codec in &codecs {
            let bpv = bits_per_value(*codec, &data, &mut scratch)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.id(), ds.name));
            let speed = if batch_ms > 0 { measure_speed(*codec, &data, batch_ms).ok() } else { None };
            if !first {
                records.push_str(",\n");
            }
            first = false;
            records.push_str(&format!(
                concat!(
                    "    {{\"dataset\": \"{}\", \"time_series\": {}, \"codec\": \"{}\", ",
                    "\"name\": \"{}\", \"bits_per_value\": {}, ",
                    "\"compress_tpc\": {}, \"decompress_tpc\": {}}}"
                ),
                esc(ds.name),
                ds.time_series,
                esc(codec.id()),
                esc(codec.name()),
                json_f64(Some(bpv)),
                json_f64(speed.map(|s| s.compress_tpc())),
                json_f64(speed.map(|s| s.decompress_tpc())),
            ));
        }
        eprintln!("done: {}", ds.name);
    }

    let doc = format!(
        concat!(
            "{{\n",
            "  \"values_per_dataset\": {},\n",
            "  \"seed\": {},\n",
            "  \"batch_ms\": {},\n",
            "  \"records\": [\n{}\n  ]\n",
            "}}\n"
        ),
        bench::bench_values(),
        bench::bench_seed(),
        batch_ms,
        records,
    );

    std::fs::create_dir_all(results_dir()).ok();
    let path = results_dir()
        .join(format!("BENCH_s{}_v{}.json", bench::bench_seed(), bench::bench_values()));
    std::fs::write(&path, &doc).expect("write json");
    println!("wrote {}", path.display());
}
