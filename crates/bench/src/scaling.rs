//! Thread-scaling measurement over the morsel scheduler.
//!
//! Wall-clock throughput of [`ColumnCodec::par_compress`] /
//! [`ColumnCodec::par_decompress`] at a sweep of thread counts, with speedup
//! relative to the single-thread run. Cycle counters are the right tool for
//! single-core kernel speed (see [`crate::timing`]); scaling is a wall-clock
//! question — the point is elapsed time across cores, not work per core.

use alp_core::{ColumnCodec, CoreError};
use std::time::Instant;

/// One measured thread count for one codec.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads requested (the scheduler caps at the morsel count).
    pub threads: usize,
    /// Wall-clock compression throughput in MB/s of raw input.
    pub compress_mbps: f64,
    /// Wall-clock decompression throughput in MB/s of raw output.
    pub decompress_mbps: f64,
    /// Decompression speedup over the `threads = 1` point of the same sweep.
    pub decompress_speedup: f64,
    /// Compression speedup over the `threads = 1` point of the same sweep.
    pub compress_speedup: f64,
}

impl ScalingPoint {
    /// Parallel efficiency of decompression: speedup / threads (1.0 = linear).
    pub fn efficiency(&self) -> f64 {
        self.decompress_speedup / self.threads as f64
    }

    /// Classifies this point: `"ok"` (efficiency >= 50%), `"sublinear"`
    /// (positive but below-half speedup per thread), or `"collapse"` (more
    /// threads made decompression *slower* than one thread — the scheduler
    /// is oversubscribed, e.g. more workers than hardware cores).
    pub fn verdict(&self) -> &'static str {
        if self.threads <= 1 || self.efficiency() >= 0.5 {
            "ok"
        } else if self.decompress_speedup < 1.0 {
            "collapse"
        } else {
            "sublinear"
        }
    }
}

/// The standard sweep: 1, 2, 4, and the hardware thread count, deduplicated
/// and sorted. On a single-core host this is still `[1, 2, 4]` — the higher
/// counts document oversubscription honestly rather than being skipped.
pub fn sweep_threads() -> Vec<usize> {
    let n = alp_core::par::resolve_threads(None);
    let mut sweep = vec![1, 2, 4, n];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// Measures `codec` at each thread count in `sweep` on `data`, best-of-
/// `repeats` wall clock per point. The chunk size shrinks below the default
/// when the column is small so every sweep still has enough morsels to fan
/// out (at least two per requested worker where possible).
pub fn measure_scaling(
    codec: &dyn ColumnCodec,
    data: &[f64],
    sweep: &[usize],
    repeats: u32,
) -> Result<Vec<ScalingPoint>, CoreError> {
    let max_threads = sweep.iter().copied().max().unwrap_or(1);
    let chunk = chunk_for(data.len(), max_threads);
    let mb = data.len() as f64 * 8.0 / 1e6;

    let mut points = Vec::with_capacity(sweep.len());
    let mut base: Option<(f64, f64)> = None;
    for &threads in sweep {
        let mut best_c = f64::INFINITY;
        let mut best_d = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let t0 = Instant::now();
            let blocks = codec.par_compress(data, chunk, threads)?;
            best_c = best_c.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let back = codec.par_decompress(&blocks, threads)?;
            best_d = best_d.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(&back);
        }
        let (base_c, base_d) = *base.get_or_insert((best_c, best_d));
        points.push(ScalingPoint {
            threads,
            compress_mbps: mb / best_c,
            decompress_mbps: mb / best_d,
            compress_speedup: base_c / best_c,
            decompress_speedup: base_d / best_d,
        });
    }
    Ok(points)
}

/// Chunk size giving at least two morsels per worker on columns that allow
/// it, never below one ALP vector, capped at the library default.
fn chunk_for(values: usize, max_threads: usize) -> usize {
    let target_morsels = (2 * max_threads).max(1);
    (values.div_ceil(target_morsels))
        .next_multiple_of(alp::VECTOR_SIZE)
        .min(alp_core::par::DEFAULT_CHUNK_VALUES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_core::Registry;

    #[test]
    fn sweep_is_sorted_and_unique() {
        let s = sweep_threads();
        assert!(s.contains(&1) && s.contains(&2) && s.contains(&4));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scaling_points_cover_the_sweep_with_finite_throughput() {
        let data: Vec<f64> = (0..40_000).map(|i| (i % 811) as f64 / 4.0).collect();
        let codec = Registry::get("gorilla").unwrap();
        let points = measure_scaling(codec, &data, &[1, 2, 4], 1).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.compress_mbps.is_finite() && p.compress_mbps > 0.0);
            assert!(p.decompress_mbps.is_finite() && p.decompress_mbps > 0.0);
        }
        assert_eq!(points[0].threads, 1);
        assert_eq!(points[0].decompress_speedup, 1.0);
    }

    #[test]
    fn verdict_thresholds() {
        let mk = |threads, decompress_speedup| ScalingPoint {
            threads,
            compress_mbps: 1.0,
            decompress_mbps: 1.0,
            compress_speedup: 1.0,
            decompress_speedup,
        };
        assert_eq!(mk(1, 1.0).verdict(), "ok");
        assert_eq!(mk(4, 3.6).verdict(), "ok");
        assert_eq!(mk(4, 1.5).verdict(), "sublinear");
        assert_eq!(mk(4, 0.7).verdict(), "collapse");
    }

    #[test]
    fn chunks_give_every_worker_morsels() {
        let chunk = chunk_for(100_000, 4);
        assert!(chunk >= alp::VECTOR_SIZE);
        assert!(100_000usize.div_ceil(chunk) >= 8);
        // Large columns stay at the default granularity.
        assert_eq!(chunk_for(10_000_000, 4), alp_core::par::DEFAULT_CHUNK_VALUES);
    }
}
