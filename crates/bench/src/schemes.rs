//! Registry of every compression scheme in the evaluation, with uniform
//! ratio- and speed-measurement entry points.

use alp::cascade::CascadeCompressor;
use alp::{Compressor, VECTOR_SIZE};

use crate::timing::{measure, Measurement};

/// One column of the paper's Table 4 / one series of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// A baseline float codec.
    Codec(codecs::Codec),
    /// ALP (this paper).
    Alp,
    /// ALP behind a Dictionary/RLE cascade ("LWC+ALP").
    LwcAlp,
    /// GPZip — the Zstd stand-in.
    Gpzip,
}

impl Scheme {
    /// Table 4 column order.
    pub const TABLE4: [Scheme; 9] = [
        Scheme::Codec(codecs::Codec::Gorilla),
        Scheme::Codec(codecs::Codec::Chimp),
        Scheme::Codec(codecs::Codec::Chimp128),
        Scheme::Codec(codecs::Codec::Patas),
        Scheme::Codec(codecs::Codec::Pde),
        Scheme::Codec(codecs::Codec::Elf),
        Scheme::Alp,
        Scheme::LwcAlp,
        Scheme::Gpzip,
    ];

    /// Schemes measured for speed (Figure 1 / Table 5): the cascade is a
    /// ratio-only configuration, everything else is timed.
    pub const SPEED: [Scheme; 8] = [
        Scheme::Alp,
        Scheme::Codec(codecs::Codec::Chimp),
        Scheme::Codec(codecs::Codec::Chimp128),
        Scheme::Codec(codecs::Codec::Elf),
        Scheme::Codec(codecs::Codec::Gorilla),
        Scheme::Codec(codecs::Codec::Pde),
        Scheme::Codec(codecs::Codec::Patas),
        Scheme::Gpzip,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Codec(c) => c.name(),
            Scheme::Alp => "ALP",
            Scheme::LwcAlp => "LWC+ALP",
            Scheme::Gpzip => "Zstd*",
        }
    }

    /// Compression ratio in bits per value on `data` (verifying losslessness).
    pub fn bits_per_value(&self, data: &[f64]) -> f64 {
        assert!(!data.is_empty());
        match self {
            Scheme::Codec(c) => {
                let bytes = c.compress_f64(data);
                let back = c.decompress_f64(&bytes, data.len());
                assert_roundtrip(data, &back, c.name());
                bytes.len() as f64 * 8.0 / data.len() as f64
            }
            Scheme::Alp => {
                let compressed = Compressor::new().compress(data);
                let back = compressed.decompress();
                assert_roundtrip(data, &back, "ALP");
                compressed.bits_per_value()
            }
            Scheme::LwcAlp => {
                let compressed = CascadeCompressor::new().compress(data);
                let back = compressed.decompress();
                assert_roundtrip(data, &back, "LWC+ALP");
                compressed.bits_per_value()
            }
            Scheme::Gpzip => {
                let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
                let compressed = gpzip::compress(&bytes);
                assert_eq!(gpzip::decompress(&compressed), bytes, "GPZip roundtrip");
                compressed.len() as f64 * 8.0 / data.len() as f64
            }
        }
    }
}

fn assert_roundtrip(data: &[f64], back: &[f64], name: &str) {
    assert_eq!(data.len(), back.len(), "{name} length");
    for (i, (a, b)) in data.iter().zip(back).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{name} not lossless at {i}");
    }
}

/// Speed measurement of one scheme on one dataset: an L1-resident vector
/// (1024 values) compressed/decompressed repeatedly, except GPZip which runs
/// on a whole row-group (it is block-based — §4.2's methodology).
#[derive(Debug, Clone, Copy)]
pub struct Speed {
    /// Compression throughput.
    pub compress: Measurement,
    /// Decompression throughput.
    pub decompress: Measurement,
    /// Values processed per call.
    pub tuples: usize,
}

impl Speed {
    /// Tuples per cycle for compression.
    pub fn compress_tpc(&self) -> f64 {
        self.compress.tuples_per_cycle(self.tuples)
    }
    /// Tuples per cycle for decompression.
    pub fn decompress_tpc(&self) -> f64 {
        self.decompress.tuples_per_cycle(self.tuples)
    }
}

/// Measures a scheme's speed on a dataset (first 1024 values / first
/// row-group). `min_batch_ms` trades accuracy for runtime.
pub fn measure_speed(scheme: Scheme, data: &[f64], min_batch_ms: u64) -> Speed {
    let vector: Vec<f64> = data.iter().copied().take(VECTOR_SIZE).collect();
    assert_eq!(vector.len(), VECTOR_SIZE, "need at least one full vector");
    match scheme {
        Scheme::Alp => {
            // Micro-benchmark scope per the paper: second-level sampling +
            // encode (+FFOR) for compression; fused decode for decompression.
            // Row-group (first-level) sampling is amortized and excluded.
            let params = alp::SamplerParams::default();
            let outcome = alp::sampler::first_level(data, &params);
            let combos = outcome.combinations.clone();
            let mut stats = alp::SamplerStats::default();
            let compress = measure(
                || {
                    let combo = alp::sampler::second_level(&vector, &combos, &params, &mut stats);
                    std::hint::black_box(alp::encode::encode_vector(&vector, combo.e, combo.f));
                },
                min_batch_ms,
                3,
            );
            let combo = alp::sampler::second_level(&vector, &combos, &params, &mut stats);
            let encoded = alp::encode::encode_vector(&vector, combo.e, combo.f);
            let mut out = vec![0.0f64; VECTOR_SIZE];
            let decompress = measure(
                || {
                    alp::decode::decode_vector(&encoded, &mut out);
                    std::hint::black_box(&out);
                },
                min_batch_ms,
                3,
            );
            Speed { compress, decompress, tuples: VECTOR_SIZE }
        }
        Scheme::Codec(codec) => {
            let compress = measure(
                || {
                    std::hint::black_box(codec.compress_f64(&vector));
                },
                min_batch_ms,
                3,
            );
            let bytes = codec.compress_f64(&vector);
            let decompress = measure(
                || {
                    std::hint::black_box(codec.decompress_f64(&bytes, vector.len()));
                },
                min_batch_ms,
                3,
            );
            Speed { compress, decompress, tuples: VECTOR_SIZE }
        }
        Scheme::Gpzip => {
            let rg_len = data.len().min(vectorq::ROWGROUP_VALUES);
            let raw: Vec<u8> = data[..rg_len].iter().flat_map(|v| v.to_le_bytes()).collect();
            let compress = measure(
                || {
                    std::hint::black_box(gpzip::compress(&raw));
                },
                min_batch_ms,
                3,
            );
            let bytes = gpzip::compress(&raw);
            let decompress = measure(
                || {
                    std::hint::black_box(gpzip::decompress(&bytes));
                },
                min_batch_ms,
                3,
            );
            Speed { compress, decompress, tuples: rg_len }
        }
        Scheme::LwcAlp => panic!("LWC+ALP is a ratio-only configuration"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table4_scheme_reports_a_ratio() {
        let data: Vec<f64> = (0..4096).map(|i| ((i % 91) as f64) / 10.0).collect();
        for scheme in Scheme::TABLE4 {
            let bpv = scheme.bits_per_value(&data);
            assert!(bpv > 0.0 && bpv < 128.0, "{}: {bpv}", scheme.name());
        }
    }

    #[test]
    fn alp_beats_xor_codecs_on_decimals() {
        let data: Vec<f64> = (0..8192).map(|i| ((i * 37 % 9973) as f64) / 100.0).collect();
        let alp = Scheme::Alp.bits_per_value(&data);
        let gorilla = Scheme::Codec(codecs::Codec::Gorilla).bits_per_value(&data);
        assert!(alp < gorilla, "alp {alp} gorilla {gorilla}");
    }

    #[test]
    fn speed_measurement_runs_quickly() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64) / 8.0).collect();
        let s = measure_speed(Scheme::Alp, &data, 1);
        assert!(s.decompress_tpc() > 0.0);
        assert!(s.compress_tpc() > 0.0);
    }
}
