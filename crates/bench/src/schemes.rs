//! Registry-driven measurement entry points: every scheme in the evaluation
//! is a [`ColumnCodec`] resolved from [`alp_core::Registry`]; this module
//! only measures, it no longer enumerates.

use alp::VECTOR_SIZE;
use alp_core::{ColumnCodec, CoreError, Scratch};

use crate::timing::{measure, Measurement};

/// Compression ratio of `codec` on `data` in bits per value, verifying
/// losslessness on the way.
///
/// Errs with [`CoreError::Empty`] on an empty column (a ratio of zero values
/// is undefined) and with [`CoreError::NotLossless`] if the roundtrip changed
/// any bit pattern.
pub fn bits_per_value(
    codec: &dyn ColumnCodec,
    data: &[f64],
    scratch: &mut Scratch,
) -> Result<f64, CoreError> {
    if data.is_empty() {
        return Err(CoreError::Empty);
    }
    let bits = codec.verified_compressed_bits(data, scratch)?;
    Ok(bits as f64 / data.len() as f64)
}

/// Speed measurement of one scheme on one dataset: an L1-resident vector
/// (1024 values) compressed/decompressed repeatedly, except the block-based
/// general-purpose compressors which run on a whole row-group (§4.2's
/// methodology).
#[derive(Debug, Clone, Copy)]
pub struct Speed {
    /// Compression throughput.
    pub compress: Measurement,
    /// Decompression throughput.
    pub decompress: Measurement,
    /// Values processed per call.
    pub tuples: usize,
}

impl Speed {
    /// Tuples per cycle for compression.
    pub fn compress_tpc(&self) -> f64 {
        self.compress.tuples_per_cycle(self.tuples)
    }
    /// Tuples per cycle for decompression.
    pub fn decompress_tpc(&self) -> f64 {
        self.decompress.tuples_per_cycle(self.tuples)
    }
}

/// Measures a codec's speed on a dataset (first 1024 values, or the first
/// row-group for block-based codecs). `min_batch_ms` trades accuracy for
/// runtime.
///
/// Errs with [`CoreError::Unsupported`] for ratio-only schemes and
/// [`CoreError::Empty`] when `data` has less than one full vector.
pub fn measure_speed(
    codec: &dyn ColumnCodec,
    data: &[f64],
    min_batch_ms: u64,
) -> Result<Speed, CoreError> {
    let caps = codec.caps();
    if caps.ratio_only {
        return Err(CoreError::Unsupported { codec: codec.id(), what: "speed measurement" });
    }
    if data.len() < VECTOR_SIZE {
        return Err(CoreError::Empty);
    }
    let vector = &data[..VECTOR_SIZE];
    if codec.id() == "alp" {
        // Micro-benchmark scope per the paper: second-level sampling +
        // encode (+FFOR) for compression; fused decode for decompression.
        // Row-group (first-level) sampling is amortized and excluded, as is
        // the byte serialization the generic path below would time.
        let params = alp::SamplerParams::default();
        let outcome = alp::sampler::first_level(data, &params);
        let combos = outcome.combinations.clone();
        let mut stats = alp::SamplerStats::default();
        let compress = measure(
            || {
                let combo = alp::sampler::second_level(vector, &combos, &params, &mut stats);
                std::hint::black_box(alp::encode::encode_vector(vector, combo.e, combo.f));
            },
            min_batch_ms,
            3,
        );
        let combo = alp::sampler::second_level(vector, &combos, &params, &mut stats);
        let encoded = alp::encode::encode_vector(vector, combo.e, combo.f);
        let mut out = vec![0.0f64; VECTOR_SIZE];
        let decompress = measure(
            || {
                alp::decode::decode_vector(&encoded, encoded.view(), &mut out);
                std::hint::black_box(&out);
            },
            min_batch_ms,
            3,
        );
        return Ok(Speed { compress, decompress, tuples: VECTOR_SIZE });
    }
    // Block-based codecs get a whole row-group per call; vector-granular
    // codecs get one L1-resident vector.
    let input =
        if caps.block_based { &data[..data.len().min(vectorq::ROWGROUP_VALUES)] } else { vector };
    let mut scratch = Scratch::new();
    let mut bytes = Vec::new();
    codec.try_compress_into(input, &mut bytes, &mut scratch)?;
    let mut stage = Vec::new();
    let compress = measure(
        || {
            codec
                .try_compress_into(input, &mut stage, &mut scratch)
                .expect("compression succeeded above");
            std::hint::black_box(&stage);
        },
        min_batch_ms,
        3,
    );
    let mut out = Vec::new();
    let decompress = measure(
        || {
            codec
                .try_decompress_into(&bytes, input.len(), &mut out, &mut scratch)
                .expect("decoding bytes we just compressed");
            std::hint::black_box(&out);
        },
        min_batch_ms,
        3,
    );
    Ok(Speed { compress, decompress, tuples: input.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alp_core::Registry;

    #[test]
    fn every_table4_scheme_reports_a_ratio() {
        let data: Vec<f64> = (0..4096).map(|i| ((i % 91) as f64) / 10.0).collect();
        let mut scratch = Scratch::new();
        for id in alp_core::TABLE4_IDS {
            let codec = Registry::get(id).expect("table 4 id registered");
            let bpv = bits_per_value(codec, &data, &mut scratch).expect("ratio");
            assert!(bpv > 0.0 && bpv < 128.0, "{}: {bpv}", codec.name());
        }
    }

    #[test]
    fn empty_column_is_a_typed_error_not_a_panic() {
        let mut scratch = Scratch::new();
        for codec in Registry::all() {
            assert_eq!(
                bits_per_value(*codec, &[], &mut scratch),
                Err(CoreError::Empty),
                "{}",
                codec.id()
            );
        }
    }

    #[test]
    fn length_one_column_reports_a_ratio() {
        let mut scratch = Scratch::new();
        for codec in Registry::all() {
            let bpv = bits_per_value(*codec, &[3.25], &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.id()));
            assert!(bpv > 0.0, "{}: {bpv}", codec.id());
        }
    }

    #[test]
    fn alp_beats_xor_codecs_on_decimals() {
        let data: Vec<f64> = (0..8192).map(|i| ((i * 37 % 9973) as f64) / 100.0).collect();
        let mut scratch = Scratch::new();
        let alp_codec = Registry::get("alp").expect("registered");
        let gorilla = Registry::get("gorilla").expect("registered");
        let a = bits_per_value(alp_codec, &data, &mut scratch).expect("alp ratio");
        let g = bits_per_value(gorilla, &data, &mut scratch).expect("gorilla ratio");
        assert!(a < g, "alp {a} gorilla {g}");
    }

    #[test]
    fn speed_measurement_runs_quickly() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64) / 8.0).collect();
        let alp_codec = Registry::get("alp").expect("registered");
        let s = measure_speed(alp_codec, &data, 1).expect("measurable");
        assert!(s.decompress_tpc() > 0.0);
        assert!(s.compress_tpc() > 0.0);
    }

    #[test]
    fn ratio_only_scheme_is_not_measurable_for_speed() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64) / 8.0).collect();
        let lwc = Registry::get("lwc-alp").expect("registered");
        assert!(matches!(
            measure_speed(lwc, &data, 1),
            Err(CoreError::Unsupported { codec: "lwc-alp", .. })
        ));
    }

    #[test]
    fn short_column_speed_is_a_typed_error() {
        let alp_codec = Registry::get("alp").expect("registered");
        assert_eq!(measure_speed(alp_codec, &[1.0; 100], 1).map(|_| ()), Err(CoreError::Empty));
    }
}
