//! Shared infrastructure for the per-table/per-figure harness binaries:
//! cycle-accurate timing, a scheme registry covering every compressor in the
//! evaluation, and plain-text/CSV table output.
//!
//! Run every binary in `--release`; the measurements are meaningless in debug
//! builds. Environment knobs:
//!
//! * `ALP_BENCH_VALUES` — values generated per dataset (default 262,144).
//! * `ALP_BENCH_SEED` — generator seed (default 20240609).

pub mod scaling;
pub mod schemes;
pub mod tables;
pub mod timing;

/// Default number of values generated per dataset for ratio experiments.
pub fn bench_values() -> usize {
    std::env::var("ALP_BENCH_VALUES").ok().and_then(|v| v.parse().ok()).unwrap_or(262_144)
}

/// Deterministic seed for all dataset generation.
pub fn bench_seed() -> u64 {
    std::env::var("ALP_BENCH_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(20_240_609)
}

/// Generates the standard benchmark instance of a dataset.
pub fn dataset(name: &str) -> Vec<f64> {
    datagen::generate(name, bench_values(), bench_seed())
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}
