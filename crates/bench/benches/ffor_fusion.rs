//! Criterion micro-benchmarks of the FastLanes substrate: bit-unpacking and
//! FFOR, fused vs unfused, at representative bit widths (the kernel-level
//! view of Figure 5).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fastlanes::{bitpack, ffor, VECTOR_SIZE};

fn ints(width: usize) -> Vec<i64> {
    (0..VECTOR_SIZE as u64)
        .map(|i| {
            if width == 0 {
                0
            } else {
                let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
                (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask) as i64
            }
        })
        .collect()
}

fn bench_ffor(c: &mut Criterion) {
    for width in [3usize, 8, 16, 24, 40, 52] {
        let input = ints(width);
        let (base, w, packed) = ffor::ffor(&input);
        let mut out = vec![0i64; VECTOR_SIZE];
        let mut residuals = vec![0u64; VECTOR_SIZE];

        let mut g = c.benchmark_group(format!("ffor_w{width}"));
        g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
        g.bench_function("unpack_fused", |b| {
            b.iter(|| ffor::ffor_unpack(&packed, base, w, &mut out))
        });
        g.bench_function("unpack_unfused", |b| {
            b.iter(|| {
                bitpack::unpack(&packed, w, &mut residuals);
                ffor::for_decode(&residuals, base, &mut out);
            })
        });
        g.bench_function("pack_fused", |b| b.iter(|| ffor::ffor_pack(&input, base, w)));
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ffor
}
criterion_main!(benches);
