//! Criterion micro-benchmarks of the ALP hot kernels: per-vector encode,
//! the three decode variants, second-level sampling, and ALP_rd.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use alp::VECTOR_SIZE;

fn decimal_vector() -> Vec<f64> {
    (0..VECTOR_SIZE).map(|i| (i as f64 * 7.0 + 355.0) / 100.0).collect()
}

fn real_double_vector() -> Vec<f64> {
    (0..VECTOR_SIZE).map(|i| 0.5 + ((i as f64) * 0.7234).sin() * 1e-4).collect()
}

fn bench_encode(c: &mut Criterion) {
    let data = decimal_vector();
    let mut g = c.benchmark_group("alp_encode");
    g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
    g.bench_function("encode_vector", |b| {
        b.iter(|| alp::encode::encode_vector(std::hint::black_box(&data), 14, 12))
    });
    let params = alp::SamplerParams::default();
    let combos = vec![
        alp::Combination { e: 14, f: 12 },
        alp::Combination { e: 10, f: 8 },
        alp::Combination { e: 5, f: 3 },
    ];
    g.bench_function("second_level_sampling", |b| {
        b.iter_batched(
            alp::SamplerStats::default,
            |mut stats| alp::sampler::second_level(&data, &combos, &params, &mut stats),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let data = decimal_vector();
    let v = alp::encode::encode_vector(&data, 14, 12);
    let mut out = vec![0.0f64; VECTOR_SIZE];
    let mut scratch = vec![0i64; VECTOR_SIZE];
    let mut g = c.benchmark_group("alp_decode");
    g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
    g.bench_function("fused", |b| b.iter(|| alp::decode::decode_vector(&v, v.view(), &mut out)));
    g.bench_function("unfused", |b| {
        b.iter(|| alp::decode::decode_vector_unfused(&v, v.view(), &mut scratch, &mut out))
    });
    g.bench_function("scalar", |b| {
        b.iter(|| alp::decode::decode_vector_scalar(&v, v.view(), &mut out))
    });
    g.finish();
}

fn bench_rd(c: &mut Criterion) {
    let data = real_double_vector();
    let meta = alp::rd::choose_cut::<f64>(&data, 256);
    let v = alp::rd::encode_rd_vector(&data, &meta);
    let mut out = vec![0.0f64; VECTOR_SIZE];
    let mut g = c.benchmark_group("alp_rd");
    g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
    g.bench_function("encode", |b| b.iter(|| alp::rd::encode_rd_vector(&data, &meta)));
    g.bench_function("decode", |b| b.iter(|| alp::rd::decode_rd_vector(&v, &meta, &mut out)));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_encode, bench_decode, bench_rd
}
criterion_main!(benches);
