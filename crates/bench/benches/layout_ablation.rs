//! Criterion ablation: word-sequential vs lane-transposed (interleaved)
//! packed layouts at representative bit widths. Compressed size is identical;
//! this measures only the access-pattern effect on [un]packing speed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fastlanes::{bitpack, bitpack32, interleaved, VECTOR_SIZE};

fn values(width: usize) -> Vec<u64> {
    let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
    (0..VECTOR_SIZE as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask).collect()
}

fn bench_layouts(c: &mut Criterion) {
    for width in [3usize, 13, 27, 44] {
        let input = values(width);
        let seq = bitpack::pack(&input, width);
        let inter = interleaved::pack(&input, width);
        let mut out = vec![0u64; VECTOR_SIZE];

        let mut g = c.benchmark_group(format!("layout_w{width}"));
        g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
        g.bench_function("sequential_unpack", |b| {
            b.iter(|| bitpack::unpack(&seq, width, &mut out))
        });
        g.bench_function("interleaved_unpack", |b| {
            b.iter(|| interleaved::unpack(&inter, width, &mut out))
        });
        g.bench_function("sequential_pack", |b| b.iter(|| bitpack::pack(&input, width)));
        g.bench_function("interleaved_pack", |b| b.iter(|| interleaved::pack(&input, width)));
        g.finish();
    }
}

fn bench_u32_vs_u64(c: &mut Criterion) {
    for width in [5usize, 13, 21] {
        let mask = (1u32 << width) - 1;
        let narrow: Vec<u32> =
            (0..VECTOR_SIZE as u32).map(|i| i.wrapping_mul(0x9E37_79B1) & mask).collect();
        let wide: Vec<u64> = narrow.iter().map(|&v| v as u64).collect();
        let packed32 = bitpack32::pack(&narrow, width);
        let packed64 = bitpack::pack(&wide, width);
        let mut out32 = vec![0u32; VECTOR_SIZE];
        let mut out64 = vec![0u64; VECTOR_SIZE];

        let mut g = c.benchmark_group(format!("wordsize_w{width}"));
        g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
        g.bench_function("u32_unpack", |b| {
            b.iter(|| bitpack32::unpack(&packed32, width, &mut out32))
        });
        g.bench_function("u64_unpack", |b| {
            b.iter(|| bitpack::unpack(&packed64, width, &mut out64))
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_layouts, bench_u32_vs_u64
}
criterion_main!(benches);
