//! Criterion micro-benchmarks of every baseline codec on one L1-resident
//! 1024-value vector (the paper's §4.2 methodology), plus the Zstd stand-in
//! on a row-group.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use alp::VECTOR_SIZE;

fn vector() -> Vec<f64> {
    // City-Temp-like: one decimal place, narrow walk.
    datagen::generate("City-Temp", VECTOR_SIZE, 42)
}

fn bench_codecs(c: &mut Criterion) {
    let data = vector();
    for codec in codecs::Codec::ALL {
        let mut g = c.benchmark_group(format!("codec_{}", codec.name().to_lowercase()));
        g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
        g.bench_function("compress", |b| {
            b.iter(|| codec.compress_f64(std::hint::black_box(&data)))
        });
        let bytes = codec.compress_f64(&data);
        g.bench_function("decompress", |b| {
            b.iter(|| codec.decompress_f64(std::hint::black_box(&bytes), data.len()))
        });
        g.finish();
    }
}

fn bench_gpzip(c: &mut Criterion) {
    let data = datagen::generate("City-Temp", vectorq::ROWGROUP_VALUES, 42);
    let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut g = c.benchmark_group("gpzip_rowgroup");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.sample_size(10);
    g.bench_function("compress", |b| b.iter(|| gpzip::compress(std::hint::black_box(&raw))));
    let bytes = gpzip::compress(&raw);
    g.bench_function("decompress", |b| b.iter(|| gpzip::decompress(std::hint::black_box(&bytes))));
    g.finish();
}

fn bench_alp_reference(c: &mut Criterion) {
    let data = vector();
    let v = alp::encode::encode_vector(&data, 14, 13);
    let mut out = vec![0.0f64; VECTOR_SIZE];
    let mut g = c.benchmark_group("codec_alp");
    g.throughput(Throughput::Elements(VECTOR_SIZE as u64));
    g.bench_function("compress", |b| b.iter(|| alp::encode::encode_vector(&data, 14, 13)));
    g.bench_function("decompress", |b| {
        b.iter(|| alp::decode::decode_vector(&v, v.view(), &mut out))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_alp_reference, bench_codecs, bench_gpzip
}
criterion_main!(benches);
