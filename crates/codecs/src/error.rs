//! The shared error taxonomy for fallible decoding.
//!
//! Every `try_decompress_*` entry point in this crate (and in `gpzip`, which
//! reuses the type) returns [`CodecError`]. The taxonomy is deliberately
//! small: compressed streams carry no internal structure worth reporting
//! beyond *where the trust broke* — the input ended early, a field held an
//! impossible value, or the caller asked for an operation the codec does not
//! define.

/// Why a compressed stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before `count` values were decoded — either the slice
    /// was physically too short or a bit-level read ran past its end.
    Truncated {
        /// Codec that detected the truncation.
        codec: &'static str,
    },
    /// A decoded field held a value the format cannot produce (impossible
    /// length, out-of-range index, inconsistent counts).
    Corrupt {
        /// Codec that detected the corruption.
        codec: &'static str,
        /// Which invariant failed, for diagnostics.
        what: &'static str,
    },
    /// The requested operation does not exist for this codec (e.g. the 32-bit
    /// variants of Elf, PDE, and FPC, which the paper also omits).
    Unsupported {
        /// Codec the operation was requested on.
        codec: &'static str,
        /// The missing operation.
        what: &'static str,
    },
}

impl CodecError {
    /// Name of the codec that produced the error.
    pub fn codec(&self) -> &'static str {
        match self {
            CodecError::Truncated { codec }
            | CodecError::Corrupt { codec, .. }
            | CodecError::Unsupported { codec, .. } => codec,
        }
    }
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { codec } => {
                write!(f, "{codec}: compressed stream truncated")
            }
            CodecError::Corrupt { codec, what } => {
                write!(f, "{codec}: corrupt stream ({what})")
            }
            CodecError::Unsupported { codec, what } => {
                write!(f, "{codec}: unsupported operation ({what})")
            }
        }
    }
}

impl std::error::Error for CodecError {}
