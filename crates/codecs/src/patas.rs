//! Patas (DuckDB Labs, 2022) — a byte-aligned, single-mode variant of
//! Chimp128 that trades compression ratio for decompression speed.
//!
//! For every value Patas picks a reference among the previous 128 values with
//! the same low-bits hash as Chimp128, XORs, and writes:
//!
//! * a 16-bit little-endian header packing the 7-bit reference ring index,
//!   a 4-bit significant-**byte** count (0 for a perfect match), and a 3-bit
//!   trailing-zero **byte** count;
//! * the significant bytes of `xor >> (8 * trailing_zero_bytes)`, verbatim.
//!
//! Everything is byte-aligned, so decoding needs no bit arithmetic at all —
//! the design point the paper credits for Patas's decompression speed.

use crate::cursor;
use crate::error::CodecError;
use crate::word::{bits_f32, bits_f64, f32_bits, f64_bits, Word};

const NAME: &str = "patas";

/// Ring-buffer capacity, shared with Chimp128.
pub const PREVIOUS_VALUES: usize = 128;
const PREV_LOG2: u32 = 7;
const KEY_BITS: u32 = PREV_LOG2 + 7;
const TZ_THRESHOLD: u32 = 6 + PREV_LOG2;

/// Compresses a column of words.
pub fn compress_words<W: Word>(data: &[W]) -> Vec<u8> {
    let word_bytes = (W::BITS / 8) as usize;
    let mut out = Vec::with_capacity(data.len() * (word_bytes + 2) + 16);
    let mut ring = [W::ZERO; PREVIOUS_VALUES];
    let mut indices = vec![usize::MAX; 1 << KEY_BITS];

    for (i, &value) in data.iter().enumerate() {
        if i == 0 {
            out.extend_from_slice(&value.to_u64().to_le_bytes()[..word_bytes]);
            ring[0] = value;
            indices[(value.to_u64() & ((1 << KEY_BITS) - 1)) as usize] = 0;
            continue;
        }
        let key = (value.to_u64() & ((1 << KEY_BITS) - 1)) as usize;
        let candidate_global = indices[key];
        let mut ref_index = (i - 1) % PREVIOUS_VALUES;
        let mut xor = value ^ ring[ref_index];
        if candidate_global != usize::MAX && i - candidate_global < PREVIOUS_VALUES {
            let cand_index = candidate_global % PREVIOUS_VALUES;
            let cand_xor = value ^ ring[cand_index];
            if cand_xor == W::ZERO || cand_xor.trailing_zeros() > TZ_THRESHOLD {
                ref_index = cand_index;
                xor = cand_xor;
            }
        }

        let (byte_count, tz_bytes) = if xor == W::ZERO {
            (0u16, 0u16)
        } else {
            let tz_bytes = (xor.trailing_zeros() / 8) as u16;
            let lz_bytes = (xor.leading_zeros() / 8) as u16;
            let byte_count = (W::BITS / 8) as u16 - lz_bytes - tz_bytes;
            (byte_count, tz_bytes)
        };
        let header: u16 = ((ref_index as u16) << 9) | (byte_count << 5) | (tz_bytes << 2);
        out.extend_from_slice(&header.to_le_bytes());
        let payload = xor.to_u64() >> (8 * tz_bytes as u32);
        out.extend_from_slice(&payload.to_le_bytes()[..byte_count as usize]);

        ring[i % PREVIOUS_VALUES] = value;
        indices[key] = i;
    }
    out
}

/// Decompresses `count` words into `out` (cleared first), validating every
/// field against the input. Allocation-free once `out` has capacity.
///
/// Checked hazards: the verbatim first word, every 2-byte header, the 4-bit
/// significant-byte count (values 9–15 are unrepresentable in a word), and
/// each payload slice.
pub fn try_decompress_words_into<W: Word>(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<W>,
) -> Result<(), CodecError> {
    let word_bytes = (W::BITS / 8) as usize;
    out.clear();
    out.reserve(count.min(1 << 24));
    if count == 0 {
        return Ok(());
    }
    let mut ring = [W::ZERO; PREVIOUS_VALUES];
    let mut pos = 0usize;
    let Some(first_bytes) = cursor::take(bytes, &mut pos, word_bytes) else {
        return Err(CodecError::Truncated { codec: NAME });
    };
    let mut first_word = [0u8; 8];
    // ANALYZER-ALLOW(no-panic): word_bytes is 4 or 8, within the 8-byte buffer
    first_word[..word_bytes].copy_from_slice(first_bytes);
    let first = W::from_u64(u64::from_le_bytes(first_word));
    ring[0] = first; // ANALYZER-ALLOW(no-panic): fixed 128-slot ring
    out.push(first);

    for i in 1..count {
        let header =
            cursor::read_u16_le(bytes, &mut pos).ok_or(CodecError::Truncated { codec: NAME })?;
        let ref_index = (header >> 9) as usize;
        let byte_count = ((header >> 5) & 0xF) as usize;
        let tz_bytes = u32::from((header >> 2) & 0x7);
        if byte_count > word_bytes {
            return Err(CodecError::Corrupt { codec: NAME, what: "significant byte count" });
        }
        let Some(src) = cursor::take(bytes, &mut pos, byte_count) else {
            return Err(CodecError::Truncated { codec: NAME });
        };
        let mut payload = [0u8; 8];
        // ANALYZER-ALLOW(no-panic): byte_count <= word_bytes <= 8 checked above
        payload[..byte_count].copy_from_slice(src);
        let xor = W::from_u64(u64::from_le_bytes(payload) << (8 * tz_bytes));
        // ANALYZER-ALLOW(no-panic): ref_index is a 7-bit field, ring has 128 slots
        let value = ring[ref_index] ^ xor;
        ring[i % PREVIOUS_VALUES] = value; // ANALYZER-ALLOW(no-panic): index is mod ring size
        out.push(value);
    }
    Ok(())
}

/// Decompresses `count` words into a fresh vector — see
/// [`try_decompress_words_into`] for the allocation-free variant.
pub fn try_decompress_words<W: Word>(bytes: &[u8], count: usize) -> Result<Vec<W>, CodecError> {
    let mut out = Vec::new();
    try_decompress_words_into(bytes, count, &mut out)?;
    Ok(out)
}

/// Decompresses `count` words. Panics on corrupt input — use
/// [`try_decompress_words`] for untrusted bytes.
pub fn decompress_words<W: Word>(bytes: &[u8], count: usize) -> Vec<W> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress_words(bytes, count).expect("corrupt patas stream")
}

/// Compresses doubles.
pub fn compress_f64(data: &[f64]) -> Vec<u8> {
    compress_words(&f64_bits(data))
}

/// Decompresses `count` doubles.
pub fn decompress_f64(bytes: &[u8], count: usize) -> Vec<f64> {
    bits_f64(&decompress_words::<u64>(bytes, count))
}

/// Fallible variant of [`decompress_f64`] for untrusted input.
pub fn try_decompress_f64(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    Ok(bits_f64(&try_decompress_words::<u64>(bytes, count)?))
}

/// Compresses 32-bit floats.
pub fn compress_f32(data: &[f32]) -> Vec<u8> {
    compress_words(&f32_bits(data))
}

/// Decompresses `count` 32-bit floats.
pub fn decompress_f32(bytes: &[u8], count: usize) -> Vec<f32> {
    bits_f32(&decompress_words::<u32>(bytes, count))
}

/// Fallible variant of [`decompress_f32`] for untrusted input.
pub fn try_decompress_f32(bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
    Ok(bits_f32(&try_decompress_words::<u32>(bytes, count)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip64(data: &[f64]) {
        let bytes = compress_f64(data);
        let back = decompress_f64(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
    }

    #[test]
    fn timeseries_roundtrip() {
        let data: Vec<f64> = (0..10_000).map(|i| 1.0 + (i as f64) * 1e-4).collect();
        roundtrip64(&data);
    }

    #[test]
    fn perfect_matches_cost_two_bytes() {
        let data = vec![123.456f64; 10_000];
        let bytes = compress_f64(&data);
        assert!(bytes.len() <= 8 + 2 * 10_000, "{} bytes", bytes.len());
        roundtrip64(&data);
    }

    #[test]
    fn specials_roundtrip() {
        roundtrip64(&[f64::NAN, -0.0, 0.0, f64::INFINITY, f64::MIN_POSITIVE, f64::MAX]);
    }

    #[test]
    fn random_bits_roundtrip() {
        let data: Vec<f64> = (0..5000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)))
            .collect();
        roundtrip64(&data);
    }

    #[test]
    fn worst_case_overhead_is_bounded() {
        // Incompressible data: header (2B) + full 8B payload per value.
        let data: Vec<f64> = (0..1000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1))
            .collect();
        let bytes = compress_f64(&data);
        assert!(bytes.len() <= 8 + 10 * (data.len() - 1) + 10);
        roundtrip64(&data);
    }

    #[test]
    fn f32_roundtrip() {
        let data: Vec<f32> = (0..4000).map(|i| 3.0 + (i as f32) * 0.001).collect();
        let bytes = compress_f32(&data);
        let back = decompress_f32(&bytes, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_short() {
        roundtrip64(&[]);
        roundtrip64(&[7.5]);
        roundtrip64(&[7.5, -7.5]);
    }
}
