//! PseudoDecimals — PDE (Kuschewski et al., *BtrBlocks*, SIGMOD'23).
//!
//! PDE assumes each double originated as a decimal and brute-forces, **per
//! value**, the smallest exponent `e` such that `d = round(v * 10^e)` fits a
//! 32-bit significand and `d * 10^-e` recovers `v` bit-exactly. Values with no
//! such `e` become *patches* (stored raw with their positions). The
//! significand and exponent streams are bit-packed separately per 1024-value
//! block — which is why PDE's output is further compressible but its
//! compression is extremely slow (the paper measures it 251x slower than ALP)
//! while decompression is reasonably fast.
//!
//! Block layout: `sig_base:i64 | sig_width:u8 | exp_width:u8 | count:u16 |
//! patches:u16 | packed significands | packed exponents | patch positions |
//! patch values`.

use fastlanes::{bitpack, bits_needed, ffor, VECTOR_SIZE};

use crate::cursor;
use crate::error::CodecError;

const NAME: &str = "pde";

/// Largest exponent tried by the per-value search.
pub const MAX_EXPONENT: u32 = 22;
/// Significands are limited to `i32` range, as in BtrBlocks (the ALP paper
/// notes PDE avoids big integers because they would not compress).
const SIG_LIMIT: f64 = 2_147_483_647.0;

/// Finds the smallest viable exponent for `v`; `None` → patch.
#[inline]
fn find_exponent(v: f64) -> Option<(i32, u32)> {
    if !v.is_finite() {
        return None;
    }
    for e in 0..=MAX_EXPONENT {
        let scaled = v * 10f64.powi(e as i32);
        if scaled.abs() > SIG_LIMIT {
            return None; // larger e only grows the significand
        }
        // Verify through the i32 the format actually stores: `-0.0` rounds to
        // an f64 `-0.0` but is stored as integer 0, losing the sign.
        let d = scaled.round() as i32;
        if ((d as f64) * 10f64.powi(-(e as i32))).to_bits() == v.to_bits() {
            return Some((d, e));
        }
    }
    None
}

/// Compresses a column of doubles.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 6 + 64);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for block in data.chunks(VECTOR_SIZE) {
        compress_block(block, &mut out);
    }
    out
}

fn compress_block(block: &[f64], out: &mut Vec<u8>) {
    let mut sigs = [0i64; VECTOR_SIZE];
    let mut exps = [0u64; VECTOR_SIZE];
    let mut patch_pos: Vec<u16> = Vec::new();
    let mut patch_val: Vec<u64> = Vec::new();

    for (i, &v) in block.iter().enumerate() {
        match find_exponent(v) {
            Some((d, e)) => {
                sigs[i] = d as i64;
                exps[i] = e as u64;
            }
            None => {
                patch_pos.push(i as u16);
                patch_val.push(v.to_bits());
                sigs[i] = 0;
                exps[i] = 0;
            }
        }
    }
    // Pad the tail of a short block.
    for i in block.len()..VECTOR_SIZE {
        sigs[i] = 0;
        exps[i] = 0;
    }

    let (sig_base, sig_width) = ffor::frame_of(&sigs);
    let packed_sigs = ffor::ffor_pack(&sigs, sig_base, sig_width);
    let exp_width = bits_needed(exps.iter().copied().max().unwrap_or(0));
    let packed_exps = bitpack::pack(&exps, exp_width);

    out.extend_from_slice(&sig_base.to_le_bytes());
    out.push(sig_width as u8);
    out.push(exp_width as u8);
    out.extend_from_slice(&(block.len() as u16).to_le_bytes());
    out.extend_from_slice(&(patch_pos.len() as u16).to_le_bytes());
    let sig_words = sig_width * (VECTOR_SIZE / 64);
    for &w in &packed_sigs[..sig_words] {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let exp_words = exp_width * (VECTOR_SIZE / 64);
    for &w in &packed_exps[..exp_words] {
        out.extend_from_slice(&w.to_le_bytes());
    }
    for &p in &patch_pos {
        out.extend_from_slice(&p.to_le_bytes());
    }
    for &v in &patch_val {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reusable decode buffers so [`try_decompress_into`] allocates nothing per
/// call once warm: unpacked significand/exponent lanes, the packed-word
/// staging buffers, patch positions, and the inverse-power-of-ten LUT.
pub struct Scratch {
    sigs: Vec<i64>,
    exps: Vec<u64>,
    packed: Vec<u64>,
    packed_e: Vec<u64>,
    positions: Vec<usize>,
    inv_pow: Vec<f64>,
}

impl Scratch {
    /// Allocates the fixed-size lanes and the power LUT up front.
    pub fn new() -> Self {
        Self {
            sigs: vec![0i64; VECTOR_SIZE],
            exps: vec![0u64; VECTOR_SIZE],
            packed: Vec::with_capacity(65),
            packed_e: Vec::with_capacity(65),
            positions: Vec::with_capacity(VECTOR_SIZE),
            // Inverse powers of ten indexed by exponent, hoisted out of the
            // decode loop.
            // ANALYZER-ALLOW(no-panic): e <= MAX_EXPONENT = 22 always fits in i32
            inv_pow: (0..=MAX_EXPONENT).map(|e| 10f64.powi(-(e as i32))).collect(),
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Decompresses the column into `out` (cleared first), validating every field
/// against the input. Allocation-free once `out` and `scratch` are warm.
///
/// Checked hazards: the column header, per-block header geometry (widths over
/// 64 bits, empty or oversized blocks — an empty block would loop forever),
/// packed-word and patch-stream bounds, exponents past [`MAX_EXPONENT`], and
/// patch positions outside their block.
pub fn try_decompress_into(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
) -> Result<(), CodecError> {
    let truncated = || CodecError::Truncated { codec: NAME };
    let corrupt = |what| CodecError::Corrupt { codec: NAME, what };

    let mut pos = 0usize;
    let total = cursor::read_u64_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
    if total != count {
        return Err(corrupt("count mismatch"));
    }
    out.clear();
    out.reserve(total.min(1 << 24));
    let Scratch { sigs, exps, packed, packed_e, positions, inv_pow } = scratch;

    while out.len() < total {
        let sig_base = cursor::read_i64_le(bytes, &mut pos).ok_or_else(truncated)?;
        let sig_width = cursor::read_u8(bytes, &mut pos).ok_or_else(truncated)? as usize;
        let exp_width = cursor::read_u8(bytes, &mut pos).ok_or_else(truncated)? as usize;
        let block_len = cursor::read_u16_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
        let patches = cursor::read_u16_le(bytes, &mut pos).ok_or_else(truncated)? as usize;

        if sig_width > 64 || exp_width > 64 {
            return Err(corrupt("pack width"));
        }
        if block_len == 0 || block_len > VECTOR_SIZE {
            return Err(corrupt("block length"));
        }
        if block_len > total - out.len() {
            return Err(corrupt("blocks exceed column length"));
        }
        if patches > block_len {
            return Err(corrupt("patch count"));
        }

        let sig_words = sig_width * (VECTOR_SIZE / 64);
        let exp_words = exp_width * (VECTOR_SIZE / 64);
        if bytes.len() - pos < (sig_words + exp_words) * 8 {
            return Err(truncated());
        }
        packed.clear();
        for _ in 0..sig_words {
            packed.push(cursor::read_u64_le(bytes, &mut pos).ok_or_else(truncated)?);
        }
        packed.push(0);
        ffor::ffor_unpack(packed, sig_base, sig_width, sigs);

        packed_e.clear();
        for _ in 0..exp_words {
            packed_e.push(cursor::read_u64_le(bytes, &mut pos).ok_or_else(truncated)?);
        }
        packed_e.push(0);
        bitpack::unpack(packed_e, exp_width, exps);

        let start = out.len();
        for i in 0..block_len {
            // ANALYZER-ALLOW(no-panic): i < block_len <= VECTOR_SIZE = exps.len()
            let e = exps[i] as usize;
            if e > MAX_EXPONENT as usize {
                return Err(corrupt("exponent out of range"));
            }
            // ANALYZER-ALLOW(no-panic): i bounds sigs; e <= MAX_EXPONENT bounds the LUT
            out.push(sigs[i] as f64 * inv_pow[e]);
        }
        // Patch streams: all positions, then all values.
        positions.clear();
        for _ in 0..patches {
            positions.push(cursor::read_u16_le(bytes, &mut pos).ok_or_else(truncated)? as usize);
        }
        for &p in positions.iter() {
            let v = cursor::read_u64_le(bytes, &mut pos).ok_or_else(truncated)?;
            if p >= block_len {
                return Err(corrupt("patch position"));
            }
            // ANALYZER-ALLOW(no-panic): p < block_len values just pushed above
            out[start + p] = f64::from_bits(v);
        }
    }
    Ok(())
}

/// Decompresses the column into a fresh vector — see [`try_decompress_into`]
/// for the allocation-free variant.
pub fn try_decompress(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::new();
    try_decompress_into(bytes, count, &mut out, &mut Scratch::new())?;
    Ok(out)
}

/// Decompresses the column (`count` is validated against the header). Panics
/// on corrupt input — use [`try_decompress`] for untrusted bytes.
pub fn decompress(bytes: &[u8], count: usize) -> Vec<f64> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress(bytes, count).expect("corrupt pde stream")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let bytes = compress(data);
        let back = decompress(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        bytes.len()
    }

    #[test]
    fn decimal_data_roundtrips_compactly() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64) / 100.0).collect();
        let size = roundtrip(&data);
        assert!(size < data.len() * 8, "{size}");
    }

    #[test]
    fn per_value_exponent_adapts() {
        // Alternating precisions that a single exponent could not serve with
        // small significands.
        let data: Vec<f64> = (0..2048)
            .map(|i| if i % 2 == 0 { (i as f64) / 10.0 } else { (i as f64) / 1e6 })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn unencodable_values_become_patches() {
        let data: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.987).sin()).collect();
        roundtrip(&data);
    }

    #[test]
    fn specials_are_patches() {
        roundtrip(&[f64::NAN, f64::INFINITY, -0.0, 0.0, 1.0, 2.5]);
    }

    #[test]
    fn find_exponent_prefers_smallest() {
        assert_eq!(find_exponent(2.5), Some((25, 1)));
        assert_eq!(find_exponent(100.0), Some((100, 0)));
        assert_eq!(find_exponent(f64::NAN), None);
        // Needs 4 digits but visible precision fails at e=4 (§2.5): PDE walks
        // upward until some e works or gives up.
        let r = find_exponent(8.0605);
        assert!(r.is_some());
    }

    #[test]
    fn large_magnitudes_patch_out() {
        // |d| would exceed i32 for every e.
        roundtrip(&[3.4e12, 5.6e18, 1e300]);
    }

    #[test]
    fn multi_block_roundtrip() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64) / 4.0).collect();
        roundtrip(&data);
    }

    #[test]
    fn empty_column() {
        roundtrip(&[]);
    }
}
