//! Checked byte-cursor reads shared by the byte-stream codecs (FPC, PDE,
//! Elf, gpzip's fast path).
//!
//! Each helper advances `pos` only on success and returns `None` when the
//! buffer is too short, so decode paths stay panic-free by construction —
//! callers turn the `None` into their codec's `Truncated` error.

/// Reads one byte at `pos`, advancing it.
#[inline]
pub fn read_u8(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    let b = *bytes.get(*pos)?;
    *pos += 1;
    Some(b)
}

/// Reads a little-endian `u16` at `pos`, advancing it.
#[inline]
pub fn read_u16_le(bytes: &[u8], pos: &mut usize) -> Option<u16> {
    let chunk = bytes.get(*pos..)?.first_chunk::<2>()?;
    *pos += 2;
    Some(u16::from_le_bytes(*chunk))
}

/// Reads a little-endian `u32` at `pos`, advancing it.
#[inline]
pub fn read_u32_le(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let chunk = bytes.get(*pos..)?.first_chunk::<4>()?;
    *pos += 4;
    Some(u32::from_le_bytes(*chunk))
}

/// Reads a little-endian `u64` at `pos`, advancing it.
#[inline]
pub fn read_u64_le(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let chunk = bytes.get(*pos..)?.first_chunk::<8>()?;
    *pos += 8;
    Some(u64::from_le_bytes(*chunk))
}

/// Reads a little-endian `i64` at `pos`, advancing it.
#[inline]
pub fn read_i64_le(bytes: &[u8], pos: &mut usize) -> Option<i64> {
    let chunk = bytes.get(*pos..)?.first_chunk::<8>()?;
    *pos += 8;
    Some(i64::from_le_bytes(*chunk))
}

/// Borrows `n` bytes at `pos`, advancing it.
#[inline]
pub fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let slice = bytes.get(*pos..(*pos).checked_add(n)?)?;
    *pos += n;
    Some(slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_advance_only_on_success() {
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut pos = 0;
        assert_eq!(read_u8(&bytes, &mut pos), Some(1));
        assert_eq!(read_u16_le(&bytes, &mut pos), Some(u16::from_le_bytes([2, 3])));
        assert_eq!(read_u64_le(&bytes, &mut pos), None);
        assert_eq!(pos, 3, "failed read must not advance");
        assert_eq!(take(&bytes, &mut pos, 6).map(<[u8]>::len), Some(6));
        assert_eq!(read_u8(&bytes, &mut pos), None);
    }

    #[test]
    fn take_rejects_overflowing_lengths() {
        let bytes = [0u8; 4];
        let mut pos = 2;
        assert_eq!(take(&bytes, &mut pos, usize::MAX), None);
        assert_eq!(pos, 2);
    }
}
