//! Baseline lossless floating-point codecs — the competitors of the ALP
//! paper's evaluation (§4): Gorilla, Chimp, Chimp128, Patas, Elf, and
//! PseudoDecimals (PDE). All are re-implemented from their original
//! descriptions (and, for Patas, the DuckDB design notes); each module's docs
//! record the exact stream layout and any simplification.
//!
//! Every codec is lossless for **arbitrary bit patterns** — NaN payloads,
//! signed zeros, infinities, subnormals — which the integration suite
//! property-tests.
//!
//! The XOR-family codecs are generic over [`word::Word`] so the same logic
//! serves `f64` and the `f32` variants Table 7 benchmarks.

#![forbid(unsafe_code)]

pub mod chimp;
pub mod chimp128;
pub mod cursor;
pub mod elf;
pub mod error;
pub mod fpc;
pub mod gorilla;
pub mod patas;
pub mod pde;
pub mod scratch;
pub mod word;

pub use error::CodecError;
pub use scratch::DecodeScratch;

/// Uniform handle over the six baselines (plus raw storage), used by the
/// benchmark harnesses to iterate "all schemes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Gorilla (Facebook, VLDB'15).
    Gorilla,
    /// Chimp (VLDB'22).
    Chimp,
    /// Chimp128 — Chimp with a 128-value reference window.
    Chimp128,
    /// Patas (DuckDB) — byte-aligned Chimp128 variant.
    Patas,
    /// Elf (VLDB'23) — erase-then-XOR.
    Elf,
    /// PseudoDecimals (BtrBlocks, SIGMOD'23).
    Pde,
    /// FPC (TC'09) — predictive (FCM/DFCM) scheme; extra baseline from the
    /// paper's Related Work.
    Fpc,
}

impl Codec {
    /// The paper's six baselines, in its table order.
    pub const ALL: [Codec; 6] =
        [Codec::Gorilla, Codec::Chimp, Codec::Chimp128, Codec::Patas, Codec::Pde, Codec::Elf];

    /// All implemented baselines including the extra predictive scheme.
    pub const EXTENDED: [Codec; 7] = [
        Codec::Gorilla,
        Codec::Chimp,
        Codec::Chimp128,
        Codec::Patas,
        Codec::Pde,
        Codec::Elf,
        Codec::Fpc,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Gorilla => "Gorilla",
            Codec::Chimp => "Chimp",
            Codec::Chimp128 => "Chimp128",
            Codec::Patas => "Patas",
            Codec::Elf => "Elf",
            Codec::Pde => "PDE",
            Codec::Fpc => "FPC",
        }
    }

    /// Compresses a column of doubles.
    pub fn compress_f64(&self, data: &[f64]) -> Vec<u8> {
        match self {
            Codec::Gorilla => gorilla::compress_f64(data),
            Codec::Chimp => chimp::compress_f64(data),
            Codec::Chimp128 => chimp128::compress_f64(data),
            Codec::Patas => patas::compress_f64(data),
            Codec::Elf => elf::compress(data),
            Codec::Pde => pde::compress(data),
            Codec::Fpc => fpc::compress(data),
        }
    }

    /// Decompresses `count` doubles from `bytes`. Panics on corrupt input —
    /// use [`Codec::try_decompress_f64`] for untrusted bytes.
    pub fn decompress_f64(&self, bytes: &[u8], count: usize) -> Vec<f64> {
        match self {
            Codec::Gorilla => gorilla::decompress_f64(bytes, count),
            Codec::Chimp => chimp::decompress_f64(bytes, count),
            Codec::Chimp128 => chimp128::decompress_f64(bytes, count),
            Codec::Patas => patas::decompress_f64(bytes, count),
            Codec::Elf => elf::decompress(bytes, count),
            Codec::Pde => pde::decompress(bytes, count),
            Codec::Fpc => fpc::decompress(bytes, count),
        }
    }

    /// Decompresses `count` doubles from untrusted `bytes`, returning an
    /// error instead of panicking on truncated or corrupt input.
    pub fn try_decompress_f64(&self, bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
        match self {
            Codec::Gorilla => gorilla::try_decompress_f64(bytes, count),
            Codec::Chimp => chimp::try_decompress_f64(bytes, count),
            Codec::Chimp128 => chimp128::try_decompress_f64(bytes, count),
            Codec::Patas => patas::try_decompress_f64(bytes, count),
            Codec::Elf => elf::try_decompress(bytes, count),
            Codec::Pde => pde::try_decompress(bytes, count),
            Codec::Fpc => fpc::try_decompress(bytes, count),
        }
    }

    /// Decompresses `count` doubles from untrusted `bytes` into `out`
    /// (cleared first), staging through `scratch`. Allocation-free once the
    /// buffers are warm — this is the hot-loop variant of
    /// [`Codec::try_decompress_f64`].
    pub fn try_decompress_f64_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f64>,
        scratch: &mut DecodeScratch,
    ) -> Result<(), CodecError> {
        match self {
            Codec::Gorilla => {
                gorilla::try_decompress_words_into::<u64>(bytes, count, &mut scratch.words64)?
            }
            Codec::Chimp => {
                chimp::try_decompress_words_into::<u64>(bytes, count, &mut scratch.words64)?
            }
            Codec::Chimp128 => {
                chimp128::try_decompress_words_into::<u64>(bytes, count, &mut scratch.words64)?
            }
            Codec::Patas => {
                patas::try_decompress_words_into::<u64>(bytes, count, &mut scratch.words64)?
            }
            Codec::Elf => return elf::try_decompress_into(bytes, count, out, &mut scratch.words64),
            Codec::Pde => return pde::try_decompress_into(bytes, count, out, &mut scratch.pde),
            Codec::Fpc => return fpc::try_decompress_into(bytes, count, out, &mut scratch.fpc),
        }
        out.clear();
        out.reserve(scratch.words64.len());
        out.extend(scratch.words64.iter().map(|&b| f64::from_bits(b)));
        Ok(())
    }

    /// Decompresses `count` 32-bit floats from untrusted `bytes` into `out`
    /// (cleared first), staging through `scratch`. Errs with
    /// [`CodecError::Unsupported`] for codecs without a 32-bit variant.
    pub fn try_decompress_f32_into(
        &self,
        bytes: &[u8],
        count: usize,
        out: &mut Vec<f32>,
        scratch: &mut DecodeScratch,
    ) -> Result<(), CodecError> {
        match self {
            Codec::Gorilla => {
                gorilla::try_decompress_words_into::<u32>(bytes, count, &mut scratch.words32)?
            }
            Codec::Chimp => {
                chimp::try_decompress_words_into::<u32>(bytes, count, &mut scratch.words32)?
            }
            Codec::Chimp128 => {
                chimp128::try_decompress_words_into::<u32>(bytes, count, &mut scratch.words32)?
            }
            Codec::Patas => {
                patas::try_decompress_words_into::<u32>(bytes, count, &mut scratch.words32)?
            }
            other => {
                return Err(CodecError::Unsupported {
                    codec: other.name(),
                    what: "32-bit decompression",
                })
            }
        }
        out.clear();
        out.reserve(scratch.words32.len());
        out.extend(scratch.words32.iter().map(|&b| f32::from_bits(b)));
        Ok(())
    }

    /// Whether a 32-bit float variant exists (Table 7: all XOR codecs do;
    /// Elf/PDE do not, as in the paper).
    pub fn supports_f32(&self) -> bool {
        matches!(self, Codec::Gorilla | Codec::Chimp | Codec::Chimp128 | Codec::Patas)
    }

    /// Compresses a column of 32-bit floats. Errs with
    /// [`CodecError::Unsupported`] for codecs without a 32-bit variant
    /// (check [`Codec::supports_f32`] first to avoid the `Result`).
    pub fn compress_f32(&self, data: &[f32]) -> Result<Vec<u8>, CodecError> {
        match self {
            Codec::Gorilla => Ok(gorilla::compress_f32(data)),
            Codec::Chimp => Ok(chimp::compress_f32(data)),
            Codec::Chimp128 => Ok(chimp128::compress_f32(data)),
            Codec::Patas => Ok(patas::compress_f32(data)),
            other => {
                Err(CodecError::Unsupported { codec: other.name(), what: "32-bit compression" })
            }
        }
    }

    /// Decompresses `count` 32-bit floats from untrusted `bytes`. Errs with
    /// [`CodecError::Unsupported`] for codecs without a 32-bit variant, and
    /// with the usual taxonomy on truncated or corrupt input.
    pub fn decompress_f32(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
        match self {
            Codec::Gorilla => gorilla::try_decompress_f32(bytes, count),
            Codec::Chimp => chimp::try_decompress_f32(bytes, count),
            Codec::Chimp128 => chimp128::try_decompress_f32(bytes, count),
            Codec::Patas => patas::try_decompress_f32(bytes, count),
            other => {
                Err(CodecError::Unsupported { codec: other.name(), what: "32-bit decompression" })
            }
        }
    }

    /// Alias of [`Codec::decompress_f32`] for symmetry with
    /// [`Codec::try_decompress_f64`] (the 32-bit path is always fallible).
    pub fn try_decompress_f32(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
        self.decompress_f32(bytes, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_codec_roundtrips_a_simple_column() {
        let data: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.1).collect();
        for codec in Codec::ALL {
            let bytes = codec.compress_f64(&data);
            let back = codec.decompress_f64(&bytes, data.len());
            assert_eq!(back.len(), data.len(), "{}", codec.name());
            for (i, (a, b)) in data.iter().zip(&back).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{} idx {i}", codec.name());
            }
        }
    }

    #[test]
    fn f32_support_matches_paper() {
        assert!(Codec::Gorilla.supports_f32());
        assert!(Codec::Patas.supports_f32());
        assert!(!Codec::Elf.supports_f32());
        assert!(!Codec::Pde.supports_f32());
    }

    #[test]
    fn f32_on_unsupported_codec_errs_instead_of_panicking() {
        for codec in [Codec::Elf, Codec::Pde, Codec::Fpc] {
            assert!(matches!(codec.compress_f32(&[1.0, 2.0]), Err(CodecError::Unsupported { .. })));
            assert!(matches!(
                codec.decompress_f32(&[0u8; 16], 2),
                Err(CodecError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn f32_roundtrips_through_the_fallible_api() {
        let data: Vec<f32> = (0..2000).map(|i| (i as f32) * 0.125).collect();
        for codec in Codec::EXTENDED.into_iter().filter(|c| c.supports_f32()) {
            let bytes = codec.compress_f32(&data).unwrap();
            let back = codec.decompress_f32(&bytes, data.len()).unwrap();
            assert_eq!(back.len(), data.len(), "{}", codec.name());
            for (a, b) in data.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", codec.name());
            }
        }
    }
}
