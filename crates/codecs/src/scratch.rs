//! Reusable decode buffers shared by every baseline codec.
//!
//! The `try_decompress_*_into` entry points write into caller-owned output
//! vectors, but several codecs also need intermediate storage: the XOR family
//! stages bit-pattern words before the float view, Elf decodes its erased
//! stream through Chimp, PDE unpacks significand/exponent lanes, and FPC
//! carries two 64 KiB predictor tables. [`DecodeScratch`] owns all of it so a
//! hot loop decoding vector after vector performs zero heap allocations once
//! the buffers are warm.

use crate::{fpc, pde};

/// Caller-owned scratch space for [`crate::Codec::try_decompress_f64_into`]
/// and [`crate::Codec::try_decompress_f32_into`]. Construct once, reuse for
/// every vector; buffers grow to the high-water mark and stay there.
pub struct DecodeScratch {
    /// Staging for 64-bit words (XOR-family f64 paths and Elf's erased
    /// stream).
    pub words64: Vec<u64>,
    /// Staging for 32-bit words (XOR-family f32 paths).
    pub words32: Vec<u32>,
    /// PDE lane and patch buffers.
    pub pde: pde::Scratch,
    /// FPC predictor tables, reset (not reallocated) per call.
    pub fpc: fpc::Predictor,
}

impl DecodeScratch {
    /// Allocates all scratch buffers up front.
    pub fn new() -> Self {
        Self {
            words64: Vec::new(),
            words32: Vec::new(),
            pde: pde::Scratch::new(),
            fpc: fpc::Predictor::new(),
        }
    }
}

impl Default for DecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}
