//! FPC (Burtscher & Ratanaworabhan, *IEEE Trans. Computers* 2009) — the
//! predictive scheme the paper's Related Work (§5) positions the XOR family
//! against. Included as an extra baseline beyond the paper's six.
//!
//! FPC predicts each double twice — with an **FCM** (finite context method)
//! hash table and a **DFCM** (differential FCM) table — XORs the value with
//! the closer prediction, and encodes the result as:
//!
//! * a header nibble: 1 selector bit (which predictor) + a 3-bit code for the
//!   number of leading **zero bytes**, mapping to {0,1,2,3,5,6,7,8} (4 is
//!   folded to 3, exactly as in the original — a perfect prediction costs no
//!   payload byte);
//! * the remaining non-zero bytes of the XOR, verbatim.
//!
//! Two headers share one byte, making the stream byte-aligned like Patas.
//! Table size is [`TABLE_BITS`] (the original tunes this per memory budget).

use crate::error::CodecError;

const NAME: &str = "fpc";

/// log2 of the predictor table size.
pub const TABLE_BITS: u32 = 16;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

/// The FCM/DFCM hash-table pair. Public so decode scratch space can own one
/// across calls — the two tables are 64 KiB each and dominate FPC's per-call
/// allocation cost when built fresh.
pub struct Predictor {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
}

impl Predictor {
    /// Allocates zeroed tables.
    pub fn new() -> Self {
        Self {
            fcm: vec![0; TABLE_SIZE],
            dfcm: vec![0; TABLE_SIZE],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
        }
    }

    /// Rewinds to the initial state without releasing the tables.
    fn reset(&mut self) {
        self.fcm.fill(0);
        self.dfcm.fill(0);
        self.fcm_hash = 0;
        self.dfcm_hash = 0;
        self.last = 0;
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor {
    /// Returns (fcm prediction, dfcm prediction) for the next value.
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (self.fcm[self.fcm_hash], self.dfcm[self.dfcm_hash].wrapping_add(self.last))
    }

    /// Feeds the actual value, updating both tables (identical on the encode
    /// and decode sides — the tables are never transmitted).
    #[inline]
    fn update(&mut self, value: u64) {
        self.fcm[self.fcm_hash] = value;
        self.fcm_hash = (((self.fcm_hash << 6) as u64) ^ (value >> 48)) as usize & (TABLE_SIZE - 1);
        let delta = value.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash =
            (((self.dfcm_hash << 2) as u64) ^ (delta >> 40)) as usize & (TABLE_SIZE - 1);
        self.last = value;
    }
}

/// Number of leading zero *bytes* of `x` (0..=8), with 4 folded to 3 so it
/// fits the 3-bit header code {0,1,2,3,5,6,7,8}.
#[inline]
fn leading_zero_bytes(x: u64) -> u32 {
    let lzb = x.leading_zeros() / 8;
    if lzb == 4 {
        3
    } else {
        lzb
    }
}

/// Header code for a (folded) zero-byte count.
#[inline]
fn lzb_code(lzb: u32) -> u8 {
    if lzb > 4 {
        (lzb - 1) as u8
    } else {
        lzb as u8
    }
}

/// Inverse of [`lzb_code`].
#[inline]
fn code_lzb(code: u8) -> u32 {
    if code > 3 {
        code as u32 + 1
    } else {
        code as u32
    }
}

/// Compresses a column of doubles.
pub fn compress(data: &[f64]) -> Vec<u8> {
    let mut predictor = Predictor::new();
    let mut headers: Vec<u8> = Vec::with_capacity(data.len() / 2 + 1);
    let mut payload: Vec<u8> = Vec::with_capacity(data.len() * 8);

    let mut pending: Option<u8> = None;
    for &v in data {
        let bits = v.to_bits();
        let (p_fcm, p_dfcm) = predictor.predict();
        let x_fcm = bits ^ p_fcm;
        let x_dfcm = bits ^ p_dfcm;
        // Choose the predictor whose XOR has more leading zero bytes.
        let (selector, xor) = if leading_zero_bytes(x_fcm) >= leading_zero_bytes(x_dfcm) {
            (0u8, x_fcm)
        } else {
            (1u8, x_dfcm)
        };
        let lzb = leading_zero_bytes(xor);
        let nibble = (selector << 3) | lzb_code(lzb);
        match pending.take() {
            None => pending = Some(nibble),
            Some(first) => headers.push((first << 4) | nibble),
        }
        let bytes = 8 - lzb as usize;
        payload.extend_from_slice(&xor.to_be_bytes()[8 - bytes..]);
        predictor.update(bits);
    }
    if let Some(first) = pending {
        headers.push(first << 4);
    }

    let mut out = Vec::with_capacity(8 + headers.len() + payload.len());
    out.extend_from_slice(&(headers.len() as u64).to_le_bytes());
    out.extend_from_slice(&headers);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses `count` doubles into `out` (cleared first), validating every
/// field against the input. `predictor` is reset and reused, so the call is
/// allocation-free once `out` has capacity.
///
/// Checked hazards: the header-length prefix (can claim more bytes than
/// exist), a header stream too short for `count` nibbles, and payload
/// exhaustion. Header nibbles themselves cannot be out of range — every
/// 4-bit pattern is a valid (selector, zero-byte code) pair.
pub fn try_decompress_into(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<f64>,
    predictor: &mut Predictor,
) -> Result<(), CodecError> {
    let Some((len_bytes, rest)) = bytes.split_first_chunk::<8>() else {
        return Err(CodecError::Truncated { codec: NAME });
    };
    let header_len = u64::from_le_bytes(*len_bytes) as usize;
    let Some((headers, mut payload)) = rest.split_at_checked(header_len) else {
        return Err(CodecError::Truncated { codec: NAME });
    };
    if header_len < count.div_ceil(2) {
        return Err(CodecError::Truncated { codec: NAME });
    }

    predictor.reset();
    out.clear();
    out.reserve(count.min(1 << 24));
    for i in 0..count {
        // ANALYZER-ALLOW(no-panic): header_len >= ceil(count/2) checked above
        let byte = headers[i / 2];
        let nibble = if i % 2 == 0 { byte >> 4 } else { byte & 0xF };
        let selector = nibble >> 3;
        let lzb = code_lzb(nibble & 0x7) as usize;
        let n_bytes = 8 - lzb;
        let Some((head, tail)) = payload.split_at_checked(n_bytes) else {
            return Err(CodecError::Truncated { codec: NAME });
        };
        let mut be = [0u8; 8];
        // ANALYZER-ALLOW(no-panic): n_bytes <= 8 because code_lzb returns <= 8
        be[8 - n_bytes..].copy_from_slice(head);
        payload = tail;
        let xor = u64::from_be_bytes(be);
        let (p_fcm, p_dfcm) = predictor.predict();
        let prediction = if selector == 0 { p_fcm } else { p_dfcm };
        let bits = xor ^ prediction;
        out.push(f64::from_bits(bits));
        predictor.update(bits);
    }
    Ok(())
}

/// Decompresses `count` doubles into a fresh vector — see
/// [`try_decompress_into`] for the allocation-free variant.
pub fn try_decompress(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::new();
    try_decompress_into(bytes, count, &mut out, &mut Predictor::new())?;
    Ok(out)
}

/// Decompresses `count` doubles. Panics on corrupt input — use
/// [`try_decompress`] for untrusted bytes.
pub fn decompress(bytes: &[u8], count: usize) -> Vec<f64> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress(bytes, count).expect("corrupt fpc stream")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let bytes = compress(data);
        let back = decompress(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        bytes.len()
    }

    #[test]
    fn timeseries_roundtrip_and_compresses() {
        let data: Vec<f64> = (0..20_000).map(|i| 50.0 + ((i as f64) * 0.001).sin()).collect();
        let size = roundtrip(&data);
        assert!(size < data.len() * 8, "{size}");
    }

    #[test]
    fn repeated_values_predict_perfectly() {
        let data = vec![7.25f64; 10_000];
        let size = roundtrip(&data);
        // Half a header byte per value once the tables warm up.
        assert!(size < 10_000, "{size}");
    }

    #[test]
    fn specials_roundtrip() {
        roundtrip(&[f64::NAN, -0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, 5e-324, f64::MAX]);
    }

    #[test]
    fn random_bits_roundtrip() {
        let data: Vec<f64> = (0..5000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D)))
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn empty_and_odd_lengths() {
        roundtrip(&[]);
        roundtrip(&[1.5]);
        roundtrip(&[1.5, 2.5, 3.5]);
    }

    #[test]
    fn dfcm_helps_on_linear_ramps() {
        // A pure arithmetic ramp: the differential predictor should lock on
        // and compress far below raw size.
        let data: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        let size = roundtrip(&data);
        assert!(size < data.len() * 4, "{size}");
    }
}
