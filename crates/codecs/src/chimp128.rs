//! Chimp128 — Chimp with a 128-value reference window (VLDB'22).
//!
//! Instead of always XORing with the immediately previous value, Chimp128
//! hashes the low `log2(128) + 7 = 14` bits of every value and remembers the
//! most recent position where each key occurred. If the hashed candidate is
//! still inside the 128-value ring buffer *and* the XOR against it has more
//! than `6 + log2(128) = 13` trailing zeros, that candidate becomes the
//! reference (its 7-bit ring index is written to the stream); otherwise the
//! previous value is used, exactly as in Chimp.
//!
//! Stream layout per value (after the verbatim first value):
//!
//! * flag `00` + 7-bit index — value identical to `ring[index]`.
//! * flag `01` + 7-bit index + 3-bit lz code + center-count + center bits —
//!   trailing-zeros mode against `ring[index]`.
//! * flag `10` + `BITS - stored_lz` bits — previous-value XOR, reusing lz.
//! * flag `11` + 3-bit lz code + `BITS - lz` bits — previous-value XOR.

use bitstream::{BitReader, BitWriter};

use crate::chimp::{LEADING_DECODE, LEADING_REPR, LEADING_ROUND};
use crate::error::CodecError;
use crate::word::{bits_f32, bits_f64, f32_bits, f64_bits, Word};

const NAME: &str = "chimp128";

/// Ring-buffer capacity (the "128" in Chimp128).
pub const PREVIOUS_VALUES: usize = 128;
const PREV_LOG2: u32 = 7;
/// Low bits hashed into the candidate index table.
const KEY_BITS: u32 = PREV_LOG2 + 7;
/// Trailing-zero threshold for accepting a hashed candidate.
const TZ_THRESHOLD: u32 = 6 + PREV_LOG2;

const fn center_field<W: Word>() -> u32 {
    if W::BITS == 64 {
        6
    } else {
        5
    }
}

/// Compresses a column of words.
pub fn compress_words<W: Word>(data: &[W]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() * (W::BITS as usize / 8) + 16);
    let mut ring = [W::ZERO; PREVIOUS_VALUES];
    // Most recent global index at which each 14-bit key was seen.
    let mut indices = vec![usize::MAX; 1 << KEY_BITS];
    let mut stored_lz = u32::MAX;

    for (i, &value) in data.iter().enumerate() {
        if i == 0 {
            w.write_bits(value.to_u64(), W::BITS);
            ring[0] = value;
            indices[(value.to_u64() & ((1 << KEY_BITS) - 1)) as usize] = 0;
            continue;
        }
        let key = (value.to_u64() & ((1 << KEY_BITS) - 1)) as usize;
        let candidate_global = indices[key];

        // Pick the reference: hashed candidate if fresh and well-matching,
        // else the immediately previous value.
        let (ref_index, xor, use_candidate) = {
            let mut ref_index = (i - 1) % PREVIOUS_VALUES;
            let mut xor = value ^ ring[ref_index];
            let mut use_candidate = false;
            if candidate_global != usize::MAX && i - candidate_global < PREVIOUS_VALUES {
                let cand_index = candidate_global % PREVIOUS_VALUES;
                let cand_xor = value ^ ring[cand_index];
                if cand_xor == W::ZERO || cand_xor.trailing_zeros() > TZ_THRESHOLD {
                    ref_index = cand_index;
                    xor = cand_xor;
                    use_candidate = true;
                }
            }
            (ref_index, xor, use_candidate)
        };

        if use_candidate {
            if xor == W::ZERO {
                w.write_bits(0b00, 2);
                w.write_bits(ref_index as u64, PREV_LOG2);
            } else {
                let tz = xor.trailing_zeros();
                let lz = LEADING_ROUND[xor.leading_zeros() as usize];
                let center = W::BITS - lz - tz;
                w.write_bits(0b01, 2);
                w.write_bits(ref_index as u64, PREV_LOG2);
                w.write_bits(LEADING_REPR[lz as usize], 3);
                w.write_bits((center % W::BITS) as u64, center_field::<W>());
                w.write_bits(xor.to_u64() >> tz, center);
            }
            stored_lz = u32::MAX;
        } else if xor == W::ZERO {
            // Previous value repeated but hash missed (or stale): encode as a
            // candidate-match against the previous ring slot.
            w.write_bits(0b00, 2);
            w.write_bits(ref_index as u64, PREV_LOG2);
            stored_lz = u32::MAX;
        } else {
            let lz = LEADING_ROUND[xor.leading_zeros() as usize];
            if lz == stored_lz {
                w.write_bits(0b10, 2);
                w.write_bits(xor.to_u64(), W::BITS - lz);
            } else {
                w.write_bits(0b11, 2);
                w.write_bits(LEADING_REPR[lz as usize], 3);
                w.write_bits(xor.to_u64(), W::BITS - lz);
                stored_lz = lz;
            }
        }

        ring[i % PREVIOUS_VALUES] = value; // ANALYZER-ALLOW(no-panic): index is mod ring size
        indices[key] = i;
    }
    w.into_bytes()
}

/// Decompresses `count` words into `out` (cleared first), validating every
/// field against the input. Allocation-free once `out` has capacity.
/// (Ring indices are 7-bit reads and cannot exceed the 128-slot buffer; the
/// center/lz geometry and end-of-stream are the checked hazards.)
pub fn try_decompress_words_into<W: Word>(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<W>,
) -> Result<(), CodecError> {
    let mut r = BitReader::new(bytes);
    out.clear();
    out.reserve(count.min(1 << 24));
    if count == 0 {
        return Ok(());
    }
    let mut ring = [W::ZERO; PREVIOUS_VALUES];
    let first = W::from_u64(r.read_bits(W::BITS));
    ring[0] = first; // ANALYZER-ALLOW(no-panic): fixed 128-slot ring
    out.push(first);
    let mut prev = first;
    let mut stored_lz = 0u32;

    for i in 1..count {
        let flag = r.read_bits(2);
        let value = match flag {
            0b00 => {
                let idx = r.read_bits(PREV_LOG2) as usize;
                ring[idx] // ANALYZER-ALLOW(no-panic): 7-bit index into 128-slot ring
            }
            0b01 => {
                let idx = r.read_bits(PREV_LOG2) as usize;
                // ANALYZER-ALLOW(no-panic): 3-bit index into the 8-entry LUT
                let lz = LEADING_DECODE[r.read_bits(3) as usize];
                // ANALYZER-ALLOW(no-panic): center field is at most 6 bits wide
                let mut center = r.read_bits(center_field::<W>()) as u32;
                if center == 0 {
                    center = W::BITS;
                }
                let tz = W::BITS.checked_sub(lz + center).ok_or(CodecError::Corrupt {
                    codec: NAME,
                    what: "center exceeds word width",
                })?;
                let xor = W::from_u64(r.read_bits(center) << tz);
                ring[idx] ^ xor // ANALYZER-ALLOW(no-panic): 7-bit index into 128-slot ring
            }
            0b10 => {
                let len = W::BITS
                    .checked_sub(stored_lz)
                    .ok_or(CodecError::Corrupt { codec: NAME, what: "lz exceeds word width" })?;
                let xor = W::from_u64(r.read_bits(len));
                prev ^ xor
            }
            _ => {
                // ANALYZER-ALLOW(no-panic): 3-bit index into the 8-entry LUT
                stored_lz = LEADING_DECODE[r.read_bits(3) as usize];
                let len = W::BITS
                    .checked_sub(stored_lz)
                    .ok_or(CodecError::Corrupt { codec: NAME, what: "lz exceeds word width" })?;
                let xor = W::from_u64(r.read_bits(len));
                prev ^ xor
            }
        };
        ring[i % PREVIOUS_VALUES] = value; // ANALYZER-ALLOW(no-panic): index is mod ring size
        out.push(value);
        prev = value;
    }
    if r.overrun() {
        return Err(CodecError::Truncated { codec: NAME });
    }
    Ok(())
}

/// Decompresses `count` words into a fresh vector — see
/// [`try_decompress_words_into`] for the allocation-free variant.
pub fn try_decompress_words<W: Word>(bytes: &[u8], count: usize) -> Result<Vec<W>, CodecError> {
    let mut out = Vec::new();
    try_decompress_words_into(bytes, count, &mut out)?;
    Ok(out)
}

/// Decompresses `count` words. Panics on corrupt input — use
/// [`try_decompress_words`] for untrusted bytes.
pub fn decompress_words<W: Word>(bytes: &[u8], count: usize) -> Vec<W> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress_words(bytes, count).expect("corrupt chimp128 stream")
}

/// Compresses doubles.
pub fn compress_f64(data: &[f64]) -> Vec<u8> {
    compress_words(&f64_bits(data))
}

/// Decompresses `count` doubles.
pub fn decompress_f64(bytes: &[u8], count: usize) -> Vec<f64> {
    bits_f64(&decompress_words::<u64>(bytes, count))
}

/// Fallible variant of [`decompress_f64`] for untrusted input.
pub fn try_decompress_f64(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    Ok(bits_f64(&try_decompress_words::<u64>(bytes, count)?))
}

/// Compresses 32-bit floats.
pub fn compress_f32(data: &[f32]) -> Vec<u8> {
    compress_words(&f32_bits(data))
}

/// Decompresses `count` 32-bit floats.
pub fn decompress_f32(bytes: &[u8], count: usize) -> Vec<f32> {
    bits_f32(&decompress_words::<u32>(bytes, count))
}

/// Fallible variant of [`decompress_f32`] for untrusted input.
pub fn try_decompress_f32(bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
    Ok(bits_f32(&try_decompress_words::<u32>(bytes, count)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip64(data: &[f64]) {
        let bytes = compress_f64(data);
        let back = decompress_f64(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
    }

    #[test]
    fn duplicates_far_apart_benefit_from_window() {
        // The same 40 values cycle with period 40 (< 128): Chimp128 should
        // find perfect references and beat Chimp clearly.
        let pool: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.7).sin()).collect();
        let data: Vec<f64> = (0..20_000).map(|i| pool[i % 40]).collect();
        roundtrip64(&data);
        let c128 = compress_f64(&data).len();
        let c = crate::chimp::compress_f64(&data).len();
        assert!(c128 * 2 < c, "chimp128 {c128} vs chimp {c}");
    }

    #[test]
    fn timeseries_roundtrip() {
        let data: Vec<f64> = (0..10_000).map(|i| 55.0 + ((i as f64) * 0.01).cos()).collect();
        roundtrip64(&data);
    }

    #[test]
    fn specials_roundtrip() {
        roundtrip64(&[f64::NAN, f64::NAN, -0.0, 0.0, f64::INFINITY, 1e-320, f64::MAX, f64::MIN]);
    }

    #[test]
    fn random_bits_roundtrip() {
        let data: Vec<f64> = (0..5000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0xA24B_AED4_963E_E407)))
            .collect();
        roundtrip64(&data);
    }

    #[test]
    fn short_inputs() {
        roundtrip64(&[]);
        roundtrip64(&[1.0]);
        roundtrip64(&[1.0, 1.0]);
        roundtrip64(&[1.0, 2.0, 1.0]);
    }

    #[test]
    fn f32_roundtrip() {
        let pool: Vec<f32> = (0..60).map(|i| (i as f32) * 0.125).collect();
        let data: Vec<f32> = (0..8000).map(|i| pool[(i * 13) % 60]).collect();
        let bytes = compress_f32(&data);
        let back = decompress_f32(&bytes, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
