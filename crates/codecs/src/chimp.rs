//! Chimp (Liakos, Papakonstantinopoulou, Kotidis — VLDB'22).
//!
//! Like Gorilla, Chimp XORs each value with its predecessor, but it chooses
//! among **four** encoding modes via a 2-bit flag:
//!
//! * `00` — XOR is zero.
//! * `01` — XOR has more than [`TZ_THRESHOLD`] trailing zeros: write a 3-bit
//!   rounded leading-zero code, a center-bit count, then the center bits.
//! * `10` — leading zeros match the previously stored count: write the
//!   remaining `BITS - lz` bits (trailing zeros included).
//! * `11` — new leading-zero count: 3-bit code, then `BITS - lz` bits.
//!
//! Leading-zero counts are rounded down to {0, 8, 12, 16, 18, 20, 22, 24} so
//! they fit a 3-bit code — the tables below are the reference ones.

use bitstream::{BitReader, BitWriter};

use crate::error::CodecError;
use crate::word::{bits_f32, bits_f64, f32_bits, f64_bits, Word};

const NAME: &str = "chimp";

/// Trailing zeros beyond this trigger the center-bits mode (`01`).
pub const TZ_THRESHOLD: u32 = 6;

/// Rounded leading-zero value for each raw count 0..=64 (reference table).
pub(crate) const LEADING_ROUND: [u32; 65] = [
    0, 0, 0, 0, 0, 0, 0, 0, 8, 8, 8, 8, 12, 12, 12, 12, 16, 16, 18, 18, 20, 20, 22, 22, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
    24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
];

/// 3-bit code for each rounded leading-zero count.
pub(crate) const LEADING_REPR: [u64; 65] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 7, 7, 7, 7, 7, 7,
    7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
    7,
];

/// Rounded leading-zero count for each 3-bit code.
pub(crate) const LEADING_DECODE: [u32; 8] = [0, 8, 12, 16, 18, 20, 22, 24];

const fn center_field<W: Word>() -> u32 {
    if W::BITS == 64 {
        6
    } else {
        5
    }
}

/// Compresses a column of words.
pub fn compress_words<W: Word>(data: &[W]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() * (W::BITS as usize / 8) + 16);
    let mut prev = W::ZERO;
    let mut stored_lz = u32::MAX;
    for (i, &value) in data.iter().enumerate() {
        if i == 0 {
            w.write_bits(value.to_u64(), W::BITS);
            prev = value;
            continue;
        }
        let xor = value ^ prev;
        if xor == W::ZERO {
            w.write_bits(0b00, 2);
            stored_lz = u32::MAX;
        } else {
            let lz = LEADING_ROUND[xor.leading_zeros() as usize];
            let tz = xor.trailing_zeros();
            if tz > TZ_THRESHOLD {
                let center = W::BITS - lz - tz;
                w.write_bits(0b01, 2);
                w.write_bits(LEADING_REPR[lz as usize], 3);
                // center is 1..=BITS-TZ-1; encode BITS as 0 (cannot occur here
                // but keeps the field width uniform).
                w.write_bits((center % W::BITS) as u64, center_field::<W>());
                w.write_bits(xor.to_u64() >> tz, center);
                stored_lz = u32::MAX;
            } else if lz == stored_lz {
                w.write_bits(0b10, 2);
                w.write_bits(xor.to_u64(), W::BITS - lz);
            } else {
                w.write_bits(0b11, 2);
                w.write_bits(LEADING_REPR[lz as usize], 3);
                w.write_bits(xor.to_u64(), W::BITS - lz);
                stored_lz = lz;
            }
        }
        prev = value;
    }
    w.into_bytes()
}

/// Decompresses `count` words into `out` (cleared first), validating every
/// field against the input. Allocation-free once `out` has capacity.
pub fn try_decompress_words_into<W: Word>(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<W>,
) -> Result<(), CodecError> {
    let mut r = BitReader::new(bytes);
    out.clear();
    out.reserve(count.min(1 << 24));
    if count == 0 {
        return Ok(());
    }
    let mut prev = W::from_u64(r.read_bits(W::BITS));
    out.push(prev);
    let mut stored_lz = 0u32;
    for _ in 1..count {
        let flag = r.read_bits(2);
        let value = match flag {
            0b00 => prev,
            0b01 => {
                // ANALYZER-ALLOW(no-panic): 3-bit index into the 8-entry LUT
                let lz = LEADING_DECODE[r.read_bits(3) as usize];
                // ANALYZER-ALLOW(no-panic): center field is at most 6 bits wide
                let mut center = r.read_bits(center_field::<W>()) as u32;
                if center == 0 {
                    center = W::BITS;
                }
                let tz = W::BITS.checked_sub(lz + center).ok_or(CodecError::Corrupt {
                    codec: NAME,
                    what: "center exceeds word width",
                })?;
                let xor = W::from_u64(r.read_bits(center) << tz);
                prev ^ xor
            }
            0b10 => {
                let len = W::BITS
                    .checked_sub(stored_lz)
                    .ok_or(CodecError::Corrupt { codec: NAME, what: "lz exceeds word width" })?;
                let xor = W::from_u64(r.read_bits(len));
                prev ^ xor
            }
            _ => {
                // ANALYZER-ALLOW(no-panic): 3-bit index into the 8-entry LUT
                stored_lz = LEADING_DECODE[r.read_bits(3) as usize];
                let len = W::BITS
                    .checked_sub(stored_lz)
                    .ok_or(CodecError::Corrupt { codec: NAME, what: "lz exceeds word width" })?;
                let xor = W::from_u64(r.read_bits(len));
                prev ^ xor
            }
        };
        out.push(value);
        prev = value;
    }
    if r.overrun() {
        return Err(CodecError::Truncated { codec: NAME });
    }
    Ok(())
}

/// Decompresses `count` words into a fresh vector — see
/// [`try_decompress_words_into`] for the allocation-free variant.
pub fn try_decompress_words<W: Word>(bytes: &[u8], count: usize) -> Result<Vec<W>, CodecError> {
    let mut out = Vec::new();
    try_decompress_words_into(bytes, count, &mut out)?;
    Ok(out)
}

/// Decompresses `count` words. Panics on corrupt input — use
/// [`try_decompress_words`] for untrusted bytes.
pub fn decompress_words<W: Word>(bytes: &[u8], count: usize) -> Vec<W> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress_words(bytes, count).expect("corrupt chimp stream")
}

/// Compresses doubles.
pub fn compress_f64(data: &[f64]) -> Vec<u8> {
    compress_words(&f64_bits(data))
}

/// Decompresses `count` doubles.
pub fn decompress_f64(bytes: &[u8], count: usize) -> Vec<f64> {
    bits_f64(&decompress_words::<u64>(bytes, count))
}

/// Fallible variant of [`decompress_f64`] for untrusted input.
pub fn try_decompress_f64(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    Ok(bits_f64(&try_decompress_words::<u64>(bytes, count)?))
}

/// Compresses 32-bit floats.
pub fn compress_f32(data: &[f32]) -> Vec<u8> {
    compress_words(&f32_bits(data))
}

/// Decompresses `count` 32-bit floats.
pub fn decompress_f32(bytes: &[u8], count: usize) -> Vec<f32> {
    bits_f32(&decompress_words::<u32>(bytes, count))
}

/// Fallible variant of [`decompress_f32`] for untrusted input.
pub fn try_decompress_f32(bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
    Ok(bits_f32(&try_decompress_words::<u32>(bytes, count)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip64(data: &[f64]) {
        let bytes = compress_f64(data);
        let back = decompress_f64(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
    }

    #[test]
    fn leading_tables_are_consistent() {
        for lz in 0..=64usize {
            let rounded = LEADING_ROUND[lz];
            assert!(rounded as usize <= lz);
            assert_eq!(LEADING_DECODE[LEADING_REPR[lz] as usize], rounded);
        }
    }

    #[test]
    fn timeseries_roundtrip() {
        let data: Vec<f64> = (0..5000).map(|i| 100.0 + ((i as f64) * 0.003).sin() * 5.0).collect();
        roundtrip64(&data);
    }

    #[test]
    fn specials_roundtrip() {
        roundtrip64(&[f64::NAN, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e-310, 0.0]);
    }

    #[test]
    fn random_bits_roundtrip() {
        let data: Vec<f64> = (0..4000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0xD134_2543_DE82_EF95) | 1))
            .collect();
        roundtrip64(&data);
    }

    #[test]
    fn repeated_values_compress_to_two_bits() {
        let data = vec![9.5f64; 8000];
        let bytes = compress_f64(&data);
        assert!(bytes.len() <= 8 + 2 * 8000 / 8 + 8, "{} bytes", bytes.len());
        roundtrip64(&data);
    }

    #[test]
    fn f32_roundtrip() {
        let data: Vec<f32> = (0..3000).map(|i| (i as f32) * 0.25 - 17.0).collect();
        let bytes = compress_f32(&data);
        let back = decompress_f32(&bytes, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
