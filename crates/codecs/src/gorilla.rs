//! Gorilla floating-point compression (Pelkonen et al., VLDB'15, §4.1.2).
//!
//! Each value is XORed with the immediately previous one:
//!
//! * XOR == 0 → control bit `0`.
//! * XOR != 0 → control bit `1`, then:
//!   * `0` if the meaningful bits fall inside the previous value's window
//!     (leading zeros ≥ stored, trailing zeros ≥ stored): re-use the stored
//!     window and write only its bits.
//!   * `1` otherwise: write 5/6 bits of leading-zero count, `LEN_BITS` bits of
//!     meaningful-bit count (count `BITS` wraps to 0), then the bits.
//!
//! The first value is stored verbatim. Generic over [`Word`]: `u64` for the
//! paper's doubles, `u32` for the Table 7 floats.

use bitstream::{BitReader, BitWriter};

use crate::error::CodecError;
use crate::word::{bits_f32, bits_f64, f32_bits, f64_bits, Word};

const NAME: &str = "gorilla";

/// Bits used for the leading-zero count field.
const LZ_FIELD: u32 = 6;
/// Leading-zero counts are capped so they fit the field comfortably.
const MAX_LZ: u32 = 63;

const fn len_field<W: Word>() -> u32 {
    // Meaningful length is 1..=BITS; BITS wraps to 0, so log2(BITS) bits do.
    if W::BITS == 64 {
        6
    } else {
        5
    }
}

/// Compresses a column of words.
pub fn compress_words<W: Word>(data: &[W]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() * (W::BITS as usize / 8) + 16);
    let mut prev = W::ZERO;
    let mut stored_lz = u32::MAX; // forces a fresh window on first non-zero XOR
    let mut stored_tz = 0u32;
    for (i, &value) in data.iter().enumerate() {
        if i == 0 {
            w.write_bits(value.to_u64(), W::BITS);
            prev = value;
            continue;
        }
        let xor = value ^ prev;
        if xor == W::ZERO {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let lz = xor.leading_zeros().min(MAX_LZ);
            let tz = xor.trailing_zeros();
            if stored_lz != u32::MAX && lz >= stored_lz && tz >= stored_tz {
                // Fits the stored window.
                w.write_bit(false);
                let len = W::BITS - stored_lz - stored_tz;
                w.write_bits(xor.to_u64() >> stored_tz, len);
            } else {
                w.write_bit(true);
                stored_lz = lz;
                stored_tz = tz;
                let len = W::BITS - lz - tz;
                w.write_bits(lz as u64, LZ_FIELD);
                // len is 1..=BITS; BITS encodes as 0.
                w.write_bits((len % W::BITS) as u64, len_field::<W>());
                w.write_bits(xor.to_u64() >> tz, len);
            }
        }
        prev = value;
    }
    w.into_bytes()
}

/// Decompresses `count` words into `out` (cleared first), validating every
/// field against the input. Allocation-free once `out` has capacity.
///
/// Returns an error if the stream is truncated (any bit-level read ran past
/// the end of `bytes`) or a window descriptor is impossible (`lz + len`
/// exceeding the word width — only corrupt input can produce it).
pub fn try_decompress_words_into<W: Word>(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<W>,
) -> Result<(), CodecError> {
    let mut r = BitReader::new(bytes);
    out.clear();
    out.reserve(count.min(1 << 24));
    if count == 0 {
        return Ok(());
    }
    let mut prev = W::from_u64(r.read_bits(W::BITS));
    out.push(prev);
    let mut stored_lz = 0u32;
    let mut stored_tz = 0u32;
    for _ in 1..count {
        let value = if !r.read_bit() {
            prev
        } else {
            if r.read_bit() {
                // ANALYZER-ALLOW(no-panic): LZ_FIELD-bit value fits u32
                stored_lz = r.read_bits(LZ_FIELD) as u32;
                // ANALYZER-ALLOW(no-panic): length field is at most 6 bits wide
                let mut len = r.read_bits(len_field::<W>()) as u32;
                if len == 0 {
                    len = W::BITS;
                }
                stored_tz = W::BITS.checked_sub(stored_lz + len).ok_or(CodecError::Corrupt {
                    codec: NAME,
                    what: "window exceeds word width",
                })?;
            }
            let len = W::BITS - stored_lz - stored_tz;
            let xor = W::from_u64(r.read_bits(len) << stored_tz);
            prev ^ xor
        };
        out.push(value);
        prev = value;
    }
    if r.overrun() {
        return Err(CodecError::Truncated { codec: NAME });
    }
    Ok(())
}

/// Decompresses `count` words into a fresh vector — see
/// [`try_decompress_words_into`] for the allocation-free variant.
pub fn try_decompress_words<W: Word>(bytes: &[u8], count: usize) -> Result<Vec<W>, CodecError> {
    let mut out = Vec::new();
    try_decompress_words_into(bytes, count, &mut out)?;
    Ok(out)
}

/// Decompresses `count` words. Panics on corrupt input — use
/// [`try_decompress_words`] for untrusted bytes.
pub fn decompress_words<W: Word>(bytes: &[u8], count: usize) -> Vec<W> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress_words(bytes, count).expect("corrupt gorilla stream")
}

/// Compresses doubles.
pub fn compress_f64(data: &[f64]) -> Vec<u8> {
    compress_words(&f64_bits(data))
}

/// Decompresses `count` doubles.
pub fn decompress_f64(bytes: &[u8], count: usize) -> Vec<f64> {
    bits_f64(&decompress_words::<u64>(bytes, count))
}

/// Fallible variant of [`decompress_f64`] for untrusted input.
pub fn try_decompress_f64(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    Ok(bits_f64(&try_decompress_words::<u64>(bytes, count)?))
}

/// Compresses 32-bit floats (Table 7 variant).
pub fn compress_f32(data: &[f32]) -> Vec<u8> {
    compress_words(&f32_bits(data))
}

/// Decompresses `count` 32-bit floats.
pub fn decompress_f32(bytes: &[u8], count: usize) -> Vec<f32> {
    bits_f32(&decompress_words::<u32>(bytes, count))
}

/// Fallible variant of [`decompress_f32`] for untrusted input.
pub fn try_decompress_f32(bytes: &[u8], count: usize) -> Result<Vec<f32>, CodecError> {
    Ok(bits_f32(&try_decompress_words::<u32>(bytes, count)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip64(data: &[f64]) {
        let bytes = compress_f64(data);
        let back = decompress_f64(&bytes, data.len());
        assert_eq!(back.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
    }

    #[test]
    fn empty_and_single() {
        roundtrip64(&[]);
        roundtrip64(&[42.5]);
        roundtrip64(&[f64::NAN]);
    }

    #[test]
    fn timeseries_like_data() {
        let data: Vec<f64> = (0..5000).map(|i| 20.0 + ((i as f64) * 0.01).sin()).collect();
        roundtrip64(&data);
    }

    #[test]
    fn repeated_values_cost_one_bit() {
        let data = vec![3.25f64; 10_000];
        let bytes = compress_f64(&data);
        // 64 bits + ~1 bit/value.
        assert!(bytes.len() < 8 + 10_000 / 8 + 16, "{} bytes", bytes.len());
        roundtrip64(&data);
    }

    #[test]
    fn adversarial_bit_patterns() {
        let data: Vec<f64> = (0..2000)
            .map(|i| f64::from_bits((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        roundtrip64(&data);
    }

    #[test]
    fn full_window_xor() {
        // Consecutive values whose XOR spans all 64 bits (len == 64 wraps to 0
        // in the length field).
        let data =
            vec![f64::from_bits(0x8000_0000_0000_0001), f64::from_bits(0x7FFF_FFFF_FFFF_FFFE)];
        roundtrip64(&data);
    }

    #[test]
    fn f32_roundtrip() {
        let data: Vec<f32> = (0..3000).map(|i| ((i as f32) * 0.37).cos()).collect();
        let bytes = compress_f32(&data);
        let back = decompress_f32(&bytes, data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_full_window_xor() {
        let data = vec![f32::from_bits(0x8000_0001), f32::from_bits(0x7FFF_FFFE)];
        let bytes = compress_f32(&data);
        let back = decompress_f32(&bytes, 2);
        assert_eq!(back[1].to_bits(), data[1].to_bits());
    }
}
