//! The machine-word abstraction the XOR-family codecs are generic over:
//! `u64` carries `f64` bit patterns, `u32` carries `f32` patterns.

use core::fmt::Debug;
use core::ops::BitXor;

/// A fixed-width unsigned word holding a float's bit pattern.
pub trait Word: Copy + Eq + Debug + BitXor<Output = Self> + 'static {
    /// Width in bits (64 or 32).
    const BITS: u32;
    /// The all-zero word.
    const ZERO: Self;
    /// Leading zero count.
    fn leading_zeros(self) -> u32;
    /// Trailing zero count.
    fn trailing_zeros(self) -> u32;
    /// Widen to `u64` (zero-extending).
    fn to_u64(self) -> u64;
    /// Truncate from `u64`.
    fn from_u64(v: u64) -> Self;
}

impl Word for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    #[inline(always)]
    fn leading_zeros(self) -> u32 {
        u64::leading_zeros(self)
    }
    #[inline(always)]
    fn trailing_zeros(self) -> u32 {
        u64::trailing_zeros(self)
    }
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v
    }
}

impl Word for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    #[inline(always)]
    fn leading_zeros(self) -> u32 {
        u32::leading_zeros(self)
    }
    #[inline(always)]
    fn trailing_zeros(self) -> u32 {
        u32::trailing_zeros(self)
    }
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

/// Maps a float slice to its bit-pattern words.
pub fn f64_bits(data: &[f64]) -> Vec<u64> {
    data.iter().map(|v| v.to_bits()).collect()
}

/// Maps a float slice to its bit-pattern words.
pub fn f32_bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

/// Maps bit-pattern words back to floats.
pub fn bits_f64(words: &[u64]) -> Vec<f64> {
    words.iter().map(|&b| f64::from_bits(b)).collect()
}

/// Maps bit-pattern words back to floats.
pub fn bits_f32(words: &[u32]) -> Vec<f32> {
    words.iter().map(|&b| f32::from_bits(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_constants() {
        assert_eq!(<u64 as Word>::BITS, 64);
        assert_eq!(<u32 as Word>::BITS, 32);
    }

    #[test]
    fn bit_mapping_is_exact_for_specials() {
        let vals = vec![f64::NAN, -0.0, f64::INFINITY, 1.5e-310];
        let back = bits_f64(&f64_bits(&vals));
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
