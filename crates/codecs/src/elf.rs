//! Elf (Li et al., VLDB'23) — *erase-then-XOR* compression.
//!
//! Elf observes that a double which originated as a decimal with `α` digits
//! after the point carries mantissa bits that are redundant given `α`: they
//! can be zeroed ("erased") at encode time and reconstructed at decode time
//! by re-rounding to `α` decimals. The erased values have far more trailing
//! zeros, so the XOR back-end compresses them much better; the price is
//! per-value decimal analysis at both ends — exactly the speed/ratio trade
//! the ALP paper measures (≈4x slower than Chimp-family, better ratio).
//!
//! This reproduction keeps Elf's structure but simplifies the bit-erasure
//! search (documented in DESIGN.md): per value we store a 1-bit "erased" flag
//! and, when set, a 4-bit decimal precision `α ∈ 0..=14`; reconstruction is
//! `round(erased * 10^α) / 10^α`, where the division by an exact power of ten
//! is correctly rounded and therefore recovers the original double bit-exactly
//! (this is verified at encode time; failures fall back to the raw path).
//! The erased stream is compressed with the Chimp back-end, as Elf builds on
//! a Gorilla/Chimp-style XOR stage.

use bitstream::{BitReader, BitWriter};

use crate::error::CodecError;
use crate::word::Word;

const NAME: &str = "elf";

const MAX_ALPHA: u32 = 14;

/// Number of decimal digits after the point in the shortest representation,
/// or `None` if the value is not finite / has too many digits to exploit.
fn visible_precision(v: f64) -> Option<u32> {
    if !v.is_finite() {
        return None;
    }
    let s = format!("{v}");
    let p = match s.find('.') {
        Some(dot) => (s.len() - dot - 1) as u32,
        None => 0,
    };
    (p <= MAX_ALPHA).then_some(p)
}

/// Attempts to erase trailing mantissa bits of `v` given precision `alpha`.
/// Returns the erased value, or `None` if `v` cannot be reconstructed from
/// `(erased, alpha)`.
fn erase(v: f64, alpha: u32) -> Option<f64> {
    let pow = 10f64.powi(alpha as i32);
    let scaled = v * pow;
    if !scaled.is_finite() || scaled.abs() >= 9.007_199_254_740_992e15 {
        return None;
    }
    let d = scaled.round();
    // Reconstruction must be bit-exact (division by 10^alpha is correctly
    // rounded, so this recovers exactly the nearest double to d * 10^-alpha).
    if (d / pow).to_bits() != v.to_bits() {
        return None;
    }
    // Zero trailing mantissa bits while reconstruction still works. Erasing
    // monotonically coarsens the value, so scan from aggressive to none.
    let bits = v.to_bits();
    for erased_bits in (1..52u32).rev() {
        let mask = !((1u64 << erased_bits) - 1);
        let cand = f64::from_bits(bits & mask);
        if restore(cand, alpha).to_bits() == v.to_bits() {
            return Some(cand);
        }
    }
    Some(v)
}

/// Reconstructs the original value from an erased value and its precision.
fn restore(erased: f64, alpha: u32) -> f64 {
    let pow = 10f64.powi(alpha as i32);
    (erased * pow).round() / pow
}

/// Compresses a column of doubles.
pub fn compress(data: &[f64]) -> Vec<u8> {
    // Pass 1: erase what can be erased, remember flags/alphas.
    let mut erased_stream: Vec<u64> = Vec::with_capacity(data.len());
    let mut flags = BitWriter::with_capacity(data.len() / 8 + 8);
    for &v in data {
        let mut done = false;
        if let Some(alpha) = visible_precision(v) {
            if let Some(e) = erase(v, alpha) {
                flags.write_bit(true);
                flags.write_bits(alpha as u64, 4);
                erased_stream.push(e.to_bits());
                done = true;
            }
        }
        if !done {
            flags.write_bit(false);
            erased_stream.push(v.to_bits());
        }
    }
    // Pass 2: XOR-compress the erased stream with the Chimp back-end.
    let xor_bytes = crate::chimp::compress_words(&erased_stream);
    let flag_bytes = flags.into_bytes();

    let mut out = Vec::with_capacity(8 + flag_bytes.len() + xor_bytes.len());
    out.extend_from_slice(&(flag_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&flag_bytes);
    out.extend_from_slice(&xor_bytes);
    out
}

/// Decompresses `count` doubles into `out` (cleared first), validating every
/// field against the input. `words` is the scratch buffer for the erased XOR
/// stream; the call is allocation-free once both buffers have capacity.
///
/// Checked hazards: the flag-stream length prefix (can claim more bytes than
/// exist), flag-stream exhaustion, precision values past [`MAX_ALPHA`], and
/// whatever the Chimp back-end detects in the XOR stream.
pub fn try_decompress_into(
    bytes: &[u8],
    count: usize,
    out: &mut Vec<f64>,
    words: &mut Vec<u64>,
) -> Result<(), CodecError> {
    let Some((len_bytes, rest)) = bytes.split_first_chunk::<8>() else {
        return Err(CodecError::Truncated { codec: NAME });
    };
    let flag_len = u64::from_le_bytes(*len_bytes) as usize;
    let Some((flag_bytes, xor_bytes)) = rest.split_at_checked(flag_len) else {
        return Err(CodecError::Truncated { codec: NAME });
    };
    crate::chimp::try_decompress_words_into(xor_bytes, count, words)?;

    let mut flags = BitReader::new(flag_bytes);
    out.clear();
    out.reserve(count.min(1 << 24));
    for &bits in words.iter() {
        let v = f64::from_bits(bits);
        if flags.read_bit() {
            let alpha = flags.read_bits(4) as u32; // ANALYZER-ALLOW(no-panic): 4-bit value
            if alpha > MAX_ALPHA {
                return Err(CodecError::Corrupt { codec: NAME, what: "precision out of range" });
            }
            out.push(restore(v, alpha));
        } else {
            out.push(v);
        }
    }
    if flags.overrun() {
        return Err(CodecError::Truncated { codec: NAME });
    }
    Ok(())
}

/// Decompresses `count` doubles into fresh vectors — see
/// [`try_decompress_into`] for the allocation-free variant.
pub fn try_decompress(bytes: &[u8], count: usize) -> Result<Vec<f64>, CodecError> {
    let mut out = Vec::new();
    let mut words = Vec::new();
    try_decompress_into(bytes, count, &mut out, &mut words)?;
    Ok(out)
}

/// Decompresses `count` doubles. Panics on corrupt input — use
/// [`try_decompress`] for untrusted bytes.
pub fn decompress(bytes: &[u8], count: usize) -> Vec<f64> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress(bytes, count).expect("corrupt elf stream")
}

/// Word-width guard: Elf is only defined for doubles here, as in the paper's
/// evaluation (no 32-bit Elf exists).
pub fn assert_f64_only<W: Word>() {
    assert_eq!(W::BITS, 64, "Elf is implemented for f64 only");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[f64]) -> usize {
        let bytes = compress(data);
        let back = decompress(&bytes, data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        bytes.len()
    }

    #[test]
    fn decimal_data_roundtrips_and_beats_chimp() {
        let data: Vec<f64> = (0..4096).map(|i| (i as f64 * 7.0 + 3.0) / 100.0).collect();
        let elf_size = roundtrip(&data);
        let chimp_size = crate::chimp::compress_f64(&data).len();
        assert!(elf_size < chimp_size, "elf {elf_size} vs chimp {chimp_size}");
    }

    #[test]
    fn erase_recovers_paper_example() {
        let v = 8.0605f64;
        let e = erase(v, 4).expect("erasable");
        assert_eq!(restore(e, 4).to_bits(), v.to_bits());
        // Erasure must produce at least as many trailing zero bits.
        assert!(e.to_bits().trailing_zeros() >= v.to_bits().trailing_zeros());
    }

    #[test]
    fn full_precision_values_fall_back_to_raw() {
        let data: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.7391).sin()).collect();
        roundtrip(&data);
    }

    #[test]
    fn specials_roundtrip() {
        roundtrip(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0, 5e-324]);
    }

    #[test]
    fn mixed_precision_roundtrip() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.push(match i % 4 {
                0 => (i as f64) / 10.0,
                1 => (i as f64) / 10_000.0,
                2 => (i as f64) * 1.0,
                _ => ((i as f64) * 0.123).cos(),
            });
        }
        roundtrip(&data);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[std::f64::consts::E]);
    }
}
