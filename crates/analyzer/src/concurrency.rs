//! The concurrency-discipline rules (`atomic-rmw`, `atomic-ordering`,
//! `condvar-discipline`, `guard-across-call`, `cancel-poll`).
//!
//! All five work on the per-function facts from [`crate::flow`] — statements,
//! binding live ranges, loop spans — rather than raw lines, so a multi-line
//! iterator chain is one statement and a guard's lifetime is a real range.
//! They are deliberately narrow: each encodes one discipline this workspace
//! already follows by hand (DESIGN.md §13), and anything the textual model
//! cannot prove safe must either be rewritten or carry an `ANALYZER-ALLOW`
//! with a reason.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::flow::{self, FnFlow, Stmt};
use crate::parse::{FileInfo, FnItem};
use crate::rules::word_in;
use crate::{Config, Finding};

/// Runs all five concurrency rules over every non-test function.
pub(crate) fn run(files: &BTreeMap<String, FileInfo>, cfg: &Config, findings: &mut Vec<Finding>) {
    for (path, info) in files {
        let file_has_condvar = info.lines.iter().any(|l| word_in(&l.code, "Condvar"));
        for f in &info.fns {
            if f.in_test {
                continue;
            }
            let fl = flow::scan_fn(&info.lines, f);
            atomic_rmw(path, f, &fl, findings);
            atomic_ordering(path, f, &fl, cfg, findings);
            if file_has_condvar {
                condvar_discipline(path, f, &fl, findings);
            }
            guard_across_call(path, f, &fl, cfg, findings);
            cancel_poll(path, f, &fl, cfg, findings);
        }
    }
}

/// Strips all whitespace (statement text is space-collapsed; receiver and
/// call-pattern matching wants exact adjacency).
fn squeeze(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// The receiver chain ending just before byte offset `at` in squeezed text:
/// the maximal run of identifier chars, `.`, `::`, and index brackets —
/// `self.ewma_nanos`, `q`, `flags[i]`.
fn receiver_before(text: &str, at: usize) -> &str {
    let bytes = text.as_bytes();
    let mut start = at;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'[' | b']') {
            start -= 1;
        } else {
            break;
        }
    }
    &text[start..at]
}

/// Occurrences of `.op(` in squeezed text, yielding (receiver, args-offset).
fn atomic_ops<'a>(text: &'a str, op: &str) -> Vec<(&'a str, usize)> {
    let needle = format!(".{op}(");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let at = from + pos;
        out.push((receiver_before(text, at), at + needle.len()));
        from = at + needle.len();
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: atomic-rmw
// ---------------------------------------------------------------------------

/// A `.load(…)` whose result flows (through bindings, statement-level) into a
/// `.store(…)` on the *same* receiver is a lost-update race: another thread
/// can update the atomic between the two halves and have its write silently
/// overwritten. Use `fetch_add`/`fetch_update`/`compare_exchange`.
fn atomic_rmw(path: &str, f: &FnItem, fl: &FnFlow, findings: &mut Vec<Finding>) {
    // Binding name → receivers whose loaded value tainted it.
    let mut taint: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for stmt in &fl.stmts {
        let sq = squeeze(&stmt.text);
        // New taint: `let name = … recv.load(…) …` or propagation from an
        // already-tainted binding mentioned in the initializer.
        if let Some((name, init)) = as_let(&stmt.text) {
            let mut sources: BTreeSet<String> = BTreeSet::new();
            for (recv, _) in atomic_ops(&squeeze(init), "load") {
                if !recv.is_empty() {
                    sources.insert(recv.to_string());
                }
            }
            for (var, recvs) in &taint {
                if word_in(init, var) {
                    sources.extend(recvs.iter().cloned());
                }
            }
            if !sources.is_empty() {
                taint.insert(name.to_string(), sources);
            }
        }
        // Sink: `recv.store(args…)` whose args mention a binding tainted by a
        // load of the same receiver, or an inline `recv.load(` in the args.
        for (recv, args_at) in atomic_ops(&sq, "store") {
            if recv.is_empty() {
                continue;
            }
            let args = &sq[args_at..];
            let inline = args.contains(&format!("{recv}.load("));
            let via_binding =
                taint.iter().any(|(var, recvs)| recvs.contains(recv) && word_in(args, var));
            if inline || via_binding {
                findings.push(Finding::new(
                    "atomic-rmw",
                    path,
                    stmt.line,
                    &format!(
                        "lost-update race in `{}`: `{recv}.store(…)` writes a value derived \
                         from `{recv}.load(…)` — use `fetch_*`/`fetch_update` so the \
                         read-modify-write is one atomic step",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// Splits a squeezed-ish statement `let [mut] name = init`; `None` for
/// destructuring patterns (the flow module already skips those too).
fn as_let(text: &str) -> Option<(&str, &str)> {
    let rest = text.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name_len = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').count();
    if name_len == 0 {
        return None;
    }
    let (name, tail) = rest.split_at(name_len);
    if name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    let eq = tail.find('=')?;
    let ascription_ok = |c: char| {
        c.is_whitespace() || c.is_alphanumeric() || matches!(c, ':' | '_' | '<' | '>' | '&' | '\'')
    };
    if tail[..eq].contains(|c: char| !ascription_ok(c)) {
        // Type ascriptions pass; anything structural (commas, parens) is a
        // pattern we do not track.
        return None;
    }
    Some((name, tail[eq + 1..].trim_start()))
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering
// ---------------------------------------------------------------------------

/// `Ordering::Relaxed` on a configured data-visibility gate field. A gate
/// flag publishes *other* data (a quarantine verdict, a loss reason): the
/// writer must `store(…, Release)` after the payload write and readers must
/// `load(Acquire)`, or the payload may not be visible when the flag is.
/// Counters that only feed stats stay Relaxed by not being configured.
fn atomic_ordering(path: &str, f: &FnItem, fl: &FnFlow, cfg: &Config, findings: &mut Vec<Finding>) {
    for gate in &cfg.ordering_gate_fields {
        // Bindings/closure params that alias the gate field in this fn.
        let mut aliases: BTreeSet<String> = BTreeSet::new();
        for stmt in &fl.stmts {
            let mentions_gate =
                word_in(&stmt.text, gate) || aliases.iter().any(|a| word_in(&stmt.text, a));
            if mentions_gate {
                for name in bound_idents(&stmt.text) {
                    aliases.insert(name);
                }
            }
            if !stmt.text.contains("Relaxed") {
                continue;
            }
            let sq = squeeze(&stmt.text);
            for op in ["load", "store", "swap", "fetch_or", "fetch_and", "fetch_xor"] {
                for (recv, args_at) in atomic_ops(&sq, op) {
                    let relaxed_args = sq[args_at..].contains("Relaxed");
                    let gated = word_in(recv, gate)
                        || aliases.iter().any(|a| receiver_tail(recv) == a.as_str());
                    if relaxed_args && gated {
                        findings.push(Finding::new(
                            "atomic-ordering",
                            path,
                            stmt.line,
                            &format!(
                                "Relaxed `{op}` on data-visibility gate `{gate}` in `{}` — \
                                 publication needs `Release` stores paired with `Acquire` loads",
                                f.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Final identifier segment of a receiver chain (`self.a.b` → `b`).
fn receiver_tail(recv: &str) -> &str {
    recv.rsplit(|c: char| !(c.is_alphanumeric() || c == '_')).next().unwrap_or(recv)
}

/// Identifiers bound by a statement's `let` pattern or closure parameter
/// lists — the things through which a gate field can be accessed later.
fn bound_idents(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut grab_pattern_idents = |pat: &str| {
        for tok in pat.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
            if !tok.is_empty()
                && tok.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                && !matches!(tok, "let" | "mut" | "ref" | "_")
            {
                out.push(tok.to_string());
            }
        }
    };
    if let Some(rest) = text.trim_start().strip_prefix("let ") {
        if let Some(eq) = rest.find('=') {
            grab_pattern_idents(&rest[..eq]);
        }
    }
    // `if let PAT = …` / `while let PAT = …`
    for kw in ["if let ", "while let "] {
        if let Some(pos) = text.find(kw) {
            let rest = &text[pos + kw.len()..];
            if let Some(eq) = rest.find('=') {
                grab_pattern_idents(&rest[..eq]);
            }
        }
    }
    // Closure parameter lists: the text between the first `|…|` pair after a
    // call-ish char. Cheap scan: any `|…|` span without `|` inside.
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'|' && (i == 0 || !matches!(bytes[i - 1], b'|' | b'&')) {
            if let Some(end) = text[i + 1..].find('|') {
                let inner = &text[i + 1..i + 1 + end];
                if inner.len() < 64 && !inner.contains("||") {
                    grab_pattern_idents(inner);
                }
                i += end + 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: condvar-discipline
// ---------------------------------------------------------------------------

/// `Condvar::wait` wakes spuriously and returns a poison `Result`: every wait
/// must sit inside a `loop`/`while` that re-checks its predicate, and the
/// result must not be `.unwrap()`ed (a worker panicking while the gate is
/// poisoned must degrade, not cascade). `wait_while`/`wait_timeout_while`
/// re-check internally and are exempt from the loop requirement.
fn condvar_discipline(path: &str, f: &FnItem, fl: &FnFlow, findings: &mut Vec<Finding>) {
    for stmt in &fl.stmts {
        let sq = squeeze(&stmt.text);
        let plain_wait = sq.contains(".wait(") || sq.contains(".wait_timeout(");
        let while_wait = sq.contains(".wait_while(") || sq.contains(".wait_timeout_while(");
        if !plain_wait && !while_wait {
            continue;
        }
        if plain_wait && fl.loops_containing(stmt.line).next().is_none() {
            findings.push(Finding::new(
                "condvar-discipline",
                path,
                stmt.line,
                &format!(
                    "`Condvar` wait in `{}` is not inside a predicate-re-checking \
                     `while`/`loop` — spurious wakeups will be treated as signals",
                    f.name
                ),
            ));
        }
        if sq.contains(".unwrap(") || sq.contains(".expect(") {
            findings.push(Finding::new(
                "condvar-discipline",
                path,
                stmt.line,
                &format!(
                    "`Condvar` wait result unwrapped in `{}` — a poisoned gate must be \
                     recovered with `into_inner`, not propagated as a panic",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: guard-across-call
// ---------------------------------------------------------------------------

/// A `MutexGuard` live range must not span a call into the configured
/// expensive-function list (page decompression, the parallel scheduler,
/// retrying I/O): every query on the service would serialize behind that
/// lock. The range runs from the `let g = ….lock(…)` to `drop(g)` or the end
/// of the enclosing scope.
fn guard_across_call(
    path: &str,
    f: &FnItem,
    fl: &FnFlow,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    for b in &fl.bindings {
        if b.name == "_" || !squeeze(&b.init).contains(".lock(") {
            continue;
        }
        let end = b.live_end();
        for stmt in fl.stmts.iter().filter(|s| s.line > b.line && s.line <= end) {
            let sq = squeeze(&stmt.text);
            for pat in &cfg.guard_expensive_patterns {
                if let Some(called) = called_pattern(&sq, pat) {
                    findings.push(Finding::new(
                        "guard-across-call",
                        path,
                        stmt.line,
                        &format!(
                            "lock guard `{}` (taken at line {}) in `{}` is still held across \
                             call to `{called}` — drop the guard first or move the call out \
                             of the critical section",
                            b.name, b.line, f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// If squeezed `text` calls a function whose name starts with `pat`
/// (word-start match, e.g. `try_decompress` matches
/// `try_decompress_vector_at(…)`), returns the full called name.
fn called_pattern<'a>(text: &'a str, pat: &str) -> Option<&'a str> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(pat) {
        let at = from + pos;
        let word_start = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let mut end = at + pat.len();
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if word_start && bytes.get(end) == Some(&b'(') {
            return Some(&text[at..end]);
        }
        from = at + pat.len();
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: cancel-poll
// ---------------------------------------------------------------------------

/// A loop that claims morsels from the shared queue (`….claim(…)`) must
/// consult cancellation each iteration — a `CancelToken::is_cancelled` check
/// or a stop-flag load — so one cancelled or panicked query cannot leave
/// workers draining the whole queue. `run_morsels_governed` is the model.
fn cancel_poll(path: &str, f: &FnItem, fl: &FnFlow, cfg: &Config, findings: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let claim_sites: Vec<&Stmt> =
        fl.stmts.iter().filter(|s| squeeze(&s.text).contains(".claim(")).collect();
    for site in claim_sites {
        // Innermost loop containing the claim (tightest span).
        let Some(lp) = fl.loops_containing(site.line).min_by_key(|l| l.body_end - l.head_line)
        else {
            continue; // a single claim outside any loop drains nothing
        };
        if flagged.contains(&lp.head_line) {
            continue;
        }
        let mut text = squeeze(&lp.head);
        for s in fl.stmts.iter().filter(|s| s.line >= lp.head_line && s.line <= lp.body_end) {
            text.push_str(&squeeze(&s.text));
            text.push('\n');
        }
        let polled = cfg.cancel_poll_patterns.iter().any(|p| text.contains(p.as_str()));
        if !polled {
            flagged.insert(lp.head_line);
            findings.push(Finding::new(
                "cancel-poll",
                path,
                lp.head_line,
                &format!(
                    "morsel-claim loop in `{}` never consults cancellation — poll a \
                     `CancelToken`/stop flag each iteration so a cancelled query stops \
                     claiming work",
                    f.name
                ),
            ));
        }
    }
}
