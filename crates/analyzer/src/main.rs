//! `analyzer` binary — run the workspace lint pass from the command line.
//!
//! ```text
//! cargo run -p analyzer -- [--root <path>] [--format text|json]
//! ```
//!
//! Exits 0 when the workspace is finding-clean, 1 when findings exist, and
//! 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::{analyze_workspace, find_workspace_root, report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].clone();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: analyzer [--root <path>] [--format text|json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("unknown format {format} (expected text or json)");
        return ExitCode::from(2);
    }

    let root = match root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!("could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };

    match analyze_workspace(&root) {
        Ok(findings) => {
            let rendered = if format == "json" {
                report::render_json(&findings)
            } else {
                report::render_text(&findings)
            };
            print!("{rendered}");
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("analyzer: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
