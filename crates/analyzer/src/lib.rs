//! `analyzer` — a self-contained static-analysis pass for this workspace.
//!
//! The build environment is fully offline, so this is a from-scratch source
//! scanner (no syn, no rustc plumbing): a comment/string-aware lexer
//! ([`lexer`]), a lightweight item scanner ([`parse`]), and a rule engine
//! ([`rules`]) enforcing the invariants PR 1 introduced by convention:
//!
//! * decode paths must not panic (`no-panic`),
//! * unsafe must be documented and unsafe-free crates must say so
//!   (`undocumented-unsafe`),
//! * public decode entry points need fallible twins (`fallible-pairing`),
//! * wire-format tag constants must be kept in sync between serialize and
//!   deserialize paths (`wire-tag-sync`),
//! * every `ColumnCodec` implementation appears exactly once in the codec
//!   registry's literal `ENTRIES` list, and every entry names a live impl
//!   (`registry-sync`),
//! * `catch_unwind` is only legal inside the parallel scheduler's panic
//!   containment seam (`contained-unwind`).
//!
//! Run it as `cargo run -p analyzer` or `alp analyze`; findings are reported
//! as `file:line: [rule] message`, or as JSON with `--format json`, and the
//! process exits non-zero when anything is found. Individual findings are
//! suppressed with `// ANALYZER-ALLOW(rule): reason` annotations (see
//! DESIGN.md §8 for the grammar and scoping).

#![forbid(unsafe_code)]

mod concurrency;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see [`rules::RULE_IDS`] plus `allow-syntax`).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: &str, file: &str, line: usize, message: &str) -> Self {
        Self { rule: rule.to_string(), file: file.to_string(), line, message: message.to_string() }
    }
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Scope configuration for the rules. [`Config::default`] encodes this
/// workspace's layout; tests construct narrower ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose decode-shaped functions fall under `no-panic`.
    pub decode_crates: Vec<String>,
    /// Files whose *every* function falls under `no-panic`.
    pub decode_files: Vec<String>,
    /// Function-name patterns (prefix or `_`-separated) marking decode paths.
    pub decode_name_patterns: Vec<String>,
    /// Files (or `dir/*` globs) under the `fallible-pairing` rule.
    pub pairing_files: Vec<String>,
    /// Files holding wire-format tag constants, checked by `wire-tag-sync`.
    pub wire_files: Vec<String>,
    /// Function-name patterns classifying a function as a serializer.
    pub writer_fn_patterns: Vec<String>,
    /// Function-name patterns classifying a function as a deserializer.
    pub reader_fn_patterns: Vec<String>,
    /// Crates exempt from the `#![forbid(unsafe_code)]` requirement.
    pub unsafe_allowed_crates: Vec<String>,
    /// The only files allowed to `catch_unwind` (the scheduler's panic
    /// containment seam), checked by `contained-unwind`.
    pub unwind_allowed_files: Vec<String>,
    /// The file holding the codec registry's `static ENTRIES` block, checked
    /// by `registry-sync`.
    pub registry_file: String,
    /// The trait whose implementations must each appear in `ENTRIES`.
    pub codec_trait: String,
    /// Atomic field names that gate *data visibility* across threads (a flag
    /// whose observation implies some payload was written). `Relaxed` on them
    /// is an `atomic-ordering` finding; counters stay Relaxed by not being
    /// listed.
    pub ordering_gate_fields: Vec<String>,
    /// Call-name prefixes too expensive to run while holding a lock guard
    /// (`guard-across-call`): page decompression, the parallel scheduler,
    /// retrying I/O.
    pub guard_expensive_patterns: Vec<String>,
    /// Squeezed-text patterns that count as consulting cancellation inside a
    /// morsel-claim loop (`cancel-poll`).
    pub cancel_poll_patterns: Vec<String>,
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

impl Default for Config {
    fn default() -> Self {
        Self {
            decode_crates: strings(&["alp", "codecs", "fastlanes", "bitstream", "gpzip"]),
            decode_files: strings(&[
                "crates/alp/src/decode.rs",
                "crates/alp/src/wire.rs",
                "crates/bitstream/src/reader.rs",
            ]),
            decode_name_patterns: strings(&[
                "decompress",
                "decode",
                "unpack",
                "from_bytes",
                "read",
                "salvage",
                "next_",
                "get_u",
                "get_i",
                "refill",
                "advance",
                "untranspose",
                // Self-healing paths (DESIGN.md §16): parity reconstruction
                // and the scrubber run on damaged or quarantined input, the
                // least trustworthy bytes in the system.
                "repair",
                "scrub",
            ]),
            pairing_files: strings(&[
                "crates/codecs/src/*",
                "crates/gpzip/src/*",
                "crates/alp/src/format.rs",
                "crates/alp/src/stream.rs",
                // Parity reconstruction decodes damaged frames; its decode
                // entry points need fallible twins like any other reader.
                "crates/alp/src/parity.rs",
                // The query service decodes untrusted-by-policy pages: its
                // public decompress entry points need fallible twins too.
                // (`crates/vectorq/src/scrub.rs` rides this glob.)
                "crates/vectorq/src/*",
            ]),
            wire_files: strings(&["crates/alp/src/format.rs", "crates/alp/src/stream.rs"]),
            writer_fn_patterns: strings(&[
                "to_bytes",
                "write",
                "finish",
                "ensure_header",
                "flush",
                "push",
                "serialize",
            ]),
            reader_fn_patterns: strings(&[
                "from_bytes",
                "read",
                "open",
                "parse",
                "next",
                "salvage",
                "deserialize",
                "new",
            ]),
            // `bench` reads the x86 time-stamp counter directly.
            unsafe_allowed_crates: strings(&["bench"]),
            // `alp::par` hosts the one containment module (DESIGN.md §11).
            unwind_allowed_files: strings(&["crates/alp/src/par.rs"]),
            registry_file: "crates/core/src/registry.rs".to_string(),
            codec_trait: "ColumnCodec".to_string(),
            // `quarantined` publishes a page verdict whose `LossReason` must
            // be visible to whoever observes the flag (DESIGN.md §13).
            ordering_gate_fields: strings(&["quarantined"]),
            guard_expensive_patterns: strings(&[
                "try_decompress",
                "try_compress",
                "par_compress",
                "par_decompress",
                "run_morsels",
                "map_morsels",
                "fold_morsels",
                "read_full_retry",
                "write_all_retry",
                "flush_retry",
            ]),
            cancel_poll_patterns: strings(&[
                "is_cancelled(",
                "cancelled.load(",
                "stop.load(",
                "stop_flag.load(",
            ]),
        }
    }
}

/// Analyzes in-memory sources. `files` pairs a workspace-relative path (used
/// for scoping decisions) with the file's contents.
pub fn analyze_sources(files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let scanned: BTreeMap<String, parse::FileInfo> =
        files.iter().map(|(p, src)| (p.clone(), parse::scan_source(src))).collect();
    rules::run_all(&scanned, cfg)
}

/// Walks a workspace root, reads every eligible `.rs` file, and runs all
/// rules with the default [`Config`].
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_workspace_sources(root)?;
    Ok(analyze_sources(&files, &Config::default()))
}

/// Directory names never descended into. Integration tests, benches, and
/// examples exercise APIs from the outside and may panic freely; `fixtures`
/// holds the analyzer's own known-bad inputs.
const SKIP_DIRS: &[&str] =
    &["target", ".git", "tests", "benches", "examples", "fixtures", ".github"];

/// Collects the workspace's lintable sources as (relative path, contents).
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["src", "crates", "shims"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().to_string())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` looking for a
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
