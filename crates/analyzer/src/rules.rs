//! The four project-specific rules, plus the `ANALYZER-ALLOW` annotation
//! machinery that suppresses individual findings with a recorded reason.
//!
//! Rule ids (used in reports and in `ANALYZER-ALLOW(<rule>)` annotations):
//!
//! * `no-panic` — panicking idioms (`unwrap`, `expect`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`), slice indexing, and
//!   narrowing `as` casts are forbidden in decode-path functions.
//! * `undocumented-unsafe` — every `unsafe` needs a `// SAFETY:` comment, and
//!   unsafe-free crates must declare `#![forbid(unsafe_code)]`.
//! * `fallible-pairing` — public `decompress*` / `from_bytes*` /
//!   `scan_fused*` functions in the codec and format layers must return
//!   `Result` or have a `try_` twin.
//! * `wire-tag-sync` — magic/tag constants in the wire-format files must be
//!   used by both a serialize and a deserialize function, with no orphan or
//!   duplicate tags.
//! * `registry-sync` — every `ColumnCodec` impl must appear exactly once in
//!   the codec registry's literal `ENTRIES` list, and every entry must name
//!   a live impl. Additionally, a codec claiming `fused_scan: true` in its
//!   capabilities must override `try_scan_fused` (and vice versa): the flag
//!   and the kernel drift independently otherwise.
//! * `contained-unwind` — `catch_unwind` is only legal inside the parallel
//!   scheduler's containment seam (`alp::par`); swallowing panics anywhere
//!   else hides poisoned state instead of quarantining it.
//! * `atomic-rmw` — a `.load(..)` whose result feeds a `.store(..)` on the
//!   same atomic is a lost-update race; use `fetch_*`/`fetch_update`.
//! * `atomic-ordering` — `Ordering::Relaxed` on configured data-visibility
//!   gate fields (e.g. `quarantined`) needs Acquire/Release instead.
//! * `condvar-discipline` — `Condvar::wait` must sit in a re-checking loop
//!   and must not unwrap the poison result.
//! * `guard-across-call` — a lock guard's live range may not span a call
//!   into the configured expensive-function list.
//! * `cancel-poll` — loops claiming scheduler morsels must consult a
//!   `CancelToken`/stop flag each iteration.
//! * `allow-syntax` — malformed or unknown-rule `ANALYZER-ALLOW` annotations
//!   (a typo in an annotation must not silently disable a lint).
//!
//! `no-panic` additionally runs in *reachability* mode: the workspace call
//! graph ([`crate::graph`]) is walked from every `try_*` entry point, and
//! explicit panics in any reached function are findings even outside the
//! textual decode scope.

use std::collections::BTreeMap;

use crate::parse::{FileInfo, FnItem};
use crate::{Config, Finding};

/// All valid rule ids, as used in `ANALYZER-ALLOW(<rule>)`.
pub const RULE_IDS: &[&str] = &[
    "no-panic",
    "undocumented-unsafe",
    "fallible-pairing",
    "wire-tag-sync",
    "registry-sync",
    "contained-unwind",
    "atomic-rmw",
    "atomic-ordering",
    "condvar-discipline",
    "guard-across-call",
    "cancel-poll",
];

/// A parsed `ANALYZER-ALLOW(rule): reason` annotation and the lines it covers.
#[derive(Debug)]
struct Allow {
    rule: String,
    /// Inclusive 1-based line range the annotation suppresses.
    span: (usize, usize),
}

/// Runs every rule over the scanned files. `files` maps workspace-relative
/// paths (forward slashes) to their scanned contents.
pub fn run_all(files: &BTreeMap<String, FileInfo>, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut allows: BTreeMap<&str, Vec<Allow>> = BTreeMap::new();
    for (path, info) in files {
        let (file_allows, mut bad) = collect_allows(path, info);
        findings.append(&mut bad);
        allows.insert(path, file_allows);
    }

    for (path, info) in files {
        no_panic(path, info, cfg, &mut findings);
        undocumented_unsafe(path, info, &mut findings);
        fallible_pairing(path, info, cfg, &mut findings);
        contained_unwind(path, info, cfg, &mut findings);
    }
    forbid_unsafe_crates(files, cfg, &mut findings);
    wire_tag_sync(files, cfg, &mut findings);
    registry_sync(files, cfg, &mut findings);
    crate::concurrency::run(files, cfg, &mut findings);
    no_panic_reachable(files, cfg, &mut findings);

    findings.retain(|f| {
        !allows
            .get(f.file.as_str())
            .map(|a| {
                a.iter().any(|al| al.rule == f.rule && al.span.0 <= f.line && f.line <= al.span.1)
            })
            .unwrap_or(false)
    });
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    // Several identical hits on one line (e.g. `out[i] = x[i]`) read as noise;
    // one finding per (location, message) is enough to fail the build.
    findings.dedup();
    findings
}

/// Parses the `ANALYZER-ALLOW` annotations in one file.
///
/// Scope: a trailing annotation covers its own line; an annotation on its own
/// comment line covers the next code line — or, when that line opens a `fn`
/// item, the whole item (for hot kernels whose every line would otherwise
/// need one). Malformed annotations are findings, never silent.
fn collect_allows(path: &str, info: &FileInfo) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, l) in info.lines.iter().enumerate() {
        let line = idx + 1;
        // An annotation must *start* its comment (after the `//`/`/*` markers)
        // so that prose merely mentioning the grammar, like this sentence's
        // `ANALYZER-ALLOW(rule): reason`, is not parsed as one.
        let stripped = l.comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let mut first = true;
        let mut rest = stripped;
        while let Some(pos) = rest.find("ANALYZER-ALLOW") {
            if first && pos != 0 {
                break;
            }
            first = false;
            rest = &rest[pos + "ANALYZER-ALLOW".len()..];
            let (rule, reason) = match parse_allow_tail(rest) {
                Some(rr) => rr,
                None => {
                    bad.push(Finding::new(
                        "allow-syntax",
                        path,
                        line,
                        "malformed ANALYZER-ALLOW: expected `ANALYZER-ALLOW(rule): reason`",
                    ));
                    continue;
                }
            };
            if !RULE_IDS.contains(&rule.as_str()) {
                bad.push(Finding::new(
                    "allow-syntax",
                    path,
                    line,
                    &format!("ANALYZER-ALLOW names unknown rule `{rule}`"),
                ));
                continue;
            }
            if reason.trim().is_empty() {
                bad.push(Finding::new(
                    "allow-syntax",
                    path,
                    line,
                    &format!("ANALYZER-ALLOW({rule}) has no reason"),
                ));
                continue;
            }
            let span = allow_span(info, line, !l.code.trim().is_empty());
            allows.push(Allow { rule, span });
        }
    }
    (allows, bad)
}

/// Parses `(rule): reason` from the text following `ANALYZER-ALLOW`.
fn parse_allow_tail(rest: &str) -> Option<(String, String)> {
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].strip_prefix(':')?;
    Some((rule, after.to_string()))
}

/// Computes which lines an annotation at `line` covers.
fn allow_span(info: &FileInfo, line: usize, trailing: bool) -> (usize, usize) {
    if trailing {
        return (line, line);
    }
    // Own-line annotation: find the next line with real code, skipping blank,
    // comment-only, and attribute-only lines.
    let mut target = line + 1;
    while target <= info.lines.len() {
        let code = info.lines[target - 1].code.trim();
        if code.is_empty() || code.starts_with('#') {
            target += 1;
            continue;
        }
        break;
    }
    // Covering a whole `fn` item when the annotation sits on its header.
    for f in &info.fns {
        if f.start_line == target {
            return (f.start_line, f.end_line);
        }
    }
    (target, target)
}

// ---------------------------------------------------------------------------
// Rule: no-panic
// ---------------------------------------------------------------------------

/// True when `name` matches a decode-path name pattern (`unpack`,
/// `ffor_unpack`, … — prefix or `_`-separated occurrence).
fn matches_decode_name(name: &str, patterns: &[String]) -> bool {
    patterns.iter().any(|p| name.starts_with(p.as_str()) || name.contains(&format!("_{p}")))
}

/// Decides whether a function is in the no-panic scope.
fn in_no_panic_scope(path: &str, f: &FnItem, cfg: &Config) -> bool {
    if f.in_test {
        return false;
    }
    if f.name.starts_with("try_") {
        return true;
    }
    if cfg.decode_files.iter().any(|df| df == path) {
        return true;
    }
    let crate_name = crate_of(path);
    cfg.decode_crates.iter().any(|c| c == &crate_name)
        && matches_decode_name(&f.name, &cfg.decode_name_patterns)
}

fn no_panic(path: &str, info: &FileInfo, cfg: &Config, findings: &mut Vec<Finding>) {
    for f in &info.fns {
        if !in_no_panic_scope(path, f, cfg) {
            continue;
        }
        for line_no in f.start_line..=f.end_line {
            let code = &info.lines[line_no - 1].code;
            for (what, msg) in scan_panic_patterns(code) {
                findings.push(Finding::new(
                    "no-panic",
                    path,
                    line_no,
                    &format!("{msg} in decode-path fn `{}` ({what})", f.name),
                ));
            }
        }
    }
}

/// Scans one code line for panicking idioms. Returns (pattern, description).
fn scan_panic_patterns(code: &str) -> Vec<(&'static str, &'static str)> {
    let mut out = Vec::new();
    let chars: Vec<char> = code.chars().collect();

    for (method, label) in [(".unwrap(", "`.unwrap()`"), (".expect(", "`.expect()`")] {
        let bare = &method[1..method.len() - 1]; // method name without . and (
        let mut from = 0;
        while let Some(pos) = code[from..].find(bare) {
            let at = from + pos;
            let before_ok = code[..at].trim_end().ends_with('.');
            let word_start = at == 0
                || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && code.as_bytes()[at - 1] != b'_';
            let after = code[at + bare.len()..].trim_start();
            if before_ok && word_start && after.starts_with('(') {
                out.push((label, "may panic"));
            }
            from = at + bare.len();
        }
    }

    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(mac) {
            let at = from + pos;
            let before = if at == 0 { None } else { code.as_bytes().get(at - 1) };
            let boundary = before.map(|b| !b.is_ascii_alphanumeric() && *b != b'_').unwrap_or(true);
            let after = &code[at + mac.len()..];
            if boundary && after.trim_start().starts_with('!') {
                out.push(("macro", "panicking macro"));
            }
            from = at + mac.len();
        }
    }

    // Slice/array indexing: `[` immediately preceded (modulo spaces) by an
    // identifier, `)`, or `]` — but not when the "identifier" is a keyword or
    // a lifetime, which makes the bracket a slice *type* (`&mut [F]`,
    // `&'a [u8]`), not an index expression.
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let p = chars[j - 1];
        if p == ')' || p == ']' {
            out.push(("indexing", "unguarded slice indexing"));
            continue;
        }
        if p.is_alphanumeric() || p == '_' {
            let mut start = j;
            while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
                start -= 1;
            }
            let ident: String = chars[start..j].iter().collect();
            let keyword = matches!(
                ident.as_str(),
                "mut" | "dyn" | "in" | "return" | "break" | "else" | "match" | "const" | "static"
            );
            let lifetime = start > 0 && chars[start - 1] == '\'';
            if !keyword && !lifetime {
                out.push(("indexing", "unguarded slice indexing"));
            }
        }
    }

    // Narrowing `as` casts.
    let toks: Vec<&str> = code
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect();
    for w in toks.windows(2) {
        if w[0] == "as" && matches!(w[1], "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
            out.push(("as-cast", "narrowing `as` cast"));
        }
    }
    out
}

/// Reachability upgrade of `no-panic`: no *explicit* panic may be reachable
/// from any non-test `try_*` entry point through the workspace call graph.
///
/// The textual scope ([`in_no_panic_scope`]) stays the strict tier — panic
/// idioms, unguarded indexing, narrowing casts — because those functions
/// parse untrusted bytes. Functions pulled in only by reachability are
/// internal helpers running on trusted data: for them, unguarded indexing
/// against a fixed kernel geometry is fine, but an `unwrap`/`expect`/`panic!`
/// is a promise that a `try_` caller can be made to break, so only the
/// explicit-panic idioms are findings. The graph over-approximates (methods
/// resolve by name workspace-wide), so every finding names its witness path
/// for a human to judge — and an `ANALYZER-ALLOW(no-panic)` at the panic site
/// covers all paths to it.
fn no_panic_reachable(
    files: &BTreeMap<String, FileInfo>,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    let g = crate::graph::build(files);
    let roots: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.in_test && n.name.starts_with("try_"))
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = g.reachable(&roots);
    for (&id, _) in parent.iter() {
        let node = &g.nodes[id];
        if node.in_test {
            continue;
        }
        let info = &files[&node.file];
        let Some(item) =
            info.fns.iter().find(|f| f.name == node.name && f.start_line == node.start_line)
        else {
            continue;
        };
        // The strict textual tier already scans these (including indexing and
        // casts); re-reporting the explicit subset would double up.
        if in_no_panic_scope(&node.file, item, cfg) {
            continue;
        }
        let witness = g.witness(&parent, id);
        let via = if witness.len() > 1 {
            format!(" (via {})", witness.join(" → "))
        } else {
            String::new() // the root itself (a try_ fn outside the textual scope)
        };
        for line_no in item.start_line..=item.end_line.min(info.lines.len()) {
            let code = &info.lines[line_no - 1].code;
            for (what, msg) in scan_panic_patterns(code) {
                if !matches!(what, "`.unwrap()`" | "`.expect()`" | "macro") {
                    continue;
                }
                findings.push(Finding::new(
                    "no-panic",
                    &node.file,
                    line_no,
                    &format!(
                        "{msg} in `{}`, reachable from a `try_` entry point{via} ({what})",
                        node.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: undocumented-unsafe
// ---------------------------------------------------------------------------

fn undocumented_unsafe(path: &str, info: &FileInfo, findings: &mut Vec<Finding>) {
    for site in &info.unsafe_sites {
        if site.in_test {
            continue;
        }
        if !has_safety_comment(info, site.line) {
            findings.push(Finding::new(
                "undocumented-unsafe",
                path,
                site.line,
                "`unsafe` without a `// SAFETY:` comment",
            ));
        }
    }
}

/// Looks for `SAFETY:` on the unsafe line itself or in the contiguous
/// comment/attribute block above it.
fn has_safety_comment(info: &FileInfo, line: usize) -> bool {
    if info.lines[line - 1].comment.contains("SAFETY:") {
        return true;
    }
    let mut up = line - 1;
    while up >= 1 {
        let l = &info.lines[up - 1];
        let code = l.code.trim();
        if code.is_empty() || code.starts_with('#') {
            if l.comment.contains("SAFETY:") {
                return true;
            }
            up -= 1;
            continue;
        }
        break;
    }
    false
}

/// Crates with zero `unsafe` anywhere must say so with `#![forbid(unsafe_code)]`.
fn forbid_unsafe_crates(
    files: &BTreeMap<String, FileInfo>,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    let mut crates: BTreeMap<String, (bool, Option<&str>, bool)> = BTreeMap::new();
    for (path, info) in files {
        let name = crate_of(path);
        let entry = crates.entry(name).or_insert((false, None, false));
        entry.0 |= !info.unsafe_sites.is_empty();
        if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") {
            entry.1 = Some(path);
            entry.2 = info.has_forbid_unsafe;
        }
    }
    for (name, (has_unsafe, root, has_forbid)) in crates {
        if cfg.unsafe_allowed_crates.iter().any(|c| c == &name) {
            continue;
        }
        if let Some(root) = root {
            if !has_unsafe && !has_forbid {
                findings.push(Finding::new(
                    "undocumented-unsafe",
                    root,
                    1,
                    &format!("crate `{name}` has no unsafe code but does not declare #![forbid(unsafe_code)]"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: fallible-pairing
// ---------------------------------------------------------------------------

fn fallible_pairing(path: &str, info: &FileInfo, cfg: &Config, findings: &mut Vec<Finding>) {
    let in_scope = cfg.pairing_files.iter().any(|p| {
        if let Some(dir) = p.strip_suffix("/*") {
            path.starts_with(dir)
        } else {
            p == path
        }
    });
    if !in_scope {
        return;
    }
    for f in &info.fns {
        if f.in_test || !f.module_level || !f.is_pub {
            continue;
        }
        let decode_entry = f.name.starts_with("decompress")
            || f.name.starts_with("from_bytes")
            || f.name.starts_with("scan_fused");
        if !decode_entry || f.ret.contains("Result") {
            continue;
        }
        let twin = format!("try_{}", f.name);
        match info.fns.iter().find(|g| g.name == twin && g.module_level && !g.in_test) {
            Some(t) if t.ret.contains("Result") => {}
            Some(t) => findings.push(Finding::new(
                "fallible-pairing",
                path,
                t.start_line,
                &format!("`{twin}` exists but does not return Result"),
            )),
            None => findings.push(Finding::new(
                "fallible-pairing",
                path,
                f.start_line,
                &format!(
                    "public decode entry point `{}` has no fallible `{twin}` twin returning Result",
                    f.name
                ),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: wire-tag-sync
// ---------------------------------------------------------------------------

fn wire_tag_sync(files: &BTreeMap<String, FileInfo>, cfg: &Config, findings: &mut Vec<Finding>) {
    // Collect tag constants from the wire files.
    struct Tag<'a> {
        name: &'a str,
        file: &'a str,
        line: usize,
        raw_value: String,
    }
    let mut tags: Vec<Tag> = Vec::new();
    for wf in &cfg.wire_files {
        let Some(info) = files.get(wf) else { continue };
        for c in &info.consts {
            if c.in_test {
                continue;
            }
            let named_tag = ["MAGIC", "TAG", "SCHEME"].iter().any(|k| c.name.contains(k));
            let byte_string = c.value.contains("b \"");
            if named_tag || byte_string {
                // Literal value from the raw source (the lexer blanks string
                // contents), for duplicate detection.
                let raw = info
                    .raw_lines
                    .get(c.line - 1)
                    .and_then(|l| l.split('=').nth(1))
                    .map(|v| v.trim().trim_end_matches(';').trim().to_string())
                    .unwrap_or_default();
                tags.push(Tag { name: &c.name, file: wf, line: c.line, raw_value: raw });
            }
        }
    }

    // Duplicate values.
    for (i, t) in tags.iter().enumerate() {
        if !t.raw_value.is_empty() {
            if let Some(prev) = tags[..i].iter().find(|p| p.raw_value == t.raw_value) {
                findings.push(Finding::new(
                    "wire-tag-sync",
                    t.file,
                    t.line,
                    &format!(
                        "tag `{}` duplicates the value of `{}` ({})",
                        t.name, prev.name, t.raw_value
                    ),
                ));
            }
        }
    }

    // Reference sites: which functions (across all wire files) mention each tag.
    for t in &tags {
        let mut written = false;
        let mut read = false;
        let mut referenced = false;
        for wf in &cfg.wire_files {
            let Some(info) = files.get(wf) else { continue };
            for f in &info.fns {
                if f.in_test {
                    continue;
                }
                let mentions = (f.start_line..=f.end_line)
                    .any(|ln| ln != t.line && word_in(&info.lines[ln - 1].code, t.name));
                if !mentions {
                    continue;
                }
                referenced = true;
                if cfg.writer_fn_patterns.iter().any(|p| f.name.contains(p.as_str())) {
                    written = true;
                }
                if cfg.reader_fn_patterns.iter().any(|p| f.name.contains(p.as_str())) {
                    read = true;
                }
            }
        }
        if !referenced {
            findings.push(Finding::new(
                "wire-tag-sync",
                t.file,
                t.line,
                &format!("tag `{}` is defined but never used (orphan)", t.name),
            ));
        } else {
            if !written {
                findings.push(Finding::new(
                    "wire-tag-sync",
                    t.file,
                    t.line,
                    &format!("tag `{}` is never emitted by a serialize function", t.name),
                ));
            }
            if !read {
                findings.push(Finding::new(
                    "wire-tag-sync",
                    t.file,
                    t.line,
                    &format!("tag `{}` is never checked by a deserialize function", t.name),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: contained-unwind
// ---------------------------------------------------------------------------

/// `catch_unwind` is only legal in the scheduler's containment seam
/// ([`Config::unwind_allowed_files`]): that module re-initializes worker
/// scratch after a caught panic and either re-raises with context or reports
/// a quarantined morsel. A `catch_unwind` anywhere else swallows a panic
/// while leaving possibly-torn state live. Test functions are exempt — they
/// catch panics to assert on them.
fn contained_unwind(path: &str, info: &FileInfo, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.unwind_allowed_files.iter().any(|f| f == path) {
        return;
    }
    for (idx, l) in info.lines.iter().enumerate() {
        let line = idx + 1;
        if !word_in(&l.code, "catch_unwind") {
            continue;
        }
        let in_test =
            info.fns.iter().any(|f| f.in_test && f.start_line <= line && line <= f.end_line);
        if in_test {
            continue;
        }
        findings.push(Finding::new(
            "contained-unwind",
            path,
            line,
            "`catch_unwind` outside the scheduler's containment module — \
             route panic containment through `alp::par` (run_morsels_contained)",
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule: registry-sync
// ---------------------------------------------------------------------------

/// Every `impl ColumnCodec for X` in the workspace must appear exactly once
/// as a `&path::X,` entry inside the registry's `static ENTRIES` block, and
/// every entry must name a live impl. The check is purely textual by design:
/// it is what forces the registry to stay a literal one-entry-per-line list
/// (no macros, no computed entries) that a reviewer can read at a glance.
fn registry_sync(files: &BTreeMap<String, FileInfo>, cfg: &Config, findings: &mut Vec<Finding>) {
    let Some(reg) = files.get(&cfg.registry_file) else {
        return; // narrow test configs that do not include the registry
    };

    // Entries: the identifiers listed inside the `static ENTRIES` block,
    // one `&path::Name,` literal per line.
    let mut entries: Vec<(String, usize)> = Vec::new();
    let mut inside = false;
    for (idx, l) in reg.lines.iter().enumerate() {
        let code = l.code.trim();
        if !inside {
            inside = code.contains("static ENTRIES");
            continue;
        }
        if code.contains("];") {
            break;
        }
        let Some(entry) = code.strip_prefix('&') else { continue };
        let entry = entry.trim_end_matches(',').trim();
        let name = entry.rsplit("::").next().unwrap_or(entry).trim();
        if !name.is_empty() {
            entries.push((name.to_string(), idx + 1));
        }
    }

    // Impls: `impl <Trait> for X` anywhere in the scanned workspace.
    let mut impls: Vec<(String, &str, usize)> = Vec::new();
    for (path, info) in files {
        for (idx, l) in info.lines.iter().enumerate() {
            let name = (|| {
                let rest = l.code.trim().strip_prefix("impl")?.trim_start();
                let rest = rest.strip_prefix(cfg.codec_trait.as_str())?.trim_start();
                let rest = rest.strip_prefix("for")?.trim_start();
                let name: String =
                    rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                (!name.is_empty()).then_some(name)
            })();
            if let Some(name) = name {
                impls.push((name, path, idx + 1));
            }
        }
    }

    // Fused-scan capability sync: within each impl block (brace-matched from
    // the `impl` line), `fused_scan: true` in caps and a `try_scan_fused`
    // override must appear together. A claim without a kernel silently routes
    // capability-checking callers through the default materialize-then-scan
    // body; a kernel without the claim is dead code no caller ever reaches.
    for (name, path, line) in &impls {
        let Some(info) = files.get(*path) else { continue };
        let mut depth = 0usize;
        let mut opened = false;
        let mut claim_line = None;
        let mut kernel_line = None;
        for (idx, l) in info.lines.iter().enumerate().skip(line - 1) {
            for b in l.code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            let squeezed: String = l.code.split_whitespace().collect();
            if claim_line.is_none() && squeezed.contains("fused_scan:true") {
                claim_line = Some(idx + 1);
            }
            if kernel_line.is_none() && l.code.contains("fn try_scan_fused") {
                kernel_line = Some(idx + 1);
            }
            if opened && depth == 0 {
                break;
            }
        }
        match (claim_line, kernel_line) {
            (Some(cl), None) => findings.push(Finding::new(
                "registry-sync",
                path,
                cl,
                &format!(
                    "`{name}` claims `fused_scan: true` but its impl has no `try_scan_fused` \
                     override — the flag would silently fall back to materialize-then-scan"
                ),
            )),
            (None, Some(kl)) => findings.push(Finding::new(
                "registry-sync",
                path,
                kl,
                &format!(
                    "`{name}` overrides `try_scan_fused` without claiming `fused_scan: true` \
                     in its caps — capability-checking callers will never reach the kernel"
                ),
            )),
            _ => {}
        }
    }

    for (name, path, line) in &impls {
        if !entries.iter().any(|(e, _)| e == name) {
            findings.push(Finding::new(
                "registry-sync",
                path,
                *line,
                &format!(
                    "`{name}` implements {} but is not listed in the registry's ENTRIES",
                    cfg.codec_trait
                ),
            ));
        }
    }
    for (i, (name, line)) in entries.iter().enumerate() {
        if entries[..i].iter().any(|(prev, _)| prev == name) {
            findings.push(Finding::new(
                "registry-sync",
                &cfg.registry_file,
                *line,
                &format!("`{name}` is registered more than once in ENTRIES"),
            ));
        }
    }
    for (name, line) in &entries {
        if !impls.iter().any(|(n, _, _)| n == name) {
            findings.push(Finding::new(
                "registry-sync",
                &cfg.registry_file,
                *line,
                &format!(
                    "ENTRIES lists `{name}` but no `impl {} for {name}` exists",
                    cfg.codec_trait
                ),
            ));
        }
    }
}

/// Whole-word occurrence of `word` in a code line.
pub(crate) fn word_in(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !{
                let b = code.as_bytes()[at - 1];
                b.is_ascii_alphanumeric() || b == b'_'
            };
        let end = at + word.len();
        let after_ok = end >= code.len()
            || !{
                let b = code.as_bytes()[end];
                b.is_ascii_alphanumeric() || b == b'_'
            };
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Extracts the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or("").to_string(),
        Some("src") | Some("examples") | Some("tests") => "alp-repro".to_string(),
        other => other.unwrap_or("").to_string(),
    }
}
