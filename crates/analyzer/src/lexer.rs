//! A minimal Rust lexer that separates *code* from *comments and string
//! contents*, line by line.
//!
//! The rules downstream only need token-level facts (is this `unwrap` real
//! code or inside a doc comment? does this line carry a `SAFETY:` note?), so
//! the lexer does not build a token tree. It produces, per source line:
//!
//! * `code` — the line with comments removed and string/char literal
//!   *contents* blanked out (delimiters kept, so `"a[b]"` cannot be mistaken
//!   for an index expression);
//! * `comment` — the concatenated text of every comment on that line,
//!   including doc comments and the per-line slices of block comments.
//!
//! Handled syntax: line comments, nested block comments, string literals with
//! escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte strings
//! (`b"…"`, `br#"…"#`), char and byte-char literals, and lifetimes (`'a` is
//! code, not an unterminated char literal).

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments stripped and literal contents blanked.
    pub code: String,
    /// Comment text present on this line (empty if none).
    pub comment: String,
}

/// Lexes a whole file into per-line code/comment views.
pub fn split_lines(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = vec![Line::default()];
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;

    // Helpers that always append to the *last* line.
    fn code(lines: &mut [Line], c: char) {
        if let Some(l) = lines.last_mut() {
            l.code.push(c);
        }
    }
    fn comment(lines: &mut [Line], c: char) {
        if let Some(l) = lines.last_mut() {
            l.comment.push(c);
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        if c == '\n' {
            lines.push(Line::default());
            i += 1;
            continue;
        }

        // Line comment (also `///` and `//!` doc comments).
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                comment(&mut lines, chars[i]);
                i += 1;
            }
            continue;
        }

        // Block comment, possibly nested, possibly spanning lines.
        if c == '/' && next == Some('*') {
            let mut depth = 1;
            comment(&mut lines, '/');
            comment(&mut lines, '*');
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    lines.push(Line::default());
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    comment(&mut lines, '/');
                    comment(&mut lines, '*');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    comment(&mut lines, '*');
                    comment(&mut lines, '/');
                    i += 2;
                } else {
                    comment(&mut lines, chars[i]);
                    i += 1;
                }
            }
            continue;
        }

        // Raw / byte string prefixes. A quote adjacent to a bare `r`, `b`, or
        // `br` identifier begins a prefixed literal (no valid Rust program
        // puts any other identifier flush against a quote).
        if (c == 'r' || c == 'b') && !prev_is_ident(&lines) {
            let mut j = i;
            let mut prefix = String::new();
            while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && prefix.len() < 2 {
                prefix.push(chars[j]);
                j += 1;
            }
            let raw = prefix.ends_with('r');
            let mut hashes = 0;
            while raw && chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') && (prefix == "r" || prefix == "b" || prefix == "br") {
                for p in prefix.chars() {
                    code(&mut lines, p);
                }
                for _ in 0..hashes {
                    code(&mut lines, '#');
                }
                code(&mut lines, '"');
                i = j + 1;
                if raw {
                    i = consume_raw_string(&chars, i, hashes, &mut lines);
                } else {
                    i = consume_string(&chars, i, &mut lines);
                }
                continue;
            }
            if prefix == "b" && chars.get(j) == Some(&'\'') {
                code(&mut lines, 'b');
                code(&mut lines, '\'');
                i = consume_char_literal(&chars, j + 1, &mut lines);
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }

        if c == '"' {
            code(&mut lines, '"');
            i = consume_string(&chars, i + 1, &mut lines);
            continue;
        }

        // `'` begins either a char literal or a lifetime.
        if c == '\'' {
            let is_char_literal = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_literal {
                code(&mut lines, '\'');
                i = consume_char_literal(&chars, i + 1, &mut lines);
            } else {
                code(&mut lines, '\''); // lifetime tick stays as code
                i += 1;
            }
            continue;
        }

        code(&mut lines, c);
        i += 1;
    }
    lines
}

fn prev_is_ident(lines: &[Line]) -> bool {
    lines
        .last()
        .and_then(|l| l.code.chars().last())
        .map(|c| c.is_alphanumeric() || c == '_')
        .unwrap_or(false)
}

/// Consumes a normal (escaped) string body starting after the opening quote;
/// contents are blanked, the closing quote is kept as code.
fn consume_string(chars: &[char], mut i: usize, lines: &mut Vec<Line>) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(l) = lines.last_mut() {
                    l.code.push(' ');
                    l.code.push(' ');
                }
                i += 2;
            }
            '"' => {
                if let Some(l) = lines.last_mut() {
                    l.code.push('"');
                }
                return i + 1;
            }
            '\n' => {
                lines.push(Line::default());
                i += 1;
            }
            _ => {
                if let Some(l) = lines.last_mut() {
                    l.code.push(' ');
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a raw string body until `"` followed by `hashes` hash marks.
fn consume_raw_string(chars: &[char], mut i: usize, hashes: usize, lines: &mut Vec<Line>) -> usize {
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                if let Some(l) = lines.last_mut() {
                    l.code.push('"');
                    for _ in 0..hashes {
                        l.code.push('#');
                    }
                }
                return i + 1 + hashes;
            }
        }
        if chars[i] == '\n' {
            lines.push(Line::default());
        } else if let Some(l) = lines.last_mut() {
            l.code.push(' ');
        }
        i += 1;
    }
    i
}

/// Consumes a char (or byte-char) literal body starting after the opening tick.
fn consume_char_literal(chars: &[char], mut i: usize, lines: &mut [Line]) -> usize {
    if chars.get(i) == Some(&'\\') {
        i += 2; // skip the escape introducer and the escaped char
        if let Some(l) = lines.last_mut() {
            l.code.push(' ');
            l.code.push(' ');
        }
        // Multi-char escapes (\u{…}, \x41) run until the closing tick below.
    } else if i < chars.len() {
        if let Some(l) = lines.last_mut() {
            l.code.push(' ');
        }
        i += 1;
    }
    while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
        if let Some(l) = lines.last_mut() {
            l.code.push(' ');
        }
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        if let Some(l) = lines.last_mut() {
            l.code.push('\'');
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let lines = split_lines("let x = 1; // call unwrap() here\n/// doc unwrap()\nfn f() {}");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(!lines[1].code.contains("unwrap"));
        assert_eq!(lines[2].code, "fn f() {}");
    }

    #[test]
    fn blanks_string_contents_but_keeps_delimiters() {
        let lines = split_lines(r#"let s = "a.unwrap()[0]"; s.len();"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains('['));
        assert!(lines[0].code.contains('"'));
        assert!(lines[0].code.contains("s.len()"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let lines = split_lines("let m = b\"ALP2\"; let r = r#\"x \" y [i] \"#; r.len();");
        assert!(!lines[0].code.contains("ALP2"));
        assert!(!lines[0].code.contains("[i]"));
        assert!(lines[0].code.contains("r.len()"));
    }

    #[test]
    fn nested_block_comments_and_multiline_strings() {
        let src = "a /* x /* y */ z */ b\nlet s = \"line1\nline2\"; c";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.trim_start().chars().next(), Some('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains('x'));
        assert!(lines[2].code.contains('c'));
        assert!(!lines[1].code.contains("line1"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = split_lines("fn f<'a>(x: &'a [u8]) -> &'a [u8] { &x[1..] }");
        assert!(lines[0].code.contains("&x[1..]"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = split_lines("let c = '['; let d = '\\''; let e = x[0];");
        let code = &lines[0].code;
        assert_eq!(code.matches('[').count(), 1, "{code}");
        assert!(code.contains("x[0]"));
    }
}
