//! Brace-scoped data-flow facts for one function body.
//!
//! The concurrency rules need more than per-line token matches: a
//! `MutexGuard`'s *live range* spans from its `let` to the end of the
//! enclosing brace scope (or an explicit `drop`), an atomic load's result
//! *feeds* a store three statements later through intermediate bindings, and
//! a `Condvar::wait` is only disciplined when some *enclosing loop* re-checks
//! the predicate. This module rebuilds exactly that much structure from the
//! lexed code lines of a single [`FnItem`]:
//!
//! * **statements** — code joined across physical lines, split at top-level
//!   `;` and at `{`/`}` boundaries (a block header like `while cond` or
//!   `let x = if c` becomes its own statement, which is all the rules need);
//! * **bindings** — `let name = init` with the binding's scope-end line and
//!   any explicit `drop(name)` line; destructuring patterns (`let Some(x)`,
//!   `let (a, b)`) are conservatively skipped;
//! * **loops** — `loop`/`while`/`for` blocks with their header text and body
//!   span, innermost-last.
//!
//! Like the item scanner this is not a parser: it tracks depth over
//! comment-free, literal-blanked code and is kept honest by fixtures.

use crate::lexer::Line;
use crate::parse::FnItem;

/// One statement: its normalized code text and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Statement code with runs of whitespace collapsed to single spaces.
    pub text: String,
    /// 1-based line of the statement's first code token.
    pub line: usize,
}

/// A `let` binding and its live range.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name (simple identifier patterns only).
    pub name: String,
    /// Initializer text (the statement after `=`), whitespace-collapsed.
    pub init: String,
    /// 1-based line of the `let`.
    pub line: usize,
    /// 1-based line where the enclosing brace scope closes.
    pub scope_end: usize,
    /// 1-based line of an explicit `drop(name)` in the same function, if any.
    pub dropped_at: Option<usize>,
}

impl Binding {
    /// Last line on which the binding is considered live: its explicit
    /// `drop`, or the end of its scope.
    pub fn live_end(&self) -> usize {
        self.dropped_at.unwrap_or(self.scope_end)
    }
}

/// A `loop` / `while` / `for` block inside the function.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// Header text (everything between the previous boundary and the `{`),
    /// e.g. `while !stop . load ( Ordering :: Relaxed )`.
    pub head: String,
    /// 1-based line the header starts on.
    pub head_line: usize,
    /// 1-based line of the body's opening brace.
    pub body_start: usize,
    /// 1-based line of the matching close brace.
    pub body_end: usize,
}

impl LoopSpan {
    /// Whether 1-based `line` falls inside this loop (header or body).
    pub fn contains(&self, line: usize) -> bool {
        self.head_line <= line && line <= self.body_end
    }
}

/// Everything the rules need to know about one function body.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// `let` bindings with live ranges.
    pub bindings: Vec<Binding>,
    /// Loops, in close order (innermost loops first when nested).
    pub loops: Vec<LoopSpan>,
}

impl FnFlow {
    /// Loops whose span contains 1-based `line`.
    pub fn loops_containing(&self, line: usize) -> impl Iterator<Item = &LoopSpan> {
        self.loops.iter().filter(move |l| l.contains(line))
    }
}

/// Is `c` part of an identifier?
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Collapses whitespace runs to single spaces and trims.
fn squeeze(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Scans the body of `f` (using the whole file's lexed `lines`) into
/// statements, bindings, and loops.
pub fn scan_fn(lines: &[Line], f: &FnItem) -> FnFlow {
    let mut flow = FnFlow::default();
    // Open brace scopes: (open line, indices of bindings declared inside,
    // whether the block is a loop body).
    struct Scope {
        bindings: Vec<usize>,
        is_loop: bool,
        head: String,
        head_line: usize,
        open_line: usize,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    let mut group_depth = 0usize; // () and [] nesting

    let finish_stmt = |flow: &mut FnFlow, scopes: &mut [Scope], text: &str, line: usize| {
        let text = squeeze(text);
        if text.is_empty() {
            return;
        }
        if let Some(b) = parse_let(&text, line) {
            if let Some(scope) = scopes.last_mut() {
                scope.bindings.push(flow.bindings.len());
            }
            flow.bindings.push(b);
        }
        flow.stmts.push(Stmt { text, line });
    };

    let start = f.start_line.max(1);
    let end = f.end_line.min(lines.len());
    // Depth of scopes *outside* the function: braces before `body_start`'s
    // opening one belong to enclosing items and are not tracked.
    let mut entered = false;
    for line_no in start..=end {
        let code: &str = &lines[line_no - 1].code;
        for c in code.chars() {
            match c {
                '(' | '[' => {
                    group_depth += 1;
                    pending.push(c);
                }
                ')' | ']' => {
                    group_depth = group_depth.saturating_sub(1);
                    pending.push(c);
                }
                ';' if group_depth == 0 => {
                    finish_stmt(&mut flow, &mut scopes, &pending, pending_line);
                    pending.clear();
                }
                '{' => {
                    let head = squeeze(&pending);
                    let head_line = pending_line;
                    let is_loop = entered && is_loop_header(&head);
                    // The text before the first `{` is the fn signature, not
                    // a statement.
                    if entered {
                        finish_stmt(&mut flow, &mut scopes, &pending, pending_line);
                    }
                    pending.clear();
                    group_depth = 0;
                    scopes.push(Scope {
                        bindings: Vec::new(),
                        is_loop,
                        head,
                        head_line: if head_line == 0 { line_no } else { head_line },
                        open_line: line_no,
                    });
                    entered = true;
                }
                '}' => {
                    finish_stmt(&mut flow, &mut scopes, &pending, pending_line);
                    pending.clear();
                    group_depth = 0;
                    if let Some(scope) = scopes.pop() {
                        for bi in scope.bindings {
                            flow.bindings[bi].scope_end = line_no;
                        }
                        if scope.is_loop {
                            flow.loops.push(LoopSpan {
                                head: scope.head,
                                head_line: scope.head_line,
                                body_start: scope.open_line,
                                body_end: line_no,
                            });
                        }
                    }
                }
                _ => {
                    if pending.trim().is_empty() && !c.is_whitespace() {
                        pending_line = line_no;
                    }
                    pending.push(c);
                }
            }
        }
        pending.push('\n');
    }
    // Unclosed scopes (the fn's own end brace was consumed above, so this
    // only happens on truncated input): close them at the last line.
    while let Some(scope) = scopes.pop() {
        for bi in scope.bindings {
            flow.bindings[bi].scope_end = end;
        }
    }

    // Explicit drops: `drop ( name )`.
    for stmt in &flow.stmts {
        let sq: String = stmt.text.chars().filter(|c| !c.is_whitespace()).collect();
        if let Some(rest) = sq.strip_prefix("drop(") {
            if let Some(name) = rest.strip_suffix(')') {
                for b in flow.bindings.iter_mut() {
                    if b.name == name && b.line <= stmt.line && b.dropped_at.is_none() {
                        b.dropped_at = Some(stmt.line);
                    }
                }
            }
        }
    }
    flow
}

/// True when a block header opens a loop body (`loop`, `while`, `while let`,
/// `for`). The keyword may be anywhere in the header (`let x = loop` is rare
/// but legal); a word match avoids `forward`/`looped` identifiers.
fn is_loop_header(head: &str) -> bool {
    let mut toks = head.split(|c: char| !is_ident(c)).filter(|t| !t.is_empty());
    toks.any(|t| t == "loop" || t == "while" || t == "for")
}

/// Parses `let [mut] name = init` from a squeezed statement. Destructuring
/// patterns and `let`s without initializers produce no binding.
fn parse_let(text: &str, line: usize) -> Option<Binding> {
    let rest = text.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None; // `let Some(x)` / `let (a, b)` — pattern, not a binding
    }
    let after = rest[name.len()..].trim_start();
    // Skip a type ascription conservatively: find the first top-level `=`
    // (not `==`, `=>`, `<=`, `>=`, `!=`).
    let bytes = after.as_bytes();
    let mut i = 0;
    let mut eq = None;
    while i < bytes.len() {
        if bytes[i] == b'='
            && bytes.get(i + 1) != Some(&b'=')
            && bytes.get(i + 1) != Some(&b'>')
            && (i == 0 || !matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'!'))
        {
            eq = Some(i);
            break;
        }
        i += 1;
    }
    let init = match eq {
        Some(i) => after[i + 1..].trim().to_string(),
        None => return None, // `let x;` — no initializer to track
    };
    Some(Binding { name, init, line, scope_end: line, dropped_at: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::scan_source;

    fn flow_of(src: &str) -> FnFlow {
        let info = scan_source(src);
        assert!(!info.fns.is_empty(), "no fn found in test source");
        scan_fn(&info.lines, &info.fns[0])
    }

    #[test]
    fn bindings_get_scope_ends_and_drops() {
        let src = "fn f() {\n    let a = x.lock();\n    {\n        let b = y();\n    }\n    drop(a);\n    other();\n}\n";
        let flow = flow_of(src);
        let a = flow.bindings.iter().find(|b| b.name == "a").unwrap();
        let b = flow.bindings.iter().find(|b| b.name == "b").unwrap();
        assert_eq!(a.scope_end, 8);
        assert_eq!(a.dropped_at, Some(6));
        assert_eq!(a.live_end(), 6);
        assert_eq!(b.scope_end, 5);
        assert_eq!(b.dropped_at, None);
    }

    #[test]
    fn destructuring_lets_are_skipped() {
        let src = "fn f() {\n    let Some(m) = q.claim() else { return };\n    let (a, b) = pair();\n    let real = 1;\n}\n";
        let flow = flow_of(src);
        let names: Vec<&str> = flow.bindings.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn loops_record_head_and_body_span() {
        let src = "fn f() {\n    while !stop.load(O) {\n        let m = q.claim();\n    }\n    loop {\n        break;\n    }\n}\n";
        let flow = flow_of(src);
        assert_eq!(flow.loops.len(), 2);
        let w = flow.loops.iter().find(|l| l.head.contains("while")).unwrap();
        assert!(w.head.contains("stop.load"));
        assert_eq!((w.head_line, w.body_end), (2, 4));
        assert!(w.contains(3));
        assert!(!w.contains(6));
    }

    #[test]
    fn statements_split_on_semicolons_not_array_types() {
        let src = "fn f() {\n    let a: [u8; 4] = g();\n    h(a,\n      b);\n}\n";
        let flow = flow_of(src);
        let texts: Vec<&str> = flow.stmts.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts.len(), 2, "{texts:?}");
        assert!(texts[0].starts_with("let a"));
        assert!(texts[1].contains("h(a, b)"));
        assert_eq!(flow.stmts[1].line, 3);
    }

    #[test]
    fn block_headers_become_statements() {
        let src = "fn f(&self) {\n    let old = self.a.load(O);\n    let next = if old == 0 {\n        n\n    } else {\n        old / 8\n    };\n    self.a.store(next, O);\n}\n";
        let flow = flow_of(src);
        let next = flow.bindings.iter().find(|b| b.name == "next").unwrap();
        assert!(next.init.contains("if old == 0"), "{:?}", next.init);
        assert!(flow.stmts.iter().any(|s| s.text.contains("self.a.store(next")));
    }

    #[test]
    fn the_fn_signature_is_not_a_loop() {
        // `for` in a generic bound (`impl Fn() -> T`) or the word `for` in
        // the signature must not open a loop.
        let src = "fn wait_for(x: u8) {\n    if x > 0 {\n        y();\n    }\n}\n";
        let flow = flow_of(src);
        assert!(flow.loops.is_empty());
    }
}
