//! Rendering findings as text or machine-readable JSON.

use crate::Finding;

/// Plain-text report: one `file:line: [rule] message` per finding, plus a
/// summary line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("analyzer: no findings\n");
    } else {
        out.push_str(&format!("analyzer: {} finding(s)\n", findings.len()));
    }
    out
}

/// JSON report: `{"count": N, "findings": [{rule, file, line, message}…]}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-panic".into(),
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "`.unwrap()` in decode-path fn `try_x` (may panic)".into(),
        }]
    }

    #[test]
    fn text_format_has_location_and_rule() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/a.rs:7: [no-panic]"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"no-panic\\\"") || json.contains("\"rule\": \"no-panic\""));
        // Backtick-quoted message survives; embedded quotes are escaped.
        let tricky = vec![Finding {
            rule: "r".into(),
            file: "f\"q\".rs".into(),
            line: 1,
            message: "a\nb".into(),
        }];
        let j = render_json(&tricky);
        assert!(j.contains("f\\\"q\\\".rs"));
        assert!(j.contains("a\\nb"));
    }

    #[test]
    fn empty_report() {
        assert!(render_text(&[]).contains("no findings"));
        assert!(render_json(&[]).contains("\"count\": 0"));
    }
}
