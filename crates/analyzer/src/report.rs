//! Rendering findings as text or machine-readable JSON.

use crate::Finding;

/// Plain-text report: one `file:line: [rule] message` per finding, plus a
/// summary line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("analyzer: no findings\n");
    } else {
        out.push_str(&format!("analyzer: {} finding(s)\n", findings.len()));
    }
    out
}

/// Version of the JSON report shape. Bump when fields are added, renamed, or
/// removed so downstream consumers (the CI job, dashboards) can detect drift.
pub const SCHEMA_VERSION: u32 = 2;

/// JSON report:
/// `{"schema_version": V, "count": N, "rule_counts": {rule: N…},
///   "findings": [{rule, file, line, message}…]}`.
/// `rule_counts` lists every rule with at least one finding, sorted by rule
/// id, so CI logs show at a glance *which* discipline regressed.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    let mut rule_counts: std::collections::BTreeMap<&str, usize> =
        std::collections::BTreeMap::new();
    for f in findings {
        *rule_counts.entry(&f.rule).or_insert(0) += 1;
    }
    out.push_str("  \"rule_counts\": {");
    for (i, (rule, n)) in rule_counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {n}", json_string(rule)));
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-panic".into(),
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "`.unwrap()` in decode-path fn `try_x` (may panic)".into(),
        }]
    }

    #[test]
    fn text_format_has_location_and_rule() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/a.rs:7: [no-panic]"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_carries_schema_version_and_per_rule_counts() {
        let mut findings = sample();
        findings.push(Finding {
            rule: "atomic-rmw".into(),
            file: "crates/x/src/b.rs".into(),
            line: 3,
            message: "load/store race".into(),
        });
        findings.push(Finding {
            rule: "no-panic".into(),
            file: "crates/x/src/a.rs".into(),
            line: 9,
            message: "`.expect()`".into(),
        });
        let json = render_json(&findings);
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"rule_counts\": {\"atomic-rmw\": 1, \"no-panic\": 2}"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\\\"no-panic\\\"") || json.contains("\"rule\": \"no-panic\""));
        // Backtick-quoted message survives; embedded quotes are escaped.
        let tricky = vec![Finding {
            rule: "r".into(),
            file: "f\"q\".rs".into(),
            line: 1,
            message: "a\nb".into(),
        }];
        let j = render_json(&tricky);
        assert!(j.contains("f\\\"q\\\".rs"));
        assert!(j.contains("a\\nb"));
    }

    #[test]
    fn empty_report() {
        assert!(render_text(&[]).contains("no findings"));
        let json = render_json(&[]);
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"rule_counts\": {}"));
    }
}
