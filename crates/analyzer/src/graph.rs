//! Workspace function index and caller→callee call graph.
//!
//! Built on the same lexer/item-scanner as the per-file rules, this module
//! gives the analyzer a whole-workspace view: every `fn` becomes a node, and
//! each call site inside a body becomes one or more edges. Resolution is
//! deliberately **conservative in the over-approximating direction** — when a
//! name could refer to several functions (method calls, same-name functions
//! in sibling modules), edges go to *all* of them, so reachability-based
//! rules (`no-panic`) can miss nothing a cheap textual resolver could see.
//!
//! Resolution policy, in order:
//!
//! * **Method calls** `recv.f(…)` and associated calls `Type::f(…)` — edge to
//!   every non-module-level function named `f` anywhere in the workspace
//!   (dynamic dispatch and generic bounds make receiver types unknowable
//!   without real type inference).
//! * **Bare calls** `f(…)` — same-file module-level definitions win (local
//!   shadowing), then `use`-imported paths, then every module-level `f` in
//!   the same crate.
//! * **Qualified calls** `a::b::f(…)` — the head segment is mapped to a
//!   workspace crate (`crate`/`self`/`super` → the caller's own crate; the
//!   directory `crates/core` answers to both `core` and its lib name
//!   `alp_core`), candidates are module-level `f`s in that crate preferring
//!   files matching the module path, and `pub use` re-exports are followed
//!   (e.g. `alp_core::par::fold_morsels` resolves through
//!   `crates/core/src/par.rs`'s `pub use alp::par::{fold_morsels, …}` to the
//!   definition in `crates/alp/src/par.rs`).
//!
//! Calls into `std` or shim crates that are not part of the scanned file set
//! simply resolve to nothing. Macros (`name!(…)`), constructors
//! (uppercase-initial final segment: `Some(…)`, `Finding::new` is *not* one —
//! its final segment is lowercase), and keywords never become edges.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::parse::FileInfo;
use crate::rules::crate_of;

/// One function node in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Function name.
    pub name: String,
    /// 1-based span.
    pub start_line: usize,
    /// End of the body.
    pub end_line: usize,
    /// True for free functions (not inside `impl`/`match`/… blocks).
    pub module_level: bool,
    /// True inside `#[cfg(test)]` modules.
    pub in_test: bool,
    /// Crate key as returned by [`crate_of`] (directory name).
    pub krate: String,
}

/// A parsed call site (before resolution), exposed for tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Path segments, e.g. `["alp_core", "par", "fold_morsels"]`; a bare or
    /// method call has exactly one segment.
    pub segs: Vec<String>,
    /// True when the call site is `recv.f(…)`.
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// One `use` entry: local name → absolute-ish path segments. A glob import
/// (`use x::y::*`) is recorded under the name `*`.
#[derive(Debug, Clone)]
struct UseEntry {
    name: String,
    path: Vec<String>,
    is_pub: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All functions, in (file, source-order) order.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` = sorted, deduplicated callee node ids of node `i`.
    pub edges: Vec<Vec<usize>>,
}

impl Graph {
    /// Node ids matching a `file` suffix and exact name (tests convenience).
    pub fn find(&self, file: &str, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == name && n.file.ends_with(file))
            .map(|(i, _)| i)
            .collect()
    }

    /// Callee names of node `i`, sorted (tests convenience).
    pub fn callee_names(&self, i: usize) -> Vec<String> {
        let mut v: Vec<String> =
            self.edges[i].iter().map(|&j| self.nodes[j].name.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// BFS from `roots`. Returns a parent map: reached node → the node it was
    /// first reached from (roots map to themselves). Cycles are harmless —
    /// each node is visited once.
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reconstructs the witness path root → … → `target` from a
    /// [`Graph::reachable`] parent map, as function names.
    pub fn witness(&self, parent: &HashMap<usize, usize>, target: usize) -> Vec<String> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
            if path.len() > self.nodes.len() {
                break; // defensive: malformed parent map
            }
        }
        path.reverse();
        path.into_iter().map(|i| self.nodes[i].name.clone()).collect()
    }
}

/// Builds the call graph over the scanned workspace files.
pub fn build(files: &BTreeMap<String, FileInfo>) -> Graph {
    let mut g = Graph::default();

    // --- Node index -------------------------------------------------------
    // name → all non-module-level (method/assoc) defs; (crate, name) → all
    // module-level defs; (file, name) → module-level defs in that file.
    // Test-module functions become nodes (they have outgoing edges) but are
    // never resolution *targets*: real code cannot call into `mod tests`.
    let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut crate_fns: HashMap<(String, &str), Vec<usize>> = HashMap::new();
    let mut file_fns: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (path, info) in files {
        let krate = crate_of(path);
        for f in &info.fns {
            let id = g.nodes.len();
            g.nodes.push(FnNode {
                file: path.clone(),
                name: f.name.clone(),
                start_line: f.start_line,
                end_line: f.end_line,
                module_level: f.module_level,
                in_test: f.in_test,
                krate: krate.clone(),
            });
            if f.in_test {
                continue;
            }
            if f.module_level {
                crate_fns.entry((krate.clone(), &f.name)).or_default().push(id);
                file_fns.entry((path, &f.name)).or_default().push(id);
            } else {
                methods.entry(&f.name).or_default().push(id);
            }
        }
    }

    // Crate idents: a path head like `alp_core` must find `crates/core`.
    let mut crate_idents: HashMap<String, String> = HashMap::new();
    for k in files.keys().map(|p| crate_of(p)).collect::<BTreeSet<_>>() {
        crate_idents.insert(k.clone(), k.clone());
        crate_idents.insert(k.replace('-', "_"), k.clone());
        crate_idents.insert(format!("alp_{}", k.replace('-', "_")), k.clone());
    }

    // Per-file `use` entries, and per-crate `pub use` re-exports.
    let mut uses: HashMap<&str, Vec<UseEntry>> = HashMap::new();
    for (path, info) in files {
        uses.insert(path, parse_uses(info));
    }

    let index = Index { files, methods, crate_fns, file_fns, crate_idents, uses };

    // --- Edges ------------------------------------------------------------
    let node_meta: Vec<(String, String, usize, usize)> = g
        .nodes
        .iter()
        .map(|n| (n.file.clone(), n.krate.clone(), n.body_start_line(files), n.end_line))
        .collect();
    for (id, (file, krate, body_start, end)) in node_meta.iter().enumerate() {
        let info = &files[file];
        let mut callees: Vec<usize> = Vec::new();
        for line_no in *body_start..=(*end).min(info.lines.len()) {
            for call in calls_in(&info.lines[line_no - 1].code, line_no) {
                callees.extend(index.resolve(&call, file, krate));
            }
        }
        callees.sort_unstable();
        callees.dedup();
        callees.retain(|&c| c != id); // self-recursion adds nothing to reachability
        g.edges.push(callees);
    }
    g
}

impl FnNode {
    /// First line of the body proper (skips the signature so `impl Fn()`
    /// bounds and default-less parameters never read as call sites).
    fn body_start_line(&self, files: &BTreeMap<String, FileInfo>) -> usize {
        files[&self.file]
            .fns
            .iter()
            .find(|f| f.name == self.name && f.start_line == self.start_line)
            .map(|f| f.body_start)
            .unwrap_or(self.start_line)
    }
}

struct Index<'a> {
    files: &'a BTreeMap<String, FileInfo>,
    methods: HashMap<&'a str, Vec<usize>>,
    crate_fns: HashMap<(String, &'a str), Vec<usize>>,
    file_fns: HashMap<(&'a str, &'a str), Vec<usize>>,
    crate_idents: HashMap<String, String>,
    uses: HashMap<&'a str, Vec<UseEntry>>,
}

impl Index<'_> {
    fn resolve(&self, call: &Call, file: &str, krate: &str) -> Vec<usize> {
        let name = call.segs.last().map(String::as_str).unwrap_or("");
        if name.is_empty() {
            return Vec::new();
        }
        if call.method {
            return self.methods.get(name).cloned().unwrap_or_default();
        }
        if call.segs.len() == 1 {
            // Bare call: same file > imported path > same crate.
            if let Some(v) = self.file_fns.get(&(file, name)) {
                return v.clone();
            }
            if let Some(entry) = self.lookup_use(file, name) {
                return self.resolve_path(&entry, file, krate, 0);
            }
            return self.crate_fns.get(&(krate.to_string(), name)).cloned().unwrap_or_default();
        }
        // Qualified call. An uppercase-initial head is `Type::assoc(…)`.
        if call.segs[0].chars().next().is_some_and(|c| c.is_uppercase()) {
            return self.methods.get(name).cloned().unwrap_or_default();
        }
        // A head that names a `use`d module gets the import prefix spliced in:
        // `use alp_core::par; … par::fold_morsels(…)`.
        let mut segs = call.segs.clone();
        if !self.crate_idents.contains_key(&segs[0])
            && !matches!(segs[0].as_str(), "crate" | "self" | "super" | "std" | "core" | "alloc")
        {
            if let Some(prefix) = self.lookup_use(file, &segs[0]) {
                let mut spliced = prefix;
                spliced.extend(segs[1..].iter().cloned());
                segs = spliced;
            }
        }
        self.resolve_path(&segs, file, krate, 0)
    }

    /// Finds a `use` entry binding `name` in `file` (explicit beats glob).
    fn lookup_use(&self, file: &str, name: &str) -> Option<Vec<String>> {
        let entries = self.uses.get(file)?;
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return Some(e.path.clone());
        }
        // Glob import: `use x::y::*` may bind anything — append the name.
        entries.iter().find(|e| e.name == "*").map(|e| {
            let mut p = e.path.clone();
            p.push(name.to_string());
            p
        })
    }

    /// Resolves an absolute-ish path (`[head, mods…, name]`) to node ids,
    /// following `pub use` re-exports up to a small depth.
    fn resolve_path(&self, segs: &[String], file: &str, krate: &str, depth: usize) -> Vec<usize> {
        if depth > 4 || segs.is_empty() {
            return Vec::new();
        }
        let name = segs.last().map(String::as_str).unwrap_or("");
        // Strip leading `crate`/`self`/`super` runs → caller's own crate.
        let mut i = 0;
        let mut target = krate.to_string();
        while i < segs.len() - 1 && matches!(segs[i].as_str(), "crate" | "self" | "super") {
            i += 1;
        }
        if i == 0 {
            match self.crate_idents.get(&segs[0]) {
                Some(k) => {
                    target = k.clone();
                    i = 1;
                }
                None => {
                    if matches!(segs[0].as_str(), "std" | "core" | "alloc") {
                        return Vec::new(); // stdlib — external by definition
                    }
                    // Unknown head: treat as a module inside the caller's crate.
                }
            }
        }
        if name.chars().next().is_some_and(|c| c.is_uppercase()) {
            // `path::Type::method(…)` arrives here when `Type` is the final
            // module-ish segment before a ctor; assoc calls were handled by
            // the caller, so an uppercase terminal is a constructor — no edge.
            return Vec::new();
        }
        let mods: Vec<&str> =
            segs[i..segs.len() - 1].iter().map(String::as_str).filter(|s| *s != "self").collect();

        let candidates = self.crate_fns.get(&(target.clone(), name)).cloned().unwrap_or_default();
        if !candidates.is_empty() {
            if let Some(last_mod) = mods.last() {
                let file_of = |id: &usize| -> &str {
                    // Node files are stable for the graph's lifetime.
                    self.node_file(*id)
                };
                let preferred: Vec<usize> = candidates
                    .iter()
                    .filter(|id| {
                        let f = file_of(id);
                        f.ends_with(&format!("/{last_mod}.rs"))
                            || f.contains(&format!("/{last_mod}/"))
                    })
                    .copied()
                    .collect();
                if !preferred.is_empty() {
                    return preferred;
                }
            }
            return candidates;
        }

        // No definition in the target crate: follow `pub use` re-exports.
        // Prefer the module file named by the path (`src/<mod>.rs`), then any
        // file of the target crate re-exporting `name`.
        let mut out = Vec::new();
        for (path, _) in self.files.iter() {
            if crate_of(path) != target {
                continue;
            }
            if let Some(last_mod) = mods.last() {
                let is_mod_file = path.ends_with(&format!("/{last_mod}.rs"))
                    || path.ends_with(&format!("/{last_mod}/mod.rs"));
                let is_root = path.ends_with("src/lib.rs") || path.ends_with("src/main.rs");
                if !is_mod_file && !is_root {
                    continue;
                }
            }
            let Some(entries) = self.uses.get(path.as_str()) else { continue };
            for e in entries.iter().filter(|e| e.is_pub) {
                if e.name == name {
                    out.extend(self.resolve_path(&e.path, path, &crate_of(path), depth + 1));
                } else if e.name == "*" {
                    let mut p = e.path.clone();
                    p.push(name.to_string());
                    out.extend(self.resolve_path(&p, path, &crate_of(path), depth + 1));
                }
            }
        }
        let _ = file;
        out.sort_unstable();
        out.dedup();
        out
    }

    fn node_file(&self, id: usize) -> &str {
        // Recover the file by searching the per-file fn index; ids were
        // assigned in file iteration order, so this linear probe is only used
        // for module-path preference and stays off the hot path.
        for ((file, _), ids) in &self.file_fns {
            if ids.contains(&id) {
                return file;
            }
        }
        ""
    }
}

/// Parses every `use` statement in a file into entries. Handles multi-line
/// statements, one level of `{a, b as c, d::e}` grouping, `as` renames, and
/// `::*` globs. Deeper nesting falls back to recording what it can.
fn parse_uses(info: &FileInfo) -> Vec<UseEntry> {
    let mut out = Vec::new();
    let mut pending: Option<(String, bool)> = None; // (joined text, is_pub)
    for l in &info.lines {
        let code = l.code.trim();
        if pending.is_none() {
            let (is_pub, rest) = match code {
                c if c.starts_with("pub use ") => (true, &c[8..]),
                c if c.starts_with("pub(crate) use ") => (false, &c[15..]),
                c if c.starts_with("pub(super) use ") => (false, &c[15..]),
                c if c.starts_with("use ") => (false, &c[4..]),
                _ => continue,
            };
            pending = Some((rest.to_string(), is_pub));
        } else if let Some((text, _)) = pending.as_mut() {
            text.push(' ');
            text.push_str(code);
        }
        if let Some((text, is_pub)) = pending.as_ref() {
            if text.contains(';') {
                let stmt = text[..text.find(';').unwrap_or(text.len())].to_string();
                parse_use_tree(&stmt, *is_pub, &mut out);
                pending = None;
            }
        }
    }
    out
}

/// Parses one use tree (the text between `use` and `;`).
fn parse_use_tree(stmt: &str, is_pub: bool, out: &mut Vec<UseEntry>) {
    let stmt = stmt.trim();
    let (prefix, group) = match stmt.find('{') {
        Some(open) => {
            let close = stmt.rfind('}').unwrap_or(stmt.len());
            (stmt[..open].trim_end_matches("::").trim(), Some(&stmt[open + 1..close]))
        }
        None => (stmt, None),
    };
    let prefix_segs: Vec<String> =
        prefix.split("::").map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect();
    fn push_entry(
        out: &mut Vec<UseEntry>,
        segs: Vec<String>,
        rename: Option<String>,
        is_pub: bool,
    ) {
        if segs.is_empty() {
            return;
        }
        let name = match &rename {
            Some(r) => r.clone(),
            None => segs.last().cloned().unwrap_or_default(),
        };
        out.push(UseEntry { name, path: segs, is_pub });
    }
    match group {
        None => {
            // `a::b::c [as d]` or `a::b::*`
            let (path_text, rename) = split_as(prefix);
            let segs: Vec<String> = path_text
                .split("::")
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if segs.last().is_some_and(|s| s == "*") {
                let mut p = segs;
                p.pop();
                out.push(UseEntry { name: "*".to_string(), path: p, is_pub });
            } else {
                push_entry(out, segs, rename, is_pub);
            }
        }
        Some(items) => {
            // Split the group at top-level commas (tolerating one nested `{}`).
            let mut depth = 0usize;
            let mut item = String::new();
            fn flush(
                item: &mut String,
                prefix_segs: &[String],
                is_pub: bool,
                out: &mut Vec<UseEntry>,
            ) {
                let it = item.trim().to_string();
                item.clear();
                if it.is_empty() {
                    return;
                }
                let (path_text, rename) = split_as(&it);
                let mut segs = prefix_segs.to_vec();
                for s in path_text.split("::").map(str::trim).filter(|s| !s.is_empty()) {
                    if s != "self" {
                        segs.push(s.to_string());
                    }
                }
                if path_text.trim() != "self" && segs.last().is_some_and(|s| s == "*") {
                    segs.pop();
                    out.push(UseEntry { name: "*".to_string(), path: segs, is_pub });
                } else {
                    push_entry(out, segs, rename, is_pub);
                }
            }
            for c in items.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        flush(&mut item, &prefix_segs, is_pub, out);
                        continue;
                    }
                    _ => {}
                }
                item.push(c);
            }
            flush(&mut item, &prefix_segs, is_pub, out);
        }
    }
}

/// Splits `path as name` into (path, Some(name)).
fn split_as(item: &str) -> (String, Option<String>) {
    let toks: Vec<&str> = item.split_whitespace().collect();
    if toks.len() == 3 && toks[1] == "as" {
        (toks[0].to_string(), Some(toks[2].to_string()))
    } else {
        (item.trim().to_string(), None)
    }
}

/// Rust keywords and call-ish tokens that never name a workspace function.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "fn"
            | "let"
            | "else"
            | "unsafe"
            | "ref"
            | "mut"
            | "dyn"
            | "impl"
            | "where"
            | "use"
            | "pub"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "enum"
            | "struct"
            | "trait"
            | "break"
            | "continue"
            | "await"
            | "true"
            | "false"
    )
}

/// Extracts call sites from one code line. See the module docs for what is
/// and is not considered a call.
pub fn calls_in(code: &str, line: usize) -> Vec<Call> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < chars.len() {
        if !(chars[i].is_alphabetic() || chars[i] == '_') || (i > 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        // Lifetime (`'a`) or char literal remnants.
        if i > 0 && chars[i - 1] == '\'' {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident(chars[i]) {
            i += 1;
        }
        let ident: String = chars[start..i].iter().collect();
        // Skip whitespace to the deciding character.
        let mut j = i;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        match chars.get(j) {
            Some('!') => continue, // macro invocation (or !=; either way, no call)
            Some('(') => {}        // call head
            Some(':') if chars.get(j + 1) == Some(&':') => continue, // path continues
            _ => continue,
        }
        if is_keyword(&ident) {
            continue;
        }
        // Definition site? The word right before is `fn`.
        let before_word = prev_word(&chars, start);
        if before_word.as_deref() == Some("fn") {
            continue;
        }
        // Walk backwards over `::ident` segments to collect the full path.
        let mut segs = vec![ident.clone()];
        let mut k = start;
        loop {
            let mut b = k;
            while b > 0 && chars[b - 1].is_whitespace() {
                b -= 1;
            }
            if b >= 2 && chars[b - 1] == ':' && chars[b - 2] == ':' {
                let mut e = b - 2;
                while e > 0 && chars[e - 1].is_whitespace() {
                    e -= 1;
                }
                // Turbofish (`Vec::<u8>::new`) or global `::path` — stop.
                if e == 0 || !is_ident(chars[e - 1]) {
                    k = e;
                    break;
                }
                let mut s = e;
                while s > 0 && is_ident(chars[s - 1]) {
                    s -= 1;
                }
                segs.insert(0, chars[s..e].iter().collect());
                k = s;
            } else {
                k = b;
                break;
            }
        }
        let method = segs.len() == 1 && k > 0 && chars[k - 1] == '.';
        if segs.len() == 1 && !method {
            // Bare uppercase = tuple-struct / enum-variant constructor.
            if ident.chars().next().is_some_and(|c| c.is_uppercase()) {
                continue;
            }
        }
        out.push(Call { segs, method, line });
    }
    out
}

/// The identifier word immediately before position `at`, if any.
fn prev_word(chars: &[char], at: usize) -> Option<String> {
    let mut j = at;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    if j == 0 || !(chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
        return None;
    }
    let end = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
        j -= 1;
    }
    Some(chars[j..end].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(call: &Call) -> Vec<&str> {
        call.segs.iter().map(String::as_str).collect()
    }

    #[test]
    fn bare_method_and_qualified_calls_are_parsed() {
        let calls = calls_in("let x = helper(a).finish(); alp_core::par::claim(q);", 7);
        assert_eq!(calls.len(), 3);
        assert_eq!(segs(&calls[0]), vec!["helper"]);
        assert!(!calls[0].method);
        assert_eq!(segs(&calls[1]), vec!["finish"]);
        assert!(calls[1].method);
        assert_eq!(segs(&calls[2]), vec!["alp_core", "par", "claim"]);
        assert_eq!(calls[2].line, 7);
    }

    #[test]
    fn macros_constructors_keywords_and_defs_are_not_calls() {
        assert!(calls_in("vec![Some(1)]; panic!(\"x\"); if (a) {}", 1).is_empty());
        assert!(calls_in("pub fn decode(x: u8) {", 1).is_empty());
        let calls = calls_in("Vec::new(); Finding::new(a);", 1);
        // `Vec::new` / `Finding::new` are assoc calls (Type::method).
        assert_eq!(calls.len(), 2);
        assert_eq!(segs(&calls[0]), vec!["Vec", "new"]);
    }

    #[test]
    fn use_trees_parse_groups_renames_and_globs() {
        let info = crate::parse::scan_source(
            "pub use alp::par::{\n    fold_morsels, run_morsels_governed as governed,\n};\nuse crate::cache::*;\nuse alp_core::Registry;\n",
        );
        let entries = parse_uses(&info);
        let find = |n: &str| entries.iter().find(|e| e.name == n).cloned();
        let fold = find("fold_morsels").expect("group entry");
        assert_eq!(fold.path, vec!["alp", "par", "fold_morsels"]);
        assert!(fold.is_pub);
        let gov = find("governed").expect("rename entry");
        assert_eq!(gov.path, vec!["alp", "par", "run_morsels_governed"]);
        let glob = find("*").expect("glob entry");
        assert_eq!(glob.path, vec!["crate", "cache"]);
        assert!(!glob.is_pub);
        assert!(find("Registry").is_some());
    }
}
