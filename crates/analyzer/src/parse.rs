//! A lightweight item scanner over lexed code lines.
//!
//! Builds just enough structure for the rules: function items with spans and
//! signatures, module nesting (so `#[cfg(test)] mod tests` bodies can be
//! skipped), `const` items (for the wire-tag rule), `unsafe` occurrences, and
//! crate-level `#![forbid(unsafe_code)]` declarations. It is not a parser —
//! it tracks brace depth over comment-free code and pattern-matches item
//! headers, which is exact enough for this workspace's style and is kept
//! honest by the fixture tests.

use crate::lexer::Line;

/// A `fn` item (free function, method, or function generated in a macro body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// True for bare `pub` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// Return-type text (tokens after `->`, before `where`/`{`), if any.
    pub ret: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's opening brace (== start for `;` decls).
    pub body_start: usize,
    /// 1-based line of the matching close brace.
    pub end_line: usize,
    /// True when every enclosing block is a plain (non-test) `mod`.
    pub module_level: bool,
    /// True when any enclosing block is a `#[cfg(test)]` / `mod tests` body.
    pub in_test: bool,
}

/// A `const` item and its initializer text.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Constant name.
    pub name: String,
    /// Initializer tokens, joined by single spaces.
    pub value: String,
    /// 1-based definition line.
    pub line: usize,
    /// True inside a test module.
    pub in_test: bool,
}

/// One occurrence of the `unsafe` keyword in real code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the keyword.
    pub line: usize,
    /// True inside a test module.
    pub in_test: bool,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileInfo {
    /// Lexed per-line code/comment views.
    pub lines: Vec<Line>,
    /// The original source lines (literal contents intact).
    pub raw_lines: Vec<String>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// All `const` items.
    pub consts: Vec<ConstItem>,
    /// All `unsafe` keyword sites.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// True if the file declares `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockKind {
    Fn { item: usize },
    Mod { is_test: bool },
    Other,
}

#[derive(Debug, Clone)]
struct Token {
    text: String,
    line: usize, // 1-based
}

fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        let line = idx + 1;
        let chars: Vec<char> = l.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token { text: chars[start..i].iter().collect(), line });
            } else {
                out.push(Token { text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Lexes and scans a source file into items.
pub fn scan_source(src: &str) -> FileInfo {
    let raw_lines: Vec<String> = src.split('\n').map(str::to_string).collect();
    scan(crate::lexer::split_lines(src), raw_lines)
}

/// Scans a lexed file into items.
fn scan(lines: Vec<Line>, raw_lines: Vec<String>) -> FileInfo {
    let has_forbid_unsafe = lines.iter().any(|l| {
        let squeezed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        squeezed.contains("#![forbid(unsafe_code)]")
    });
    let tokens = tokenize(&lines);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut consts: Vec<ConstItem> = Vec::new();
    let mut unsafe_sites: Vec<UnsafeSite> = Vec::new();
    let mut stack: Vec<BlockKind> = Vec::new();
    // Tokens accumulated since the last statement/block boundary — the
    // would-be item header for the next `{`.
    let mut pending: Vec<Token> = Vec::new();
    let mut group_depth = 0usize; // () and [] nesting inside the pending run

    let in_test =
        |stack: &[BlockKind]| stack.iter().any(|b| matches!(b, BlockKind::Mod { is_test: true }));
    let module_level =
        |stack: &[BlockKind]| stack.iter().all(|b| matches!(b, BlockKind::Mod { is_test: false }));

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "(" | "[" => {
                group_depth += 1;
                pending.push(t.clone());
            }
            ")" | "]" => {
                group_depth = group_depth.saturating_sub(1);
                pending.push(t.clone());
            }
            "unsafe" => {
                unsafe_sites.push(UnsafeSite { line: t.line, in_test: in_test(&stack) });
                pending.push(t.clone());
            }
            ";" if group_depth == 0 => {
                if let Some(c) = parse_const(&pending) {
                    consts.push(ConstItem {
                        name: c.0,
                        value: c.1,
                        line: pending[0].line,
                        in_test: in_test(&stack),
                    });
                }
                pending.clear();
            }
            "{" => {
                let kind = classify_block(&pending);
                match kind {
                    PendingKind::Fn { name, is_pub, ret } => {
                        fns.push(FnItem {
                            name,
                            is_pub,
                            ret,
                            start_line: pending
                                .iter()
                                .find(|p| p.text == "fn")
                                .map(|p| p.line)
                                .unwrap_or(t.line),
                            body_start: t.line,
                            end_line: t.line,
                            module_level: module_level(&stack),
                            in_test: in_test(&stack),
                        });
                        stack.push(BlockKind::Fn { item: fns.len() - 1 });
                    }
                    PendingKind::Mod { is_test } => stack.push(BlockKind::Mod { is_test }),
                    PendingKind::Other => stack.push(BlockKind::Other),
                }
                pending.clear();
                group_depth = 0;
            }
            "}" => {
                if let Some(BlockKind::Fn { item }) = stack.pop() {
                    fns[item].end_line = t.line;
                }
                pending.clear();
                group_depth = 0;
            }
            _ => pending.push(t.clone()),
        }
        i += 1;
    }

    FileInfo { lines, raw_lines, fns, consts, unsafe_sites, has_forbid_unsafe }
}

enum PendingKind {
    Fn { name: String, is_pub: bool, ret: String },
    Mod { is_test: bool },
    Other,
}

/// Decides what kind of block an opening brace begins, from the tokens
/// accumulated since the previous boundary.
fn classify_block(pending: &[Token]) -> PendingKind {
    // `fn name(...)` — a `fn` token followed directly by an identifier. This
    // also skips `fn(...)` pointer types, whose next token is `(`.
    for (k, t) in pending.iter().enumerate() {
        if t.text == "fn" {
            if let Some(name_tok) = pending.get(k + 1) {
                if name_tok.text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
                    let is_pub = pending[..k].iter().enumerate().any(|(j, p)| {
                        p.text == "pub" && pending.get(j + 1).map(|n| n.text != "(").unwrap_or(true)
                    });
                    return PendingKind::Fn {
                        name: name_tok.text.clone(),
                        is_pub,
                        ret: return_type(&pending[k..]),
                    };
                }
            }
        }
    }
    // `mod name` at the start (possibly after `pub` / attributes).
    let words: Vec<&str> = pending.iter().map(|t| t.text.as_str()).collect();
    for (k, w) in words.iter().enumerate() {
        if *w == "mod" {
            let is_test_name = words.get(k + 1).is_some_and(|n| *n == "tests");
            let has_cfg_test =
                words.windows(3).any(|w3| w3[0] == "cfg" && w3[1] == "(" && w3[2] == "test");
            return PendingKind::Mod { is_test: is_test_name || has_cfg_test };
        }
        // Attribute / visibility tokens may precede `mod`; anything else
        // (match, impl, struct, unsafe, …) makes this a non-mod block.
        if !matches!(*w, "#" | "[" | "]" | "(" | ")" | "pub" | "crate" | "super" | "cfg" | "test") {
            break;
        }
    }
    PendingKind::Other
}

/// Extracts the return-type text from a signature token run (`fn … -> T …`).
fn return_type(sig: &[Token]) -> String {
    let mut depth = 0usize;
    let mut j = 0;
    while j + 1 < sig.len() {
        match sig[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "-" if depth == 0 && sig[j + 1].text == ">" => {
                let mut out = Vec::new();
                let mut k = j + 2;
                while k < sig.len() && sig[k].text != "where" {
                    out.push(sig[k].text.clone());
                    k += 1;
                }
                return out.join(" ");
            }
            _ => {}
        }
        j += 1;
    }
    String::new()
}

/// Matches `[attrs] [pub [(…)]] const NAME : … = VALUE` (not `const fn`).
fn parse_const(pending: &[Token]) -> Option<(String, String)> {
    let mut k = 0;
    // Skip leading attributes: `#`, optional `!`, then a bracketed group.
    while pending.get(k)?.text == "#" {
        k += 1;
        if pending.get(k)?.text == "!" {
            k += 1;
        }
        if pending.get(k)?.text != "[" {
            return None;
        }
        let mut depth = 0;
        loop {
            match pending.get(k)?.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    if pending.get(k)?.text == "pub" {
        k += 1;
        if pending.get(k)?.text == "(" {
            while pending.get(k)?.text != ")" {
                k += 1;
            }
            k += 1;
        }
    }
    if pending.get(k)?.text != "const" {
        return None;
    }
    let name = pending.get(k + 1)?.text.clone();
    if name == "fn" || !name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    let eq = pending.iter().position(|t| t.text == "=")?;
    let value: Vec<String> = pending[eq + 1..].iter().map(|t| t.text.clone()).collect();
    Some((name, value.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str) -> FileInfo {
        scan_source(src)
    }

    #[test]
    fn finds_fns_with_spans_and_visibility() {
        let src = "pub fn outer(x: u8) -> Result<u8, ()> {\n    inner();\n}\nfn inner() {\n}\npub(crate) fn hidden() {}\n";
        let info = scan_src(src);
        assert_eq!(info.fns.len(), 3);
        assert_eq!(info.fns[0].name, "outer");
        assert!(info.fns[0].is_pub);
        assert!(info.fns[0].ret.contains("Result"));
        assert_eq!((info.fns[0].start_line, info.fns[0].end_line), (1, 3));
        assert!(!info.fns[1].is_pub);
        assert!(!info.fns[2].is_pub, "pub(crate) is not public API");
    }

    #[test]
    fn test_modules_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n";
        let info = scan_src(src);
        assert!(!info.fns[0].in_test);
        assert!(info.fns[1].in_test);
        assert!(info.fns[2].in_test);
    }

    #[test]
    fn consts_and_forbid_are_found() {
        let src = "#![forbid(unsafe_code)]\npub const MAGIC: &[u8; 4] = b\"ALP2\";\nconst X: u8 = 3;\nconst fn f() -> u8 { 1 }\n";
        let info = scan_src(src);
        assert!(info.has_forbid_unsafe);
        assert_eq!(info.consts.len(), 2);
        assert_eq!(info.consts[0].name, "MAGIC");
        assert_eq!(info.fns.len(), 1);
        assert_eq!(info.fns[0].name, "f");
    }

    #[test]
    fn unsafe_sites_are_recorded() {
        let src = "fn f() {\n    // SAFETY: fine\n    unsafe { g() }\n}\npub unsafe fn g() {}\n";
        let info = scan_src(src);
        assert_eq!(info.unsafe_sites.len(), 2);
        assert_eq!(info.unsafe_sites[0].line, 3);
        assert_eq!(info.unsafe_sites[1].line, 5);
    }

    #[test]
    fn methods_in_impls_are_not_module_level() {
        let src = "impl Foo {\n    pub fn decompress(&self) {}\n}\npub fn decompress() {}\n";
        let info = scan_src(src);
        assert!(!info.fns[0].module_level);
        assert!(info.fns[1].module_level);
    }

    #[test]
    fn array_type_semicolons_do_not_split_items() {
        let src = "pub const M: &[u8; 4] = b\"ALPT\";\nfn f(x: [u64; 16]) -> [u64; 2] {\n}\n";
        let info = scan_src(src);
        assert_eq!(info.consts.len(), 1);
        assert_eq!(info.fns.len(), 1);
        assert_eq!(info.fns[0].name, "f");
    }
}
