//! Fixture: fused-scan capability flag and kernel override in agreement.

pub struct Fused;
impl ColumnCodec for Fused {
    fn caps(&self) -> Capabilities {
        Capabilities { fused_scan: true, ..Capabilities::default() }
    }
    fn try_scan_fused(&self) -> Result<u32, String> {
        Ok(0)
    }
}

pub struct Plain;
impl ColumnCodec for Plain {}

static ENTRIES: &[&'static dyn ColumnCodec] = &[
    &Fused,
    &Plain,
];
