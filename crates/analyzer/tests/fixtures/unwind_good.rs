//! Known-good fixture for `contained-unwind`: tests may catch panics to
//! assert on them, even outside the scheduler's containment seam.

pub fn double(x: u32) -> u32 {
    x.wrapping_mul(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            assert_eq!(super::double(2), 5);
        });
        assert!(caught.is_err());
    }
}
