//! Fixture: ColumnCodec impls and the ENTRIES block in perfect 1:1 sync.

pub struct Alpha;
impl ColumnCodec for Alpha {}
pub struct Beta;
impl ColumnCodec for Beta {}

static ENTRIES: &[&'static dyn ColumnCodec] = &[
    &impls::Alpha,
    &Beta,
];
