use std::sync::Mutex;

pub struct Svc {
    inner: Mutex<Vec<u8>>,
}

pub fn try_decompress_page(_bytes: &[u8]) -> Result<Vec<f64>, ()> {
    Ok(Vec::new())
}

impl Svc {
    fn fast_sum(&self) -> usize {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Copy out what the expensive call needs, release the lock, decode.
        let bytes = guard.clone();
        drop(guard);
        let vals = try_decompress_page(&bytes).unwrap_or_default();
        vals.len()
    }

    fn scoped_sum(&self) -> usize {
        let bytes = {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.clone()
        };
        let vals = try_decompress_page(&bytes).unwrap_or_default();
        vals.len()
    }
}
