//! Fixture: drift between ColumnCodec impls and the ENTRIES block.

pub struct Alpha;
impl ColumnCodec for Alpha {}
pub struct Beta;
impl ColumnCodec for Beta {}

static ENTRIES: &[&'static dyn ColumnCodec] = &[
    &impls::Alpha,
    &impls::Alpha,
    &impls::Ghost,
];
