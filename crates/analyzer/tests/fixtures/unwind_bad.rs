//! Known-bad fixture for `contained-unwind`: a worker pool swallowing
//! panics outside the scheduler's containment seam.

use std::panic::catch_unwind;

pub fn swallow_worker_panic(job: fn()) -> bool {
    catch_unwind(job).is_ok()
}
