//! Known-bad fixture for `undocumented-unsafe`: no SAFETY comment.

pub fn peek(v: &[u64]) -> u64 {
    unsafe { v.as_ptr().read() }
}
