// A panic three calls deep behind a `try_` entry point: the textual
// no-panic scope never sees it, the call graph does.

pub fn try_fetch(x: u8) -> Result<u8, ()> {
    Ok(helper(x))
}

fn helper(x: u8) -> u8 {
    inner(x)
}

fn inner(x: u8) -> u8 {
    level_cap(x).unwrap()
}

fn level_cap(x: u8) -> Option<u8> {
    if x < 64 {
        Some(x)
    } else {
        None
    }
}
