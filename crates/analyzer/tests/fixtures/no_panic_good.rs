//! Known-good fixture for the `no-panic` rule: checked accessors plus one
//! justified annotation.

pub fn decode_block(bytes: &[u8], out: &mut [u64]) -> Option<usize> {
    let first = *bytes.first()?;
    let count = usize::from(first);
    if let Some(slot) = out.first_mut() {
        *slot = count as u64;
    }
    // ANALYZER-ALLOW(no-panic): fixture demonstrating a justified annotation
    let tail = bytes[bytes.len() - 1];
    Some(usize::from(tail))
}
