//! Known-bad fixture: an unsafe-free crate root missing #![forbid(unsafe_code)].

pub fn id(x: u64) -> u64 {
    x
}
