//! Known-good fixture for `fallible-pairing`: the Result-returning twin exists.

pub fn decompress(bytes: &[u8]) -> Vec<f64> {
    try_decompress(bytes).unwrap_or_default()
}

pub fn try_decompress(bytes: &[u8]) -> Result<Vec<f64>, String> {
    if bytes.is_empty() {
        return Err("empty".to_string());
    }
    Ok(Vec::new())
}
