//! Known-bad fixture for the `no-panic` rule; labeled as a decode file.

pub fn decode_block(bytes: &[u8], out: &mut [u64]) -> usize {
    let first = bytes[0];
    let count = usize::from(first).checked_add(1).unwrap();
    let narrow = count as u32;
    out[0] = u64::from(narrow);
    unreachable!()
}
