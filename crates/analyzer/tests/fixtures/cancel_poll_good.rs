use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

impl MorselQueue {
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.total {
            Some(i)
        } else {
            None
        }
    }
}

// The governed shape: cancellation is consulted before every claim.
fn drain(queue: &MorselQueue, token: &CancelToken) -> usize {
    let mut n = 0;
    loop {
        if token.is_cancelled() {
            break;
        }
        let Some(m) = queue.claim() else { break };
        n += m;
    }
    n
}

// A stop flag counts too (the `try_map_morsels` shape).
fn drain_with_stop(queue: &MorselQueue, stop: &AtomicBool) -> usize {
    let mut n = 0;
    while !stop.load(Ordering::Relaxed) {
        let Some(m) = queue.claim() else { break };
        n += m;
    }
    n
}
