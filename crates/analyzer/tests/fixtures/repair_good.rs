//! Known-good twin of `repair_bad.rs`: the fold zero-extends the
//! accumulator before XORing, so no frame length can index past it.

pub fn repair_rowgroup(frames: &[Vec<u8>], parity: &[u8]) -> Vec<u8> {
    let mut out = parity.to_vec();
    for frame in frames {
        if out.len() < frame.len() {
            out.resize(frame.len(), 0);
        }
        for (slot, byte) in out.iter_mut().zip(frame) {
            *slot ^= *byte;
        }
    }
    out
}
