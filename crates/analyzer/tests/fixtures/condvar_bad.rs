use std::sync::{Condvar, Mutex};

pub struct Gate {
    state: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn await_signal(&self) {
        let mut st = self.state.lock().expect("gate");
        if *st == 0 {
            st = self.cv.wait(st).unwrap();
        }
        *st -= 1;
    }
}
