//! Known-bad fixture for `no-panic` on the parity repair path: the XOR fold
//! indexes the accumulator with the frame's length, so a frame longer than
//! the parity body panics mid-repair (covered via the `repair` name pattern).

pub fn repair_rowgroup(frames: &[Vec<u8>], parity: &[u8]) -> Vec<u8> {
    let mut out = parity.to_vec();
    for frame in frames {
        for (i, byte) in frame.iter().enumerate() {
            out[i] ^= *byte;
        }
    }
    out
}
