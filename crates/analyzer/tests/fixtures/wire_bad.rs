//! Known-bad fixture for `wire-tag-sync`: an orphan tag, a duplicate value,
//! and tags that are written but never checked by a reader.

pub const MAGIC: &[u8; 4] = b"FIX2";
pub const ORPHAN_TAG: u8 = 9;
pub const SCHEME_A: u8 = 3;
pub const SCHEME_B: u8 = 3;

pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(SCHEME_A);
    out.push(SCHEME_B);
}
