use std::sync::{Condvar, Mutex};

pub struct Gate {
    state: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn await_signal(&self) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Re-check in a loop (spurious wakeups) and recover poison instead
        // of unwrapping it.
        while *st == 0 {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        *st -= 1;
    }
}
