use std::sync::atomic::{AtomicBool, Ordering};

pub struct Store {
    quarantined: Vec<AtomicBool>,
}

impl Store {
    fn flag(&self, page: usize) {
        if let Some(q) = self.quarantined.get(page) {
            q.store(true, Ordering::Relaxed);
        }
    }

    fn check(&self, page: usize) -> bool {
        self.quarantined.get(page).map(|q| q.load(Ordering::Relaxed)).unwrap_or(false)
    }
}
