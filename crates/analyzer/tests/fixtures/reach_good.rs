// The same chain with the panic handled — and a genuinely unreachable
// function whose `unwrap` is legal because no `try_` entry can reach it.

pub fn try_fetch(x: u8) -> Result<u8, ()> {
    Ok(helper(x))
}

fn helper(x: u8) -> u8 {
    inner(x)
}

fn inner(x: u8) -> u8 {
    level_cap(x).unwrap_or(63)
}

fn level_cap(x: u8) -> Option<u8> {
    if x < 64 {
        Some(x)
    } else {
        None
    }
}

// Never called from any `try_` path: explicit panics are its own business.
pub fn infallible_cli_helper(x: u8) -> u8 {
    level_cap(x).unwrap()
}
