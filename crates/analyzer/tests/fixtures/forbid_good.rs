//! Known-good fixture: an unsafe-free crate root that declares the forbid.

#![forbid(unsafe_code)]

pub fn id(x: u64) -> u64 {
    x
}
