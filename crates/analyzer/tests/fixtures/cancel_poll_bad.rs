use std::sync::atomic::{AtomicUsize, Ordering};

pub struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

impl MorselQueue {
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.total {
            Some(i)
        } else {
            None
        }
    }
}

// Drains the whole queue even after the query was cancelled.
fn drain(queue: &MorselQueue) -> usize {
    let mut n = 0;
    while let Some(m) = queue.claim() {
        n += m;
    }
    n
}
