use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    ewma_nanos: AtomicU64,
}

impl Stats {
    // The pre-fix EWMA site from `Service::note_duration`, verbatim shape:
    // load → derive → store loses concurrent updates.
    fn note_duration(&self, nanos: u64) {
        let old = self.ewma_nanos.load(Ordering::Relaxed);
        let next = if old == 0 { nanos } else { old - old / 8 + nanos / 8 };
        self.ewma_nanos.store(next, Ordering::Relaxed);
    }

    fn bump(&self) {
        self.ewma_nanos.store(self.ewma_nanos.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }
}
