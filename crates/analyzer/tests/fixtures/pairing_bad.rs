//! Known-bad fixture for `fallible-pairing`: no try_ twin exists.

pub fn decompress(bytes: &[u8], count: usize) -> Vec<f64> {
    let _ = (bytes, count);
    Vec::new()
}
