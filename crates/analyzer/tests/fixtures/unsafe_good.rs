//! Known-good fixture for `undocumented-unsafe`: the block is documented.

pub fn peek(v: &[u64]) -> u64 {
    // SAFETY: callers guarantee v is non-empty.
    unsafe { v.as_ptr().read() }
}
