//! Fixture: fused-scan capability drift in both directions.

pub struct Claimer;
impl ColumnCodec for Claimer {
    fn caps(&self) -> Capabilities {
        Capabilities { fused_scan: true, ..Capabilities::default() }
    }
}

pub struct Hidden;
impl ColumnCodec for Hidden {
    fn try_scan_fused(&self) -> Result<u32, String> {
        Ok(0)
    }
}

static ENTRIES: &[&'static dyn ColumnCodec] = &[
    &Claimer,
    &Hidden,
];
