use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    ewma_nanos: AtomicU64,
    floor: AtomicU64,
}

impl Stats {
    // The fixed shape: the read-modify-write is one atomic step.
    fn note_duration(&self, nanos: u64) {
        let _ = self.ewma_nanos.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
            Some(if old == 0 { nanos } else { old - old / 8 + nanos / 8 })
        });
    }

    fn bump(&self) {
        self.ewma_nanos.fetch_add(1, Ordering::Relaxed);
    }

    // A load feeding a store on a *different* atomic is not a lost update.
    fn mirror(&self) {
        let seen = self.ewma_nanos.load(Ordering::Relaxed);
        self.floor.store(seen, Ordering::Relaxed);
    }
}
