//! Malformed ALLOW annotations are reported and do not suppress anything.

pub fn decode_one(bytes: &[u8]) -> u8 {
    // ANALYZER-ALLOW(no-panic)
    bytes[0]
}

pub fn decode_two(bytes: &[u8]) -> u8 {
    // ANALYZER-ALLOW(not-a-rule): bogus rule name
    bytes[0]
}
