//! Known-good fixture for `wire-tag-sync`: every tag has a serialize site
//! and a deserialize site.

pub const MAGIC: &[u8; 4] = b"FIX2";
pub const SCHEME_A: u8 = 3;

pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(SCHEME_A);
}

pub fn read_header(buf: &[u8]) -> bool {
    buf.starts_with(MAGIC) && buf.get(4) == Some(&SCHEME_A)
}
