use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Store {
    quarantined: Vec<AtomicBool>,
    hits: AtomicU64,
}

impl Store {
    // Release pairs with the Acquire loads below: whoever sees the flag sees
    // the verdict recorded before it.
    fn flag(&self, page: usize) {
        if let Some(q) = self.quarantined.get(page) {
            q.store(true, Ordering::Release);
        }
    }

    fn check(&self, page: usize) -> bool {
        self.quarantined.get(page).map(|q| q.load(Ordering::Acquire)).unwrap_or(false)
    }

    // Counters are observability, not synchronization: Relaxed is correct
    // and the rule only watches configured gate fields.
    fn count(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
