use std::sync::Mutex;

pub struct Svc {
    inner: Mutex<Vec<u8>>,
}

pub fn try_decompress_page(_bytes: &[u8]) -> Result<Vec<f64>, ()> {
    Ok(Vec::new())
}

impl Svc {
    fn slow_sum(&self) -> usize {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Decompression serializes behind the mutex while the guard lives.
        let vals = try_decompress_page(&guard).unwrap_or_default();
        vals.len() + guard.len()
    }
}
