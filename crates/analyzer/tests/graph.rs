//! Call-graph layer tests over small in-memory workspaces: recursive
//! cycles, trait-method dispatch, same-name functions in different modules,
//! and cross-crate `pub use` re-exports — asserting edges and reachability
//! sets exactly.

use std::collections::BTreeMap;

use analyzer::graph::{self, Graph};
use analyzer::parse::{scan_source, FileInfo};

fn build(sources: &[(&str, &str)]) -> Graph {
    let files: BTreeMap<String, FileInfo> =
        sources.iter().map(|&(p, s)| (p.to_string(), scan_source(s))).collect();
    graph::build(&files)
}

/// The single node named `name` defined in a file ending with `file`.
fn node(g: &Graph, file: &str, name: &str) -> usize {
    let ids = g.find(file, name);
    assert_eq!(ids.len(), 1, "expected exactly one `{name}` in {file}, got {ids:?}");
    ids[0]
}

/// Sorted names of every node reached from `roots` (roots included).
fn reached_names(g: &Graph, roots: &[usize]) -> Vec<String> {
    let parent = g.reachable(roots);
    let mut names: Vec<String> = parent.keys().map(|&i| g.nodes[i].name.clone()).collect();
    names.sort();
    names
}

#[test]
fn recursive_cycle_terminates_and_reaches_both_members() {
    let g = build(&[(
        "crates/alp/src/cyc.rs",
        "pub fn try_spin(n: u8) -> Result<u8, ()> {\n\
         \x20   Ok(a(n))\n\
         }\n\
         \n\
         fn a(n: u8) -> u8 {\n\
         \x20   if n == 0 { 0 } else { b(n - 1) }\n\
         }\n\
         \n\
         fn b(n: u8) -> u8 {\n\
         \x20   a(n)\n\
         }\n\
         \n\
         fn unrelated() -> u8 {\n\
         \x20   7\n\
         }\n",
    )]);
    let try_spin = node(&g, "cyc.rs", "try_spin");
    let a = node(&g, "cyc.rs", "a");
    let b = node(&g, "cyc.rs", "b");

    assert_eq!(g.edges[try_spin], vec![a]);
    assert_eq!(g.edges[a], vec![b]);
    assert_eq!(g.edges[b], vec![a]);
    assert_eq!(g.edges[node(&g, "cyc.rs", "unrelated")], Vec::<usize>::new());

    // BFS through the a ↔ b cycle terminates and excludes `unrelated`.
    assert_eq!(reached_names(&g, &[try_spin]), vec!["a", "b", "try_spin"]);
    let parent = g.reachable(&[try_spin]);
    assert_eq!(g.witness(&parent, b), vec!["try_spin", "a", "b"]);
}

#[test]
fn trait_method_calls_fan_out_to_every_impl() {
    let g = build(&[
        (
            "crates/core/src/codecs.rs",
            "pub trait Decode {\n\
             \x20   fn decode_it(&self) -> u8;\n\
             }\n\
             \n\
             pub struct Alpha;\n\
             pub struct Beta;\n\
             \n\
             impl Decode for Alpha {\n\
             \x20   fn decode_it(&self) -> u8 {\n\
             \x20       1\n\
             \x20   }\n\
             }\n\
             \n\
             impl Decode for Beta {\n\
             \x20   fn decode_it(&self) -> u8 {\n\
             \x20       2\n\
             \x20   }\n\
             }\n",
        ),
        (
            "crates/core/src/driver.rs",
            "pub fn drive(d: &dyn crate::codecs::Decode) -> u8 {\n\
             \x20   d.decode_it()\n\
             }\n",
        ),
    ]);
    let drive = node(&g, "driver.rs", "drive");
    // The analyzer cannot see dynamic dispatch, so a `.decode_it()` call
    // over-approximates to EVERY non-module-level `decode_it` definition —
    // both impls (and the trait's own declaration item).
    let defs = g.find("codecs.rs", "decode_it");
    assert!(defs.len() >= 2, "expected both impls indexed, got {defs:?}");
    assert_eq!(g.edges[drive], defs);

    let mut want: Vec<usize> = defs.clone();
    want.push(drive);
    want.sort_unstable();
    let parent = g.reachable(&[drive]);
    let mut got: Vec<usize> = parent.keys().copied().collect();
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn same_name_fns_resolve_by_module_file_preference() {
    let g = build(&[
        (
            "crates/fastlanes/src/lib.rs",
            "mod packer;\n\
             mod unpacker;\n\
             \n\
             pub fn route(x: u64) -> u64 {\n\
             \x20   packer::pack(x)\n\
             }\n",
        ),
        ("crates/fastlanes/src/packer.rs", "pub fn pack(x: u64) -> u64 {\n    x + 1\n}\n"),
        ("crates/fastlanes/src/unpacker.rs", "pub fn pack(x: u64) -> u64 {\n    x + 2\n}\n"),
    ]);
    let route = node(&g, "lib.rs", "route");
    let packer_pack = node(&g, "/packer.rs", "pack");
    let unpacker_pack = node(&g, "unpacker.rs", "pack");

    // `packer::pack(…)` must bind the definition in packer.rs only — the
    // module-file preference disambiguates the same-name twin.
    assert_eq!(g.edges[route], vec![packer_pack]);
    let parent = g.reachable(&[route]);
    assert!(parent.contains_key(&packer_pack));
    assert!(!parent.contains_key(&unpacker_pack));
}

#[test]
fn cross_crate_pub_use_reexports_are_followed() {
    let g = build(&[
        (
            "crates/alp/src/par.rs",
            "pub fn fold_morsels(n: usize) -> usize {\n\
             \x20   n\n\
             }\n",
        ),
        // `alp_core::par` re-exports the scheduler from the `alp` crate,
        // exactly like the real workspace does.
        ("crates/core/src/par.rs", "pub use alp::par::fold_morsels;\n"),
        (
            "crates/vectorq/src/lib.rs",
            "pub fn sum_all(n: usize) -> usize {\n\
             \x20   alp_core::par::fold_morsels(n)\n\
             }\n",
        ),
    ]);
    let caller = node(&g, "vectorq/src/lib.rs", "sum_all");
    let def = node(&g, "alp/src/par.rs", "fold_morsels");

    // alp_core::par::fold_morsels → crates/core/src/par.rs (`pub use`) →
    // the definition in crates/alp/src/par.rs.
    assert_eq!(g.edges[caller], vec![def]);
    let parent = g.reachable(&[caller]);
    assert_eq!(g.witness(&parent, def), vec!["sum_all", "fold_morsels"]);
    assert_eq!(reached_names(&g, &[caller]), vec!["fold_morsels", "sum_all"]);
}

#[test]
fn use_imports_bind_bare_and_module_qualified_calls() {
    let g = build(&[
        (
            "crates/core/src/kernels.rs",
            "pub fn unpack_block(x: u64) -> u64 {\n\
             \x20   x\n\
             }\n",
        ),
        (
            "crates/codecs/src/lib.rs",
            "use alp_core::kernels::unpack_block;\n\
             use alp_core::kernels;\n\
             \n\
             pub fn via_bare(x: u64) -> u64 {\n\
             \x20   unpack_block(x)\n\
             }\n\
             \n\
             pub fn via_module(x: u64) -> u64 {\n\
             \x20   kernels::unpack_block(x)\n\
             }\n",
        ),
    ]);
    let def = node(&g, "kernels.rs", "unpack_block");
    assert_eq!(g.edges[node(&g, "codecs/src/lib.rs", "via_bare")], vec![def]);
    assert_eq!(g.edges[node(&g, "codecs/src/lib.rs", "via_module")], vec![def]);
}
