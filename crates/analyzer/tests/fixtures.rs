//! Fixture tests: each known-bad snippet must produce exactly the expected
//! (rule, line) findings, and each known-good twin must produce none. The
//! snippets live under `tests/fixtures/` (which cargo does not compile and
//! the workspace walker skips) and are labeled with synthetic workspace
//! paths so the scoping rules treat them like real sources.

use analyzer::{analyze_sources, Config};

/// Runs the analyzer on a single in-memory file and returns the sorted
/// (rule id, line) pairs of every finding.
fn scan(label: &str, src: &str) -> Vec<(String, usize)> {
    let files = vec![(label.to_string(), src.to_string())];
    let mut found: Vec<(String, usize)> =
        analyze_sources(&files, &Config::default()).into_iter().map(|f| (f.rule, f.line)).collect();
    found.sort();
    found
}

fn pairs(expected: &[(&str, usize)]) -> Vec<(String, usize)> {
    expected.iter().map(|&(r, l)| (r.to_string(), l)).collect()
}

#[test]
fn no_panic_bad_flags_every_panic_site() {
    let found = scan("crates/alp/src/decode.rs", include_str!("fixtures/no_panic_bad.rs"));
    // Line 4: slice indexing, 5: unwrap, 6: narrowing cast, 7: indexed
    // store, 8: unreachable! macro.
    assert_eq!(
        found,
        pairs(&[
            ("no-panic", 4),
            ("no-panic", 5),
            ("no-panic", 6),
            ("no-panic", 7),
            ("no-panic", 8),
        ])
    );
}

#[test]
fn no_panic_good_is_clean() {
    let found = scan("crates/alp/src/decode.rs", include_str!("fixtures/no_panic_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn repair_bad_flags_the_panicking_xor_fold() {
    // Labeled as the real parity module: `repair_rowgroup` matches the
    // `repair` decode-name pattern inside the `alp` decode crate.
    let found = scan("crates/alp/src/parity.rs", include_str!("fixtures/repair_bad.rs"));
    assert_eq!(found, pairs(&[("no-panic", 9)]));
}

#[test]
fn repair_good_is_clean() {
    let found = scan("crates/alp/src/parity.rs", include_str!("fixtures/repair_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn undocumented_unsafe_bad_flags_the_block() {
    let found = scan("crates/alp/src/unsafe_fix.rs", include_str!("fixtures/unsafe_bad.rs"));
    assert_eq!(found, pairs(&[("undocumented-unsafe", 4)]));
}

#[test]
fn undocumented_unsafe_good_is_clean() {
    let found = scan("crates/alp/src/unsafe_fix.rs", include_str!("fixtures/unsafe_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn forbid_bad_flags_missing_declaration() {
    let found = scan("crates/fakecrate/src/lib.rs", include_str!("fixtures/forbid_bad.rs"));
    assert_eq!(found, pairs(&[("undocumented-unsafe", 1)]));
}

#[test]
fn forbid_good_is_clean() {
    let found = scan("crates/fakecrate/src/lib.rs", include_str!("fixtures/forbid_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn pairing_bad_flags_missing_try_twin() {
    let found = scan("crates/codecs/src/fake.rs", include_str!("fixtures/pairing_bad.rs"));
    assert_eq!(found, pairs(&[("fallible-pairing", 3)]));
}

#[test]
fn pairing_good_is_clean() {
    let found = scan("crates/codecs/src/fake.rs", include_str!("fixtures/pairing_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn wire_bad_flags_orphans_duplicates_and_unread_tags() {
    let found = scan("crates/alp/src/format.rs", include_str!("fixtures/wire_bad.rs"));
    // Line 4: MAGIC written but never read, 5: ORPHAN_TAG orphan, 6:
    // SCHEME_A never read, 7: SCHEME_B duplicates SCHEME_A's value AND is
    // never read.
    assert_eq!(
        found,
        pairs(&[
            ("wire-tag-sync", 4),
            ("wire-tag-sync", 5),
            ("wire-tag-sync", 6),
            ("wire-tag-sync", 7),
            ("wire-tag-sync", 7),
        ])
    );
}

#[test]
fn wire_good_is_clean() {
    let found = scan("crates/alp/src/format.rs", include_str!("fixtures/wire_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn registry_bad_flags_unregistered_duplicate_and_ghost() {
    let found = scan("crates/core/src/registry.rs", include_str!("fixtures/registry_bad.rs"));
    // Line 6: `Beta` implements the trait but is never registered, 10: the
    // second `Alpha` entry is a duplicate, 11: `Ghost` has no impl.
    assert_eq!(found, pairs(&[("registry-sync", 6), ("registry-sync", 10), ("registry-sync", 11)]));
}

#[test]
fn registry_good_is_clean() {
    let found = scan("crates/core/src/registry.rs", include_str!("fixtures/registry_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn fused_bad_flags_capability_drift_in_both_directions() {
    let found = scan("crates/core/src/registry.rs", include_str!("fixtures/fused_bad.rs"));
    // Line 6: `Claimer` sets `fused_scan: true` but never overrides the
    // kernel, 12: `Hidden` ships a kernel its caps never claim.
    assert_eq!(found, pairs(&[("registry-sync", 6), ("registry-sync", 12)]));
}

#[test]
fn fused_good_is_clean() {
    let found = scan("crates/core/src/registry.rs", include_str!("fixtures/fused_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn contained_unwind_bad_flags_catch_unwind_outside_the_seam() {
    let found = scan("crates/core/src/worker.rs", include_str!("fixtures/unwind_bad.rs"));
    // Line 4: the `use std::panic::catch_unwind` import, 7: the call site.
    assert_eq!(found, pairs(&[("contained-unwind", 4), ("contained-unwind", 7)]));
}

#[test]
fn contained_unwind_good_exempts_test_functions() {
    let found = scan("crates/core/src/worker.rs", include_str!("fixtures/unwind_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn contained_unwind_allows_the_scheduler_containment_file() {
    // The same known-bad source is legal inside `alp::par`, the one file
    // hosting the containment module.
    let found = scan("crates/alp/src/par.rs", include_str!("fixtures/unwind_bad.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn atomic_rmw_bad_flags_load_store_races() {
    let found = scan("crates/vectorq/src/stats.rs", include_str!("fixtures/atomic_rmw_bad.rs"));
    // Line 13: the pre-fix EWMA store (value derived through two bindings),
    // 17: an inline load-increment-store.
    assert_eq!(found, pairs(&[("atomic-rmw", 13), ("atomic-rmw", 17)]));
}

#[test]
fn atomic_rmw_good_is_clean() {
    let found = scan("crates/vectorq/src/stats.rs", include_str!("fixtures/atomic_rmw_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn atomic_ordering_bad_flags_relaxed_gate_accesses() {
    let found =
        scan("crates/vectorq/src/store.rs", include_str!("fixtures/atomic_ordering_bad.rs"));
    // Line 10: Relaxed store through the `q` alias, 15: Relaxed load on the
    // `quarantined` gate field.
    assert_eq!(found, pairs(&[("atomic-ordering", 10), ("atomic-ordering", 15)]));
}

#[test]
fn atomic_ordering_good_accepts_release_acquire_and_relaxed_counters() {
    let found =
        scan("crates/vectorq/src/store.rs", include_str!("fixtures/atomic_ordering_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn condvar_bad_flags_unlooped_and_unwrapped_waits() {
    let found = scan("crates/vectorq/src/gate.rs", include_str!("fixtures/condvar_bad.rs"));
    // Line 12 twice: the wait sits in an `if` (no re-check loop) AND its
    // poison result is unwrapped.
    assert_eq!(found, pairs(&[("condvar-discipline", 12), ("condvar-discipline", 12)]));
}

#[test]
fn condvar_good_is_clean() {
    let found = scan("crates/vectorq/src/gate.rs", include_str!("fixtures/condvar_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn guard_bad_flags_decompression_under_the_lock() {
    let found = scan("crates/vectorq/src/svc.rs", include_str!("fixtures/guard_bad.rs"));
    // Line 18: `try_decompress_page` called while `guard` is live.
    assert_eq!(found, pairs(&[("guard-across-call", 18)]));
}

#[test]
fn guard_good_accepts_drop_and_scope_release() {
    let found = scan("crates/vectorq/src/svc.rs", include_str!("fixtures/guard_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn cancel_poll_bad_flags_unpolled_claim_loops() {
    let found = scan("crates/vectorq/src/queue.rs", include_str!("fixtures/cancel_poll_bad.rs"));
    // Line 22: the `while let … claim()` loop never consults cancellation.
    assert_eq!(found, pairs(&[("cancel-poll", 22)]));
}

#[test]
fn cancel_poll_good_accepts_token_and_stop_flag_polls() {
    let found = scan("crates/vectorq/src/queue.rs", include_str!("fixtures/cancel_poll_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn reachability_bad_flags_panic_behind_try_entry() {
    let found = scan("crates/vectorq/src/reach.rs", include_str!("fixtures/reach_bad.rs"));
    // Line 13: `unwrap` in `inner`, three calls deep behind `try_fetch` —
    // outside every textual no-panic scope, caught only via the call graph.
    assert_eq!(found, pairs(&[("no-panic", 13)]));
}

#[test]
fn reachability_good_ignores_panics_no_try_entry_reaches() {
    let found = scan("crates/vectorq/src/reach.rs", include_str!("fixtures/reach_good.rs"));
    assert_eq!(found, pairs(&[]));
}

#[test]
fn malformed_allow_is_reported_and_does_not_suppress() {
    let found = scan("crates/alp/src/decode.rs", include_str!("fixtures/allow_bad.rs"));
    // Line 4: ALLOW missing its reason, 9: ALLOW naming an unknown rule;
    // neither suppresses the indexing on the line below it.
    assert_eq!(
        found,
        pairs(&[("allow-syntax", 4), ("allow-syntax", 9), ("no-panic", 5), ("no-panic", 10),])
    );
}
