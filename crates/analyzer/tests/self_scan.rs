//! Tier-1 enforcement: the workspace itself must scan clean. Any new panic
//! site in a decode path, undocumented `unsafe`, missing `try_` twin, or
//! out-of-sync wire tag fails this test (and the `analyze` CI job).

use std::path::Path;

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = analyzer::analyze_workspace(&root).expect("workspace sources readable");
    assert!(
        findings.is_empty(),
        "analyzer found {} issue(s) in the workspace:\n{}",
        findings.len(),
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
