//! Synthetic stand-ins for the 30 datasets of the paper's Table 1.
//!
//! The real datasets (NEON sensor archives, InfluxDB samples, the Public BI
//! benchmark, Kaggle dumps — multi-GB downloads) are not available offline, so
//! each dataset is replaced by a generator tuned to the statistics the paper
//! itself reports in **Table 2**: visible decimal precision (mean/spread),
//! value magnitude (mean/std-dev), the per-vector duplicate fraction, whether
//! values evolve as a time series (random walk) or i.i.d., heavy tails, zero
//! inflation, and — for the POI datasets — genuine full-precision "real
//! doubles". Decimals are manufactured as `d / 10^p` with both operands
//! exactly representable, which is correctly rounded and therefore produces
//! exactly the double a CSV parser would (see DESIGN.md §2).
//!
//! All generators are deterministic given `(name, n, seed)`.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a dataset's values are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spec {
    /// Random walk of an integer significand: `s_{i+1} = s_i ± U(0, step)`,
    /// value `s / 10^precision`. Models the time-series datasets.
    Walk {
        /// Decimal places.
        precision: u32,
        /// Starting value (in value units).
        start: f64,
        /// Maximum per-tick significand step.
        step: i64,
        /// Probability of repeating a recent value exactly.
        dup: f64,
    },
    /// I.i.d. decimals with significand uniform over `[lo, hi] * 10^precision`.
    Decimal {
        /// Decimal places of most values.
        precision: u32,
        /// Additional places on ~10% of values (precision jitter).
        jitter: u32,
        /// Low end of the value range.
        lo: f64,
        /// High end of the value range.
        hi: f64,
        /// Probability of repeating a recent value exactly.
        dup: f64,
    },
    /// Log-normal magnitudes rounded to `precision` decimals (heavy tails,
    /// e.g. Blockchain-tr, Food-prices, Gov/10).
    HeavyTail {
        /// Decimal places.
        precision: u32,
        /// Mean of `ln(value)`.
        mu: f64,
        /// Std-dev of `ln(value)`.
        sigma: f64,
        /// Probability of repeating a recent value exactly.
        dup: f64,
    },
    /// Zero-inflated decimals (the Gov columns: up to 99.5% exact zeros).
    Sparse {
        /// Fraction of exact `0.0` values.
        zero_frac: f64,
        /// Decimal places of the non-zero values.
        precision: u32,
        /// Low end of the non-zero range.
        lo: f64,
        /// High end of the non-zero range.
        hi: f64,
    },
    /// Non-negative integers stored as doubles (CMS/9, Medicare/9), with a
    /// log-uniform (Zipf-like) size distribution.
    Counts {
        /// Largest count.
        max: u64,
        /// Probability of repeating a recent value exactly.
        dup: f64,
    },
    /// Full-precision reals: uniform degrees converted to radians — true
    /// "real doubles" with ~17 significant digits (POI-lat / POI-lon).
    RealDouble {
        /// Low end in degrees.
        lo_deg: f64,
        /// High end in degrees.
        hi_deg: f64,
    },
    /// Very high-precision decimals clustered around a center (NYC/29:
    /// longitudes near -73.9 with ~13 decimal places).
    HighPrecision {
        /// Decimal places (> 10).
        precision: u32,
        /// Cluster center.
        center: f64,
        /// Half-width of the cluster.
        spread: f64,
        /// Probability of repeating a recent value exactly.
        dup: f64,
    },
}

/// A named dataset description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Paper's dataset name.
    pub name: &'static str,
    /// Whether Table 1 classifies it as time series.
    pub time_series: bool,
    /// Generator parameters.
    pub spec: Spec,
}

/// The 30 datasets of Table 1, with Table 2-derived parameters.
pub const DATASETS: [Dataset; 30] = [
    // ---- Time series ----
    Dataset {
        name: "Air-Pressure",
        time_series: true,
        spec: Spec::Walk { precision: 5, start: 93.4, step: 40, dup: 0.75 },
    },
    Dataset {
        name: "Basel-Temp",
        time_series: true,
        spec: Spec::Walk { precision: 6, start: 11.4, step: 90_000, dup: 0.26 },
    },
    Dataset {
        name: "Basel-Wind",
        time_series: true,
        spec: Spec::Walk { precision: 6, start: 7.1, step: 70_000, dup: 0.30 },
    },
    Dataset {
        name: "Bird-Mig",
        time_series: true,
        spec: Spec::Walk { precision: 5, start: 26.6, step: 9_000, dup: 0.55 },
    },
    Dataset {
        name: "Btc-Price",
        time_series: true,
        spec: Spec::Walk { precision: 4, start: 19187.5, step: 120_000, dup: 0.0 },
    },
    Dataset {
        name: "City-Temp",
        time_series: true,
        spec: Spec::Walk { precision: 1, start: 56.0, step: 25, dup: 0.60 },
    },
    Dataset {
        name: "Dew-Temp",
        time_series: true,
        spec: Spec::Walk { precision: 3, start: 14.4, step: 120, dup: 0.19 },
    },
    Dataset {
        name: "Bio-Temp",
        time_series: true,
        spec: Spec::Walk { precision: 2, start: 12.7, step: 18, dup: 0.49 },
    },
    Dataset {
        name: "PM10-dust",
        time_series: true,
        spec: Spec::Walk { precision: 3, start: 1.5, step: 4, dup: 0.94 },
    },
    Dataset {
        name: "Stocks-DE",
        time_series: true,
        spec: Spec::Walk { precision: 3, start: 63.8, step: 9, dup: 0.89 },
    },
    Dataset {
        name: "Stocks-UK",
        time_series: true,
        spec: Spec::Walk { precision: 2, start: 1593.7, step: 35, dup: 0.88 },
    },
    Dataset {
        name: "Stocks-USA",
        time_series: true,
        spec: Spec::Walk { precision: 2, start: 146.1, step: 10, dup: 0.91 },
    },
    Dataset {
        name: "Wind-dir",
        time_series: true,
        spec: Spec::Walk { precision: 2, start: 192.4, step: 900, dup: 0.04 },
    },
    // ---- Non time series ----
    Dataset {
        name: "Arade/4",
        time_series: false,
        spec: Spec::Decimal { precision: 4, jitter: 0, lo: 20.0, hi: 1500.0, dup: 0.0 },
    },
    Dataset {
        name: "Blockchain",
        time_series: false,
        spec: Spec::HeavyTail { precision: 4, mu: 6.0, sigma: 3.5, dup: 0.0 },
    },
    Dataset {
        name: "CMS/1",
        time_series: false,
        spec: Spec::Decimal { precision: 2, jitter: 8, lo: 5.0, hi: 400.0, dup: 0.55 },
    },
    Dataset {
        name: "CMS/25",
        time_series: false,
        spec: Spec::HeavyTail { precision: 9, mu: 1.5, sigma: 1.6, dup: 0.06 },
    },
    Dataset { name: "CMS/9", time_series: false, spec: Spec::Counts { max: 12_000, dup: 0.70 } },
    Dataset {
        name: "Food-prices",
        time_series: false,
        spec: Spec::HeavyTail { precision: 2, mu: 5.0, sigma: 2.4, dup: 0.52 },
    },
    Dataset {
        name: "Gov/10",
        time_series: false,
        spec: Spec::HeavyTail { precision: 1, mu: 9.0, sigma: 3.0, dup: 0.26 },
    },
    Dataset {
        name: "Gov/26",
        time_series: false,
        spec: Spec::Sparse { zero_frac: 0.995, precision: 2, lo: 1.0, hi: 5_000.0 },
    },
    Dataset {
        name: "Gov/30",
        time_series: false,
        spec: Spec::Sparse { zero_frac: 0.89, precision: 2, lo: 1.0, hi: 900_000.0 },
    },
    Dataset {
        name: "Gov/31",
        time_series: false,
        spec: Spec::Sparse { zero_frac: 0.94, precision: 2, lo: 1.0, hi: 60_000.0 },
    },
    Dataset {
        name: "Gov/40",
        time_series: false,
        spec: Spec::Sparse { zero_frac: 0.99, precision: 2, lo: 1.0, hi: 70_000.0 },
    },
    Dataset {
        name: "Medicare/1",
        time_series: false,
        spec: Spec::Decimal { precision: 2, jitter: 8, lo: 5.0, hi: 500.0, dup: 0.41 },
    },
    Dataset {
        name: "Medicare/9",
        time_series: false,
        spec: Spec::Counts { max: 14_000, dup: 0.70 },
    },
    Dataset {
        name: "NYC/29",
        time_series: false,
        spec: Spec::HighPrecision { precision: 13, center: -73.9, spread: 0.2, dup: 0.51 },
    },
    Dataset {
        name: "POI-lat",
        time_series: false,
        spec: Spec::RealDouble { lo_deg: -60.0, hi_deg: 75.0 },
    },
    Dataset {
        name: "POI-lon",
        time_series: false,
        spec: Spec::RealDouble { lo_deg: -180.0, hi_deg: 180.0 },
    },
    Dataset {
        name: "SD-bench",
        time_series: false,
        spec: Spec::Decimal { precision: 1, jitter: 0, lo: 8.0, hi: 2000.0, dup: 0.92 },
    },
];

/// Exact power of ten (valid for `p <= 22`).
fn pow10(p: u32) -> f64 {
    10f64.powi(p as i32)
}

/// Turns an integer significand into the correctly-rounded decimal double.
#[inline]
fn decimal(d: i64, p: u32) -> f64 {
    d as f64 / pow10(p)
}

struct DupBuffer {
    ring: Vec<f64>,
    pos: usize,
}

impl DupBuffer {
    fn new() -> Self {
        Self { ring: Vec::with_capacity(64), pos: 0 }
    }
    fn push(&mut self, v: f64) {
        if self.ring.len() < 64 {
            self.ring.push(v);
        } else {
            self.ring[self.pos] = v;
            self.pos = (self.pos + 1) % 64;
        }
    }
    fn sample(&self, rng: &mut SmallRng) -> Option<f64> {
        if self.ring.is_empty() {
            None
        } else {
            Some(self.ring[rng.gen_range(0..self.ring.len())])
        }
    }
}

/// Generates `n` values for the named dataset (see [`DATASETS`]).
///
/// # Panics
/// Panics if `name` is unknown.
pub fn generate(name: &str, n: usize, seed: u64) -> Vec<f64> {
    let ds = DATASETS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name:?}"));
    generate_spec(&ds.spec, n, seed)
}

/// Generates `n` values from an explicit [`Spec`].
pub fn generate_spec(spec: &Spec, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA1B2_C3D4_E5F6_0789);
    let mut out = Vec::with_capacity(n);
    let mut dups = DupBuffer::new();
    match *spec {
        Spec::Walk { precision, start, step, dup } => {
            let mut s = (start * pow10(precision)).round() as i64;
            for _ in 0..n {
                if rng.gen_bool(dup) {
                    if let Some(v) = dups.sample(&mut rng) {
                        out.push(v);
                        continue;
                    }
                }
                s += rng.gen_range(-step..=step);
                let v = decimal(s, precision);
                dups.push(v);
                out.push(v);
            }
        }
        Spec::Decimal { precision, jitter, lo, hi, dup } => {
            for _ in 0..n {
                if rng.gen_bool(dup) {
                    if let Some(v) = dups.sample(&mut rng) {
                        out.push(v);
                        continue;
                    }
                }
                let p = if jitter > 0 && rng.gen_bool(0.1) {
                    precision + rng.gen_range(1..=jitter)
                } else {
                    precision
                };
                let d = rng.gen_range((lo * pow10(p)) as i64..=(hi * pow10(p)) as i64);
                let v = decimal(d, p);
                dups.push(v);
                out.push(v);
            }
        }
        Spec::HeavyTail { precision, mu, sigma, dup } => {
            for _ in 0..n {
                if rng.gen_bool(dup) {
                    if let Some(v) = dups.sample(&mut rng) {
                        out.push(v);
                        continue;
                    }
                }
                // Box-Muller normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let magnitude = (mu + sigma * z).exp();
                let d = (magnitude * pow10(precision)).round();
                // Significands beyond 2^53 cannot stay exact decimals; clamp.
                let v = if d.abs() < 9.0e15 { decimal(d as i64, precision) } else { magnitude };
                dups.push(v);
                out.push(v);
            }
        }
        Spec::Sparse { zero_frac, precision, lo, hi } => {
            // Real sparse columns are *bursty*: long stretches of zeros with
            // clustered non-zero regions (not value-wise Bernoulli noise).
            // Alternate geometric-length runs so most 1024-value vectors are
            // all-zero, as in the Public BI Gov columns.
            let value_burst = 2048.0f64;
            let zero_burst = value_burst * zero_frac / (1.0 - zero_frac).max(1e-6);
            let mut in_zeros = true;
            let mut remaining = 0usize;
            for _ in 0..n {
                if remaining == 0 {
                    in_zeros = !in_zeros;
                    let mean = if in_zeros { zero_burst } else { value_burst };
                    // Geometric run length with the given mean, at least 1.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    remaining = (1.0 - u.ln() * mean).min(50_000_000.0) as usize;
                }
                remaining -= 1;
                if in_zeros {
                    out.push(0.0);
                } else {
                    let d = rng
                        .gen_range((lo * pow10(precision)) as i64..=(hi * pow10(precision)) as i64);
                    out.push(decimal(d, precision));
                }
            }
        }
        Spec::Counts { max, dup } => {
            let ln_max = (max as f64).ln();
            for _ in 0..n {
                if rng.gen_bool(dup) {
                    if let Some(v) = dups.sample(&mut rng) {
                        out.push(v);
                        continue;
                    }
                }
                let v = (rng.gen::<f64>() * ln_max).exp().floor();
                dups.push(v);
                out.push(v);
            }
        }
        Spec::RealDouble { lo_deg, hi_deg } => {
            let rad = std::f64::consts::PI / 180.0;
            for _ in 0..n {
                // Degrees with full 53-bit randomness, converted to radians:
                // the multiplication makes these genuine real doubles.
                let deg: f64 = rng.gen_range(lo_deg..hi_deg);
                out.push(deg * rad);
            }
        }
        Spec::HighPrecision { precision, center, spread, dup } => {
            let lo = ((center - spread) * pow10(precision)) as i64;
            let hi = ((center + spread) * pow10(precision)) as i64;
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            for _ in 0..n {
                if rng.gen_bool(dup) {
                    if let Some(v) = dups.sample(&mut rng) {
                        out.push(v);
                        continue;
                    }
                }
                let v = decimal(rng.gen_range(lo..=hi), precision);
                dups.push(v);
                out.push(v);
            }
        }
    }
    out
}

/// Generates all 30 datasets at `n` values each.
pub fn all_datasets(n: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    DATASETS.iter().map(|d| (d.name, generate_spec(&d.spec, n, seed))).collect()
}

/// Whether the named dataset is a time series per Table 1.
pub fn is_time_series(name: &str) -> bool {
    DATASETS.iter().any(|d| d.name == name && d.time_series)
}

/// Synthetic ML model weights (Table 7): zero-mean Gaussian `f32`s, the
/// high-precision, exponent-clustered profile of trained parameters.
pub fn ml_weights_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0000_0032_F10A);
    (0..n)
        .map(|_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (z * 0.02) as f32
        })
        .collect()
}

/// The four ML models of Table 7 with their (scaled-down) parameter counts.
pub const ML_MODELS: [(&str, usize); 4] = [
    ("Dino-Vitb16", 2_000_000),
    ("GPT2", 2_000_000),
    ("Grammarly-lg", 2_000_000),
    ("W2V Tweets", 3_000),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate("City-Temp", 10_000, 42);
        let b = generate("City-Temp", 10_000, 42);
        assert_eq!(a, b);
        let c = generate("City-Temp", 10_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn every_dataset_generates() {
        for d in &DATASETS {
            let data = generate(d.name, 5000, 7);
            assert_eq!(data.len(), 5000, "{}", d.name);
            assert!(data.iter().all(|v| v.is_finite()), "{}", d.name);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_dataset_panics() {
        generate("No-Such-Dataset", 10, 0);
    }

    #[test]
    fn decimals_have_bounded_precision() {
        let data = generate("City-Temp", 5000, 1);
        for &v in &data {
            let s = format!("{v}");
            let p = s.find('.').map(|d| s.len() - d - 1).unwrap_or(0);
            assert!(p <= 1, "{v} has {p} decimals");
        }
    }

    #[test]
    fn sparse_datasets_are_mostly_zero() {
        let data = generate("Gov/26", 50_000, 3);
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros as f64 / data.len() as f64 > 0.98);
    }

    #[test]
    fn counts_are_integers() {
        let data = generate("CMS/9", 5000, 5);
        assert!(data.iter().all(|&v| v.fract() == 0.0 && v >= 0.0));
    }

    #[test]
    fn poi_values_are_high_precision_reals() {
        let data = generate("POI-lat", 5000, 11);
        let high_precision = data
            .iter()
            .filter(|&&v| {
                let s = format!("{v}");
                s.find('.').map(|d| s.len() - d - 1).unwrap_or(0) > 14
            })
            .count();
        assert!(high_precision as f64 / data.len() as f64 > 0.9);
        assert!(data.iter().all(|&v| v.abs() < 1.5));
    }

    #[test]
    fn duplicate_fraction_roughly_matches_spec() {
        let data = generate("PM10-dust", 100_000, 9); // dup = 0.94
        let mut dups = 0usize;
        let mut seen = std::collections::HashSet::new();
        for chunk in data.chunks(1024) {
            seen.clear();
            for &v in chunk {
                if !seen.insert(v.to_bits()) {
                    dups += 1;
                }
            }
        }
        let frac = dups as f64 / data.len() as f64;
        assert!(frac > 0.80, "{frac}");
    }

    #[test]
    fn ml_weights_look_gaussian() {
        let w = ml_weights_f32(100_000, 1);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 1e-3, "{mean}");
        let within_2sigma = w.iter().filter(|&&x| x.abs() < 0.04).count();
        assert!(within_2sigma as f64 / w.len() as f64 > 0.93);
    }

    #[test]
    fn walks_stay_in_plausible_ranges() {
        let data = generate("Stocks-USA", 200_000, 2);
        // A bounded-step walk over 200k ticks stays within a generous band.
        assert!(data.iter().all(|&v| v.abs() < 1e7));
    }
}
