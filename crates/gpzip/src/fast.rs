//! **Fast mode** — an LZ4-class byte-oriented compressor: greedy single-probe
//! hash matching, no entropy stage. This is the paper's "LZ4 and Snappy trade
//! compression ratio for speed" point in the general-purpose spectrum
//! (§1), complementing the deflate-class default mode.
//!
//! Sequence format (LZ4-flavored):
//!
//! ```text
//! token: high nibble = literal length (15 = extended), low nibble = match
//!        length - MIN_MATCH (15 = extended)
//! [extended literal length bytes (255-terminated)] [literal bytes]
//! [2-byte LE match offset] [extended match length bytes]
//! ```
//!
//! The final sequence carries only literals (offset omitted).

use codecs::{cursor, CodecError};

const NAME: &str = "gpzip-fast";

/// Minimum match length.
pub const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 14;
const WINDOW: usize = 65_535;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn write_len(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

fn read_len(bytes: &[u8], pos: &mut usize) -> Option<usize> {
    let mut len = 0usize;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        len += b as usize;
        if b != 255 {
            return Some(len);
        }
    }
}

/// Compresses `data` (single frame, unframed length — callers prepend one).
pub fn compress_block(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of the pending literal run
    let mut i = 0usize;

    while i + MIN_MATCH <= data.len() {
        let h = hash4(data, i);
        let cand = table[h] as usize;
        table[h] = i as u32;
        let good = cand < i
            && i - cand <= WINDOW
            && data[cand..cand + MIN_MATCH] == data[i..i + MIN_MATCH];
        if !good {
            i += 1;
            continue;
        }
        // Extend the match.
        let mut len = MIN_MATCH;
        while i + len < data.len() && data[cand + len] == data[i + len] {
            len += 1;
        }

        // Emit sequence: literals [anchor..i] + match (len, dist).
        let lit_len = i - anchor;
        let match_code = len - MIN_MATCH;
        let token = ((lit_len.min(15) as u8) << 4) | (match_code.min(15) as u8);
        out.push(token);
        if lit_len >= 15 {
            write_len(&mut out, lit_len - 15);
        }
        out.extend_from_slice(&data[anchor..i]);
        out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
        if match_code >= 15 {
            write_len(&mut out, match_code - 15);
        }

        // Index a couple of covered positions to keep the table warm.
        let end = i + len;
        let mut j = i + 1;
        while j + MIN_MATCH <= data.len() && j < end {
            table[hash4(data, j)] = j as u32;
            j += 7;
        }
        i = end;
        anchor = end;
    }

    // Trailing literals-only sequence.
    let lit_len = data.len() - anchor;
    let token = (lit_len.min(15) as u8) << 4;
    out.push(token | 0x0F); // low nibble 15 marks "no match follows"
    if lit_len >= 15 {
        write_len(&mut out, lit_len - 15);
    }
    out.extend_from_slice(&data[anchor..]);
    out
}

/// Decompresses a block produced by [`compress_block`] into `out` until
/// `expected` bytes have been produced, validating every field against the
/// input.
///
/// Checked hazards: token and extended-length bytes past the block end,
/// literal runs longer than the remaining block, zero or too-far match
/// distances, and blocks producing more bytes than `expected` (a valid
/// stream's final sequence lands exactly on the boundary).
pub fn try_decompress_block(
    bytes: &[u8],
    expected: usize,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let truncated = || CodecError::Truncated { codec: NAME };
    let corrupt = |what| CodecError::Corrupt { codec: NAME, what };

    let start = out.len();
    let mut pos = 0usize;
    loop {
        let token = *bytes.get(pos).ok_or_else(truncated)?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len(bytes, &mut pos).ok_or_else(truncated)?;
        }
        if out.len() - start + lit_len > expected {
            return Err(corrupt("literal run exceeds block length"));
        }
        let literals = cursor::take(bytes, &mut pos, lit_len).ok_or_else(truncated)?;
        out.extend_from_slice(literals);
        if out.len() - start >= expected {
            return Ok(());
        }
        let match_nibble = (token & 0x0F) as usize;
        if match_nibble == 0x0F && out.len() - start >= expected {
            return Ok(());
        }
        let dist = cursor::read_u16_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
        let mut mlen = match_nibble + MIN_MATCH;
        if match_nibble == 15 {
            mlen += read_len(bytes, &mut pos).ok_or_else(truncated)?;
        }
        if dist == 0 || dist > out.len() - start {
            return Err(corrupt("match distance"));
        }
        if out.len() - start + mlen > expected {
            return Err(corrupt("match exceeds block length"));
        }
        let from = out.len() - dist;
        for k in 0..mlen {
            // ANALYZER-ALLOW(no-panic): from + k < out.len() — dist >= 1 is
            // checked above and out grows by one byte per iteration
            let b = out[from + k];
            out.push(b);
        }
        if out.len() - start >= expected {
            return Ok(());
        }
    }
}

/// Decompresses a block produced by [`compress_block`]. Panics on corrupt
/// input — use [`try_decompress_block`] for untrusted bytes.
pub fn decompress_block(bytes: &[u8], expected: usize, out: &mut Vec<u8>) {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress_block(bytes, expected, out).expect("corrupt gpzip-fast block")
}

/// Compresses with framing: `u64` total length, then per-block `u32` sizes.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for block in data.chunks(crate::BLOCK_SIZE) {
        let payload = compress_block(block);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompresses a frame produced by [`compress`], validating every field
/// against the input (see [`try_decompress_block`] for the per-block checks;
/// the frame adds total-length, block-size, and raw-size-vs-total hazards).
pub fn try_decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    try_decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// Decompresses a frame produced by [`compress`] into `out` (cleared first).
/// Same validation as [`try_decompress`]; reusing `out` makes the call
/// allocation-free once the buffer is warm.
pub fn try_decompress_into(bytes: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let truncated = || CodecError::Truncated { codec: NAME };

    let mut pos = 0usize;
    let total = cursor::read_u64_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
    out.clear();
    out.reserve(total.min(1 << 24));
    while out.len() < total {
        let clen = cursor::read_u32_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
        let raw = cursor::read_u32_le(bytes, &mut pos).ok_or_else(truncated)? as usize;
        if raw > total - out.len() {
            return Err(CodecError::Corrupt { codec: NAME, what: "blocks exceed frame length" });
        }
        let block = cursor::take(bytes, &mut pos, clen).ok_or_else(truncated)?;
        try_decompress_block(block, raw, out)?;
    }
    Ok(())
}

/// Decompresses a frame produced by [`compress`]. Panics on corrupt input —
/// use [`try_decompress`] for untrusted bytes.
pub fn decompress(bytes: &[u8]) -> Vec<u8> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress(bytes).expect("corrupt gpzip-fast frame")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c), data, "len {}", data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"abcd");
        roundtrip(b"aaaaaaaaaaaaaaaa");
    }

    #[test]
    fn repetitive_compresses() {
        let data = b"compress me, compress me again! ".repeat(3000);
        let size = roundtrip(&data);
        assert!(size < data.len() / 5, "{size} of {}", data.len());
    }

    #[test]
    fn float_columns_compress_somewhat() {
        let values: Vec<u8> = (0..50_000u64)
            .flat_map(|i| (((i % 997) as f64) / 100.0).to_bits().to_le_bytes())
            .collect();
        let size = roundtrip(&values);
        assert!(size < values.len(), "{size}");
    }

    #[test]
    fn incompressible_overhead_is_small() {
        let data: Vec<u8> = (0..200_000u64)
            .flat_map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes())
            .collect();
        let size = roundtrip(&data);
        assert!(size < data.len() + data.len() / 16 + 64);
    }

    #[test]
    fn long_literal_runs_use_extended_lengths() {
        let mut data: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        data.extend_from_slice(&vec![42u8; 5000]);
        roundtrip(&data);
    }

    #[test]
    fn multi_block_input() {
        let data: Vec<u8> = (0..(crate::BLOCK_SIZE * 2 + 999)).map(|i| (i % 119) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn fast_mode_is_faster_but_larger_than_default() {
        let values: Vec<u8> = (0..100_000u64)
            .flat_map(|i| (((i % 3163) as f64) / 100.0).to_bits().to_le_bytes())
            .collect();
        let fast = compress(&values).len();
        let full = crate::compress(&values).len();
        assert!(fast >= full, "fast {fast} vs full {full}");
    }
}
