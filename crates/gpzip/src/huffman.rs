//! Canonical Huffman coding with a 15-bit length limit (deflate-compatible
//! constraints). Code lengths are serialized as 4 bits per symbol; codes are
//! assigned canonically so only the lengths need to be transmitted.

use bitstream::{BitReader, BitWriter};

/// Maximum code length.
pub const MAX_LEN: u32 = 15;

/// Encoding table: per-symbol code length and canonical code.
pub struct Encoder {
    lengths: Vec<u8>,
    codes: Vec<u16>,
}

impl Encoder {
    /// Builds a length-limited canonical code from symbol frequencies.
    /// Symbols with zero frequency get no code (length 0).
    pub fn from_frequencies(freq: &[u32]) -> Self {
        let lengths = build_lengths(freq);
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Writes the length table (4 bits per symbol).
    pub fn write_lengths(&self, w: &mut BitWriter) {
        for &l in &self.lengths {
            w.write_bits(l as u64, 4);
        }
    }

    /// Emits one symbol.
    #[inline]
    pub fn write_symbol(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym];
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(self.codes[sym] as u64, len as u32);
    }

    /// Per-symbol code lengths (testing / size estimation).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }
}

/// Decoding table built from transmitted lengths.
pub struct Decoder {
    /// Number of codes of each length 0..=15.
    count: [u32; 16],
    /// First canonical code of each length.
    first: [u32; 16],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
    /// Offset into `symbols` of each length's first symbol.
    offset: [u32; 16],
}

impl Decoder {
    /// Reads an `n`-symbol length table and builds the decode structures.
    pub fn read_lengths(r: &mut BitReader, n: usize) -> Self {
        // ANALYZER-ALLOW(no-panic): 4-bit values fit u8
        let lengths: Vec<u8> = (0..n).map(|_| r.read_bits(4) as u8).collect();
        Self::from_lengths(&lengths)
    }

    /// Builds decode structures from explicit lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let mut count = [0u32; 16];
        for &l in lengths {
            count[l as usize] += 1;
        }
        count[0] = 0;
        let mut first = [0u32; 16];
        let mut offset = [0u32; 16];
        let mut code = 0u32;
        let mut sym_base = 0u32;
        for len in 1..=15usize {
            code <<= 1;
            first[len] = code;
            offset[len] = sym_base;
            code += count[len];
            sym_base += count[len];
        }
        let mut symbols = vec![0u16; sym_base as usize];
        let mut next = offset;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Self { count, first, symbols, offset }
    }

    /// Decodes one symbol, reading bits as needed. Returns `None` when the
    /// accumulated bits match no code of any length — which is how a corrupt
    /// or exhausted stream manifests (the reader zero-fills past its end, so
    /// callers should also check [`BitReader::overrun`] to distinguish
    /// truncation from an all-zeros code being decoded forever).
    #[inline]
    // ANALYZER-ALLOW(no-panic): len ranges over 1..=15 into fixed 16-entry
    // tables, and idx < offset[len] + count[len] = symbols.len() by the
    // canonical-code construction in from_lengths.
    pub fn try_read_symbol(&self, r: &mut BitReader) -> Option<usize> {
        let mut code = 0u32;
        for len in 1..=15usize {
            code = (code << 1) | r.read_bit() as u32;
            let c = self.count[len];
            if c > 0 && code.wrapping_sub(self.first[len]) < c {
                let idx = self.offset[len] + (code - self.first[len]);
                return Some(self.symbols[idx as usize] as usize);
            }
        }
        None
    }

    /// Decodes one symbol. Panics on an invalid stream — use
    /// [`Decoder::try_read_symbol`] for untrusted bytes.
    #[inline]
    pub fn read_symbol(&self, r: &mut BitReader) -> usize {
        // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper;
        // try_read_symbol is the path for untrusted bytes.
        self.try_read_symbol(r).expect("invalid Huffman stream")
    }
}

/// Computes length-limited Huffman code lengths for `freq`.
fn build_lengths(freq: &[u32]) -> Vec<u8> {
    let n = freq.len();
    let used: Vec<usize> = (0..n).filter(|&i| freq[i] > 0).collect();
    let mut lengths = vec![0u8; n];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Standard Huffman over the used symbols (parent-pointer forest).
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            // Min-heap via reversed comparison; break ties by id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let m = used.len();
    let mut parent = vec![usize::MAX; 2 * m - 1];
    let mut heap: std::collections::BinaryHeap<Node> = used
        .iter()
        .enumerate()
        .map(|(leaf, &sym)| Node { weight: freq[sym] as u64, id: leaf })
        .collect();
    let mut next_id = m;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node { weight: a.weight + b.weight, id: next_id });
        next_id += 1;
    }
    // Depth of each leaf = chain length to the root.
    for (leaf, &sym) in used.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth.min(MAX_LEN) as u8;
    }

    enforce_kraft(&mut lengths);
    lengths
}

/// Repairs the length assignment so the Kraft sum is exactly satisfiable
/// after clamping to [`MAX_LEN`] (the zlib-style fix-up).
fn enforce_kraft(lengths: &mut [u8]) {
    let unit = 1u64 << MAX_LEN;
    let weight = |l: u8| -> u64 {
        if l == 0 {
            0
        } else {
            1u64 << (MAX_LEN - l as u32)
        }
    };
    let mut total: u64 = lengths.iter().map(|&l| weight(l)).sum();
    // Over-subscribed: lengthen the longest-but-extendable codes.
    while total > unit {
        // Pick a symbol with the largest weight (smallest length) below MAX_LEN.
        let idx = (0..lengths.len())
            .filter(|&i| lengths[i] > 0 && (lengths[i] as u32) < MAX_LEN)
            .max_by_key(|&i| weight(lengths[i]))
            .expect("cannot satisfy Kraft inequality");
        total -= weight(lengths[idx]) / 2;
        lengths[idx] += 1;
    }
    // Under-subscribed is fine for decoding, but tightening improves ratio:
    // shorten codes while the budget allows.
    loop {
        let candidate = (0..lengths.len())
            .filter(|&i| lengths[i] > 1)
            .find(|&i| total + weight(lengths[i]) <= unit);
        match candidate {
            Some(i) => {
                total += weight(lengths[i]);
                lengths[i] -= 1;
            }
            None => break,
        }
    }
}

/// Assigns canonical codes for the given lengths.
fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let mut count = [0u32; 16];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut next = [0u32; 16];
    let mut code = 0u32;
    for len in 1..=15usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    // Canonical order: by (length, symbol index).
    let mut codes = vec![0u16; lengths.len()];
    for len in 1..=15u8 {
        for (sym, &l) in lengths.iter().enumerate() {
            if l == len {
                codes[sym] = next[len as usize] as u16;
                next[len as usize] += 1;
            }
        }
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freq: &[u32], stream: &[usize]) {
        let enc = Encoder::from_frequencies(freq);
        let mut w = BitWriter::new();
        enc.write_lengths(&mut w);
        for &s in stream {
            enc.write_symbol(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let dec = Decoder::read_lengths(&mut r, freq.len());
        for &s in stream {
            assert_eq!(dec.read_symbol(&mut r), s);
        }
    }

    #[test]
    fn two_symbol_alphabet() {
        let freq = [10, 1, 0, 0];
        roundtrip_symbols(&freq, &[0, 0, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let freq = [0, 5, 0];
        let enc = Encoder::from_frequencies(&freq);
        assert_eq!(enc.lengths(), &[0, 1, 0]);
        roundtrip_symbols(&freq, &[1, 1, 1]);
    }

    #[test]
    fn skewed_frequencies_stay_within_limit() {
        // Fibonacci-ish frequencies force deep trees in plain Huffman.
        let mut freq = vec![0u32; 40];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freq.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let enc = Encoder::from_frequencies(&freq);
        assert!(enc.lengths().iter().all(|&l| l as u32 <= MAX_LEN));
        let stream: Vec<usize> = (0..40).collect();
        roundtrip_symbols(&freq, &stream);
    }

    #[test]
    fn kraft_sum_is_satisfied() {
        let freq: Vec<u32> = (1..=286).map(|i| (i * i) as u32 % 1000 + 1).collect();
        let enc = Encoder::from_frequencies(&freq);
        let sum: u64 =
            enc.lengths().iter().filter(|&&l| l > 0).map(|&l| 1u64 << (15 - l as u32)).sum();
        assert!(sum <= 1 << 15);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut freq = vec![1u32; 8];
        freq[3] = 1000;
        let enc = Encoder::from_frequencies(&freq);
        let l3 = enc.lengths()[3];
        assert!(enc.lengths().iter().enumerate().all(|(i, &l)| i == 3 || l >= l3));
    }

    #[test]
    fn uniform_large_alphabet() {
        let freq = vec![7u32; 286];
        let stream: Vec<usize> = (0..286).chain((0..286).rev()).collect();
        roundtrip_symbols(&freq, &stream);
    }
}
