//! LZ77 matching stage: 4-byte hash chains over a 64 KiB window with
//! one-step lazy evaluation (the zlib strategy at a moderate effort level,
//! comparable to Zstd's default level 3 in spirit).

/// Maximum look-back distance.
pub const WINDOW: usize = 32 * 1024;
/// Minimum useful match length.
pub const MIN_MATCH: usize = 4;
/// Maximum match length (deflate-compatible length alphabet).
pub const MAX_MATCH: usize = 258;
/// Hash-chain probe budget per position.
const MAX_CHAIN: usize = 48;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One token of the LZ stream. `Literals(n)` means "copy the next `n` input
/// bytes verbatim"; the bytes themselves stay in the input block (the entropy
/// stage reads them from there), keeping tokens compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// Run of literal bytes.
    Literals(u32),
    /// Back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Copy length, `MIN_MATCH..=MAX_MATCH`.
        len: u32,
        /// Back-reference distance, `1..=WINDOW`.
        dist: u32,
    },
}

/// Reusable hash-chain matcher (tables are reset per block).
pub struct Matcher {
    head: Vec<i32>,
    prev: Vec<i32>,
}

impl Default for Matcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher {
    /// Creates a matcher with empty tables.
    pub fn new() -> Self {
        Self { head: vec![-1; HASH_SIZE], prev: Vec::new() }
    }

    #[inline]
    fn hash(data: &[u8], i: usize) -> usize {
        let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
    }

    /// Longest match for position `i`, searching the chain.
    fn best_match(&self, data: &[u8], i: usize) -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = (data.len() - i).min(MAX_MATCH);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = self.head[Self::hash(data, i)];
        let mut probes = MAX_CHAIN;
        while cand >= 0 && probes > 0 {
            let c = cand as usize;
            let dist = i - c;
            if dist > WINDOW {
                break;
            }
            // Cheap pre-check on the byte that would extend the best match.
            if data[c + best_len] == data[i + best_len] {
                let mut len = 0usize;
                while len < max_len && data[c + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == max_len {
                        break;
                    }
                }
            }
            cand = self.prev[c];
            probes -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + MIN_MATCH <= data.len() {
            let h = Self::hash(data, i);
            self.prev[i] = self.head[h];
            self.head[h] = i as i32;
        }
    }

    /// Tokenizes one block.
    pub fn tokenize(&mut self, data: &[u8]) -> Vec<Token> {
        self.head.fill(-1);
        self.prev.clear();
        self.prev.resize(data.len(), -1);

        let mut tokens = Vec::new();
        let mut literal_run = 0u32;
        let mut i = 0usize;
        while i < data.len() {
            match self.best_match(data, i) {
                Some((mut len, mut dist)) => {
                    // One-step lazy matching: prefer a strictly longer match
                    // starting at the next byte.
                    if i + 1 < data.len() {
                        self.insert(data, i);
                        if let Some((nlen, ndist)) = self.best_match(data, i + 1) {
                            if nlen > len + 1 {
                                literal_run += 1;
                                i += 1;
                                len = nlen;
                                dist = ndist;
                            }
                        }
                    } else {
                        self.insert(data, i);
                    }
                    if literal_run > 0 {
                        tokens.push(Token::Literals(literal_run));
                        literal_run = 0;
                    }
                    tokens.push(Token::Match { len: len as u32, dist: dist as u32 });
                    // Index the covered positions (sparsely for speed).
                    let end = i + len;
                    let mut j = i + 1;
                    while j < end && j + MIN_MATCH <= data.len() {
                        self.insert(data, j);
                        j += if len > 64 { 3 } else { 1 };
                    }
                    i = end;
                }
                None => {
                    self.insert(data, i);
                    literal_run += 1;
                    i += 1;
                }
            }
        }
        if literal_run > 0 {
            tokens.push(Token::Literals(literal_run));
        }
        tokens
    }
}

/// Expands a token stream against its block (test helper / reference).
pub fn expand(block_literals: &[u8], tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut lit = 0usize;
    for t in tokens {
        match *t {
            Token::Literals(n) => {
                out.extend_from_slice(&block_literals[lit..lit + n as usize]);
                lit += n as usize;
            }
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
                lit += len as usize;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens_reconstruct(data: &[u8]) {
        let mut m = Matcher::new();
        let tokens = m.tokenize(data);
        assert_eq!(expand(data, &tokens), data);
    }

    #[test]
    fn literal_only_input() {
        tokens_reconstruct(b"abcdefgh");
    }

    #[test]
    fn overlapping_run_match() {
        tokens_reconstruct(&vec![9u8; 5000]);
    }

    #[test]
    fn repeated_phrase() {
        let data = b"hello world, hello world, hello world!".repeat(100);
        let mut m = Matcher::new();
        let tokens = m.tokenize(&data);
        // ~3900 bytes covered mostly by MAX_MATCH-length references.
        let matches = tokens.iter().filter(|t| matches!(t, Token::Match { .. })).count();
        assert!(matches >= data.len() / (MAX_MATCH + 1) - 1, "{matches}");
        assert_eq!(expand(&data, &tokens), data);
    }

    #[test]
    fn random_bytes_stay_literal_heavy() {
        let data: Vec<u8> =
            (0..10_000u64).map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8).collect();
        tokens_reconstruct(&data);
    }

    #[test]
    fn empty_input() {
        tokens_reconstruct(b"");
    }

    #[test]
    fn matcher_is_reusable_across_blocks() {
        let mut m = Matcher::new();
        let a = b"xyzxyzxyzxyz".repeat(50);
        let b = b"123123123123".repeat(50);
        let ta = m.tokenize(&a);
        let tb = m.tokenize(&b);
        assert_eq!(expand(&a, &ta), a);
        assert_eq!(expand(&b, &tb), b);
    }
}
