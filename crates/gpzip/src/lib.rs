//! **GPZip** — a general-purpose, block-based byte compressor standing in for
//! Zstd in the evaluation (the real Zstd C library is not available offline;
//! see DESIGN.md §2 for the substitution argument).
//!
//! Architecture, deliberately conventional:
//!
//! * input split into [`BLOCK_SIZE`] blocks (256 KiB, like the paper's Zstd
//!   configuration);
//! * an LZ77 stage with a 4-byte hash-chain matcher over a 64 KiB window and
//!   one-step lazy matching ([`lz`]);
//! * a canonical-Huffman entropy stage over a deflate-style symbol alphabet
//!   ([`huffman`]).
//!
//! What matters for the reproduction is the *behavior class*: good compression
//! ratio on float columns, \[de\]compression one to two orders of magnitude
//! slower than lightweight vectorized encodings, and block granularity — a
//! reader must decompress a whole 256 KiB block to touch any value inside it.
//!
//! ```
//! let data: Vec<u8> = (0..100_000u32).flat_map(|i| (i % 1000).to_le_bytes()).collect();
//! let compressed = gpzip::compress(&data);
//! assert!(compressed.len() < data.len() / 2);
//! assert_eq!(gpzip::decompress(&compressed), data);
//! ```

#![forbid(unsafe_code)]

pub mod fast;
pub mod huffman;
pub mod lz;

use bitstream::{BitReader, BitWriter};
use codecs::{cursor, CodecError};

const NAME: &str = "gpzip";

/// Block granularity (256 KiB, matching the paper's description of Zstd's
/// block-based operation).
pub const BLOCK_SIZE: usize = 256 * 1024;

/// Compresses `data` into a self-describing byte stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let mut matcher = lz::Matcher::new();
    for block in data.chunks(BLOCK_SIZE) {
        let tokens = matcher.tokenize(block);
        let payload = encode_block(block, &tokens);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompresses a stream produced by [`compress`], validating every field
/// against the input.
///
/// Checked hazards: the total-length and block-length prefixes (either can
/// claim more bytes than exist), invalid Huffman codes, bit-stream
/// exhaustion mid-block (the bit reader zero-fills, which without a check
/// can decode an all-zeros literal code forever), match distances reaching
/// before the output start, and blocks emitting more bytes than the header
/// declared.
pub fn try_decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    try_decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// Decompresses a stream produced by [`compress`] into `out` (cleared first).
/// Same validation as [`try_decompress`]; reusing `out` avoids the output
/// allocation (the Huffman tables are still built per block).
pub fn try_decompress_into(bytes: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let total =
        cursor::read_u64_le(bytes, &mut pos).ok_or(CodecError::Truncated { codec: NAME })? as usize;
    out.clear();
    out.reserve(total.min(1 << 24));
    while out.len() < total {
        let len = cursor::read_u32_le(bytes, &mut pos)
            .ok_or(CodecError::Truncated { codec: NAME })? as usize;
        let block =
            cursor::take(bytes, &mut pos, len).ok_or(CodecError::Truncated { codec: NAME })?;
        try_decode_block(block, out, total)?;
    }
    Ok(())
}

/// Decompresses a stream produced by [`compress`]. Panics on corrupt input —
/// use [`try_decompress`] for untrusted bytes.
pub fn decompress(bytes: &[u8]) -> Vec<u8> {
    // ANALYZER-ALLOW(no-panic): documented panicking convenience wrapper; the
    // try_ twin above is the path for untrusted bytes.
    try_decompress(bytes).expect("corrupt gpzip stream")
}

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Literal/length alphabet size: 256 literals + EOB + 29 length codes.
const LL_SYMBOLS: usize = 286;
/// Distance alphabet size (deflate's 30 codes).
const DIST_SYMBOLS: usize = 30;

/// Deflate length-code table: `(base, extra_bits)` for codes 257..=285.
const LEN_CODES: [(u32, u32); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Deflate distance-code table: `(base, extra_bits)` for codes 0..=29.
const DIST_CODES: [(u32, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn length_code(len: u32) -> (usize, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    // Highest code whose base <= len.
    let mut code = 0;
    for (i, &(base, _)) in LEN_CODES.iter().enumerate() {
        if base <= len {
            code = i;
        } else {
            break;
        }
    }
    let (base, extra) = LEN_CODES[code];
    (257 + code, len - base, extra)
}

fn dist_code(dist: u32) -> (usize, u32, u32) {
    debug_assert!(dist >= 1);
    let mut code = 0;
    for (i, &(base, _)) in DIST_CODES.iter().enumerate() {
        if base <= dist {
            code = i;
        } else {
            break;
        }
    }
    let (base, extra) = DIST_CODES[code];
    (code, dist - base, extra)
}

fn encode_block(block: &[u8], tokens: &[lz::Token]) -> Vec<u8> {
    // Frequency pass.
    let mut ll_freq = [0u32; LL_SYMBOLS];
    let mut dist_freq = [0u32; DIST_SYMBOLS];
    let mut lit_pos = 0usize;
    for t in tokens {
        match *t {
            lz::Token::Literals(n) => {
                for &b in &block[lit_pos..lit_pos + n as usize] {
                    ll_freq[b as usize] += 1;
                }
                lit_pos += n as usize;
            }
            lz::Token::Match { len, dist } => {
                let (sym, _, _) = length_code(len);
                ll_freq[sym] += 1;
                let (dsym, _, _) = dist_code(dist);
                dist_freq[dsym] += 1;
                lit_pos += len as usize;
            }
        }
    }
    ll_freq[EOB] += 1;

    let ll_table = huffman::Encoder::from_frequencies(&ll_freq);
    let dist_table = huffman::Encoder::from_frequencies(&dist_freq);

    let mut w = BitWriter::with_capacity(block.len() / 2 + 256);
    ll_table.write_lengths(&mut w);
    dist_table.write_lengths(&mut w);

    // Emission pass.
    let mut lit_pos = 0usize;
    for t in tokens {
        match *t {
            lz::Token::Literals(n) => {
                for &b in &block[lit_pos..lit_pos + n as usize] {
                    ll_table.write_symbol(&mut w, b as usize);
                }
                lit_pos += n as usize;
            }
            lz::Token::Match { len, dist } => {
                let (sym, rem, extra) = length_code(len);
                ll_table.write_symbol(&mut w, sym);
                w.write_bits(rem as u64, extra);
                let (dsym, drem, dextra) = dist_code(dist);
                dist_table.write_symbol(&mut w, dsym);
                w.write_bits(drem as u64, dextra);
                lit_pos += len as usize;
            }
        }
    }
    ll_table.write_symbol(&mut w, EOB);
    w.into_bytes()
}

fn try_decode_block(payload: &[u8], out: &mut Vec<u8>, max_total: usize) -> Result<(), CodecError> {
    let truncated = || CodecError::Truncated { codec: NAME };
    let corrupt = |what| CodecError::Corrupt { codec: NAME, what };

    let mut r = BitReader::new(payload);
    let ll_table = huffman::Decoder::read_lengths(&mut r, LL_SYMBOLS);
    let dist_table = huffman::Decoder::read_lengths(&mut r, DIST_SYMBOLS);
    if r.overrun() {
        return Err(truncated());
    }
    loop {
        let sym = ll_table.try_read_symbol(&mut r).ok_or_else(|| corrupt("Huffman code"))?;
        // Checking exhaustion per symbol (not once at the end) matters: past
        // the payload the reader feeds zeros, and an all-zeros code can be a
        // valid literal — without this check such a block never reaches EOB.
        if r.overrun() {
            return Err(truncated());
        }
        if sym < 256 {
            out.push(sym as u8); // ANALYZER-ALLOW(no-panic): sym < 256 checked
        } else if sym == EOB {
            return Ok(());
        } else {
            // ANALYZER-ALLOW(no-panic): sym < LL_SYMBOLS = 286, so sym - 257 < 29
            let (base, extra) = LEN_CODES[sym - 257];
            // ANALYZER-ALLOW(no-panic): extra-bits fields are at most 13 bits
            let len = base + r.read_bits(extra) as u32;
            let dsym =
                dist_table.try_read_symbol(&mut r).ok_or_else(|| corrupt("distance code"))?;
            // ANALYZER-ALLOW(no-panic): dsym < DIST_SYMBOLS = DIST_CODES.len()
            let (dbase, dextra) = DIST_CODES[dsym];
            // ANALYZER-ALLOW(no-panic): extra-bits fields are at most 13 bits
            let dist = (dbase + r.read_bits(dextra) as u32) as usize;
            if r.overrun() {
                return Err(truncated());
            }
            let start = out.len().checked_sub(dist).ok_or_else(|| corrupt("match distance"))?;
            // Overlapping copies are the LZ idiom for runs; copy byte-wise.
            for i in 0..len as usize {
                // ANALYZER-ALLOW(no-panic): start + i < out.len() — checked_sub
                // above guards start and out grows by one byte per iteration
                let b = out[start + i];
                out.push(b);
            }
        }
        if out.len() > max_total {
            return Err(corrupt("block output exceeds declared length"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c), data, "len {}", data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abcabcabcabc");
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(2000);
        let size = roundtrip(&data);
        assert!(size < data.len() / 10, "{size} of {}", data.len());
    }

    #[test]
    fn float_columns_compress() {
        let values: Vec<u8> = (0..50_000u64)
            .flat_map(|i| (((i % 997) as f64) / 100.0).to_bits().to_le_bytes())
            .collect();
        let size = roundtrip(&values);
        assert!(size < values.len() / 2, "{size} of {}", values.len());
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let data: Vec<u8> = (0..100_000u64)
            .flat_map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes())
            .collect();
        let size = roundtrip(&data);
        // Huffman on near-uniform bytes: at most a few percent overhead.
        assert!(size < data.len() + data.len() / 10 + 1024);
    }

    #[test]
    fn multi_block_input() {
        let data: Vec<u8> = (0..(2 * BLOCK_SIZE + 12345)).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn long_runs_use_max_length_matches() {
        let data = vec![7u8; 100_000];
        let size = roundtrip(&data);
        assert!(size < 2000, "{size}");
    }

    #[test]
    fn code_tables_cover_all_lengths_and_distances() {
        for len in 3..=258u32 {
            let (sym, rem, extra) = length_code(len);
            let (base, e) = LEN_CODES[sym - 257];
            assert_eq!(e, extra);
            assert_eq!(base + rem, len);
            assert!(rem < (1 << extra) || extra == 0 && rem == 0);
        }
        for dist in 1..=32768u32 {
            let (sym, rem, extra) = dist_code(dist);
            let (base, e) = DIST_CODES[sym];
            assert_eq!(e, extra);
            assert_eq!(base + rem, dist);
        }
    }
}
