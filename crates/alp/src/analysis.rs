//! Dataset analysis — the statistics of Table 2 of the paper (§2).
//!
//! These functions are *offline* diagnostics (the compressor never calls
//! them); the `table2_analysis` harness uses them to characterize the
//! synthetic datasets the same way the paper characterizes the real ones:
//! decimal precision, per-vector similarity, IEEE exponent variance, success
//! of the naive `P_enc`/`P_dec` procedures, and XOR leading/trailing zeros.

use std::collections::HashSet;

use fastlanes::VECTOR_SIZE;

/// Number of visible decimal places of a double — the digits after the point
/// in its shortest round-trip decimal representation (what a user "sees").
pub fn decimal_precision(v: f64) -> u32 {
    if !v.is_finite() {
        return 0;
    }
    let s = format!("{v}");
    match s.find('.') {
        Some(dot) => (s.len() - dot - 1) as u32,
        None => 0,
    }
}

/// Naive `P_enc` of §2.5: `round(n * 10^e)` in plain double arithmetic,
/// without ALP's factor. Returns `None` when the scaled value leaves the
/// exactly-representable integer range.
pub fn p_enc(n: f64, e: u32) -> Option<i64> {
    if e > 22 {
        return None;
    }
    let scaled = n * 10f64.powi(e as i32);
    if !scaled.is_finite() || scaled.abs() >= 9.007_199_254_740_992e15 {
        return None;
    }
    Some(scaled.round() as i64)
}

/// Naive `P_dec` of §2.5: `d * 10^-e`.
pub fn p_dec(d: i64, e: u32) -> f64 {
    (d as f64) * 10f64.powi(-(e as i32))
}

/// Whether `P_enc`/`P_dec` with exponent `e` losslessly round-trips `n`.
pub fn penc_roundtrips(n: f64, e: u32) -> bool {
    match p_enc(n, e) {
        Some(d) => p_dec(d, e).to_bits() == n.to_bits(),
        None => false,
    }
}

/// Basic distribution summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Maximum observed value.
    pub max: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Summarizes an iterator of f64 observations.
pub fn summarize(values: impl Iterator<Item = f64> + Clone) -> Summary {
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    let mut min = f64::INFINITY;
    for v in values.clone() {
        n += 1;
        sum += v;
        max = max.max(v);
        min = min.min(v);
    }
    if n == 0 {
        return Summary::default();
    }
    let mean = sum / n as f64;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    Summary { max, min, mean, std_dev: var.sqrt() }
}

/// The Table 2 row computed for one dataset.
#[derive(Debug, Clone, Default)]
pub struct DatasetMetrics {
    /// C2–C5: decimal precision max / min / avg / (per-vector) std-dev.
    pub precision: Summary,
    /// C6: fraction of values per vector that repeat an earlier in-vector value.
    pub non_unique_fraction: f64,
    /// C7–C8: mean and std-dev of the values themselves.
    pub magnitude: Summary,
    /// C9–C10: mean of per-vector IEEE-754 exponent averages, and the mean
    /// per-vector exponent std-dev.
    pub ieee_exponent_mean: f64,
    pub ieee_exponent_std: f64,
    /// C11: `P_enc` success rate using each value's own visible precision.
    pub penc_per_value: f64,
    /// C12: best single dataset-wide exponent and its success rate.
    pub penc_best_exponent: u32,
    pub penc_per_dataset: f64,
    /// C13: success rate when choosing the best exponent per vector.
    pub penc_per_vector: f64,
    /// C14–C15: average leading / trailing zero bits of XOR with the
    /// previous value.
    pub xor_leading_zeros: f64,
    pub xor_trailing_zeros: f64,
}

/// Computes the full Table 2 row for `data`.
pub fn dataset_metrics(data: &[f64]) -> DatasetMetrics {
    if data.is_empty() {
        return DatasetMetrics::default();
    }
    let precisions: Vec<u32> = data.iter().map(|&v| decimal_precision(v)).collect();

    // Per-vector aggregates.
    let mut non_unique = 0usize;
    let mut exp_means = Vec::new();
    let mut exp_stds = Vec::new();
    let mut prec_stds = Vec::new();
    let mut per_vector_success = 0usize;
    let mut seen: HashSet<u64> = HashSet::new();
    for (chunk, prec_chunk) in data.chunks(VECTOR_SIZE).zip(precisions.chunks(VECTOR_SIZE)) {
        seen.clear();
        for &v in chunk {
            if !seen.insert(v.to_bits()) {
                non_unique += 1;
            }
        }
        let exps = chunk.iter().map(|v| ((v.to_bits() >> 52) & 0x7FF) as f64);
        let s = summarize(exps);
        exp_means.push(s.mean);
        exp_stds.push(s.std_dev);
        prec_stds.push(summarize(prec_chunk.iter().map(|&p| p as f64)).std_dev);

        // C13: best exponent for this vector.
        let best = (0..=22u32)
            .map(|e| chunk.iter().filter(|&&v| penc_roundtrips(v, e)).count())
            .max()
            .unwrap_or(0);
        per_vector_success += best;
    }

    // C11: per-value visible precision as the exponent.
    let penc_per_value =
        data.iter().zip(&precisions).filter(|&(&v, &p)| penc_roundtrips(v, p)).count() as f64
            / data.len() as f64;

    // C12: best single exponent for the whole dataset.
    let (best_e, best_count) = (0..=22u32)
        .map(|e| (e, data.iter().filter(|&&v| penc_roundtrips(v, e)).count()))
        .max_by_key(|&(_, c)| c)
        .unwrap_or((0, 0));

    // C14–C15: XOR with previous value.
    let mut lz_sum = 0u64;
    let mut tz_sum = 0u64;
    for w in data.windows(2) {
        let x = w[0].to_bits() ^ w[1].to_bits();
        lz_sum += x.leading_zeros() as u64;
        tz_sum += x.trailing_zeros() as u64;
    }
    // `saturating_sub`: a length-0 slice is guarded above, but a plain `- 1`
    // here would underflow in debug builds if that guard ever moved.
    let pairs = data.len().saturating_sub(1).max(1) as f64;

    let prec_summary = summarize(precisions.iter().map(|&p| p as f64));
    DatasetMetrics {
        precision: Summary {
            max: prec_summary.max,
            min: prec_summary.min,
            mean: prec_summary.mean,
            // C5 is the *within-vector* std-dev averaged over vectors.
            std_dev: summarize(prec_stds.iter().copied()).mean,
        },
        non_unique_fraction: non_unique as f64 / data.len() as f64,
        magnitude: summarize(data.iter().copied()),
        ieee_exponent_mean: summarize(exp_means.iter().copied()).mean,
        ieee_exponent_std: summarize(exp_stds.iter().copied()).mean,
        penc_per_value,
        penc_best_exponent: best_e,
        penc_per_dataset: best_count as f64 / data.len() as f64,
        penc_per_vector: per_vector_success as f64 / data.len() as f64,
        xor_leading_zeros: lz_sum as f64 / pairs,
        xor_trailing_zeros: tz_sum as f64 / pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_precision_of_common_values() {
        assert_eq!(decimal_precision(1.0), 0);
        assert_eq!(decimal_precision(0.5), 1);
        assert_eq!(decimal_precision(8.0605), 4);
        assert_eq!(decimal_precision(-3.25), 2);
        assert_eq!(decimal_precision(100.0), 0);
        assert_eq!(decimal_precision(f64::NAN), 0);
        assert_eq!(decimal_precision(1e-7), 7);
    }

    #[test]
    fn penc_fails_at_visible_precision_for_hard_decimals() {
        // The paper's §2.5 example: 8.0605 with e = 4 does not round-trip.
        assert!(!penc_roundtrips(8.0605, 4));
        // But a high exponent succeeds.
        assert!(penc_roundtrips(8.0605, 14));
    }

    #[test]
    fn penc_rejects_out_of_range_scaling() {
        assert_eq!(p_enc(1e10, 14), None); // 1e24 overflows the 2^53 bound
        assert!(p_enc(1.5, 2).is_some());
    }

    #[test]
    fn summarize_basics() {
        let s = summarize([1.0, 2.0, 3.0, 4.0].into_iter());
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.std_dev - 1.118_033_988_749_895).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_empty_dataset_do_not_panic() {
        // Regression: the XOR pair count used `(len - 1).max(1)`, which
        // underflows in debug builds for empty input.
        let m = dataset_metrics(&[]);
        assert_eq!(m.penc_per_value, 0.0);
        assert_eq!(m.xor_leading_zeros, 0.0);
        assert_eq!(m.xor_trailing_zeros, 0.0);
    }

    #[test]
    fn metrics_on_single_value_are_finite() {
        let m = dataset_metrics(&[1.25]);
        assert!(m.penc_per_value.is_finite());
        assert_eq!(m.xor_leading_zeros, 0.0);
        assert_eq!(m.non_unique_fraction, 0.0);
    }

    #[test]
    fn metrics_on_decimal_dataset() {
        let data: Vec<f64> = (0..4096).map(|i| (i % 100) as f64 / 100.0).collect();
        let m = dataset_metrics(&data);
        assert!(m.precision.max <= 2.0);
        assert!(m.penc_per_dataset > 0.99, "{}", m.penc_per_dataset);
        assert!(m.penc_per_vector >= m.penc_per_dataset - 1e-9);
        assert!(m.non_unique_fraction > 0.9);
    }

    #[test]
    fn metrics_on_real_doubles() {
        let data: Vec<f64> = (0..4096).map(|i| ((i as f64) * 0.777).sin()).collect();
        let m = dataset_metrics(&data);
        // Full-precision values: high visible precision, low P_enc success.
        assert!(m.precision.mean > 14.0, "{}", m.precision.mean);
        assert!(m.penc_per_dataset < 0.5, "{}", m.penc_per_dataset);
    }

    #[test]
    fn per_vector_success_is_at_least_per_dataset() {
        // Mixing two precisions: a per-vector exponent adapts, a global one
        // cannot.
        let mut data: Vec<f64> = (0..1024).map(|i| i as f64 / 10.0).collect();
        data.extend((0..1024).map(|i| i as f64 / 100_000.0));
        let m = dataset_metrics(&data);
        assert!(m.penc_per_vector + 1e-9 >= m.penc_per_dataset);
    }
}
