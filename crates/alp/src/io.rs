//! Fault-tolerant I/O primitives: deterministic fault injection and bounded
//! retry, shared by the streaming layer and the fault-injection test suites.
//!
//! Production storage sits behind I/O that fails in more ways than "works" or
//! "doesn't": reads come back short, syscalls are interrupted, non-blocking
//! sinks push back, and a crashing writer tears its last frame mid-byte. The
//! streaming layer ([`crate::stream`]) absorbs the *transient* class of these
//! faults with a bounded [`RetryPolicy`] and surfaces the *hard* class as
//! typed errors; this module provides both the retry machinery and the
//! [`FaultyRead`]/[`FaultyWrite`] wrappers the tests use to prove it. The
//! pipelined ingest path ([`crate::pipeline`]) keeps every sink operation on
//! the caller thread, so the same retry semantics hold under concurrent
//! compression.
//!
//! Everything is deterministic: a [`FaultPlan`] is a pure function of its
//! seed and the wrapper's operation/byte counters — no clocks, no global RNG —
//! so every failure observed in a test reproduces exactly from the seed
//! printed with it (see [`FAULT_SEED_ENV`] and the CI seed matrix).
//!
//! Fault taxonomy (DESIGN.md §11):
//!
//! * **transient** — [`ErrorKind::Interrupted`] / [`ErrorKind::WouldBlock`]
//!   and short reads/writes; retryable, absorbed by [`read_full_retry`] /
//!   [`write_all_retry`] up to the policy budget;
//! * **hard** — any other [`io::Error`]; never retried, surfaced immediately;
//! * **torn** — the sink persists a strict prefix of what was written and
//!   then hard-fails, as when the writing process dies; detected by the
//!   stream commit footer, recovered by salvage;
//! * **poisoned morsel** — a panic inside one parallel work unit; contained
//!   by [`crate::par::run_morsels_contained`].

use std::io::{self, ErrorKind, Read, Write};
use std::time::Duration;

/// Environment variable the fault-injection suites read to pick their base
/// seed, so CI can sweep a seed matrix without recompiling.
pub const FAULT_SEED_ENV: &str = "ALP_FAULT_SEED";

/// Resolves the fault-injection base seed: a nonempty, parseable
/// `ALP_FAULT_SEED` wins, otherwise `default`.
pub fn fault_seed(default: u64) -> u64 {
    match std::env::var(FAULT_SEED_ENV) {
        Ok(v) => v.trim().parse::<u64>().unwrap_or(default),
        Err(_) => default,
    }
}

/// SplitMix64 step — the same tiny generator the corruption harness uses,
/// inlined here so the fault layer stays dependency-free. Public because the
/// whole deterministic-fault family ([`FaultPlan`], retry jitter, the query
/// service's poisoned-page injection) derives its schedules from this one
/// mixer: every consumer is a pure function of `(seed, counter)`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a [`FaultPlan`] injects into one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Let the operation through untouched.
    None,
    /// Deliver at most this many bytes (short read / short write).
    Short(usize),
    /// Fail with [`ErrorKind::Interrupted`] (retryable).
    Interrupted,
    /// Fail with [`ErrorKind::WouldBlock`] (retryable).
    WouldBlock,
    /// Fail hard with [`ErrorKind::Other`] (never retried).
    Hard,
}

/// A deterministic, seedable schedule of I/O faults.
///
/// The decision for operation `n` is a pure function of `(seed, n)` — and,
/// for torn writes, of the byte counter — so a wrapper replays the same fault
/// sequence on every run with the same seed. Rates are expressed as "one in
/// `every` operations", chosen by hashing the operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Inject a transient (`Interrupted`/`WouldBlock`) roughly 1-in-`n` ops.
    transient_every: Option<u64>,
    /// Truncate the buffer of roughly 1-in-`n` ops (short read/write).
    short_every: Option<u64>,
    /// Persist exactly this many bytes, then hard-fail every later write.
    torn_at_byte: Option<u64>,
    /// Hard-fail exactly this operation index.
    hard_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as the fault-free control arm).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            transient_every: None,
            short_every: None,
            torn_at_byte: None,
            hard_at_op: None,
        }
    }

    /// Injects `Interrupted`/`WouldBlock` on roughly one in `every` ops.
    pub fn with_transients(mut self, every: u64) -> Self {
        self.transient_every = Some(every.max(1));
        self
    }

    /// Truncates roughly one in `every` operations to half its buffer.
    pub fn with_short_ops(mut self, every: u64) -> Self {
        self.short_every = Some(every.max(1));
        self
    }

    /// Persists exactly `byte` bytes, then hard-fails forever — the torn
    /// write of a process killed mid-stream.
    pub fn with_torn_write_at(mut self, byte: u64) -> Self {
        self.torn_at_byte = Some(byte);
        self
    }

    /// Hard-fails operation `op` (0-based) with [`ErrorKind::Other`].
    pub fn with_hard_fault_at(mut self, op: u64) -> Self {
        self.hard_at_op = Some(op);
        self
    }

    /// The deterministic decision for operation `op` with `bytes_done` bytes
    /// already forwarded and `requested` bytes asked for.
    fn decide(&self, op: u64, bytes_done: u64, requested: usize) -> Fault {
        if self.hard_at_op == Some(op) {
            return Fault::Hard;
        }
        if let Some(at) = self.torn_at_byte {
            if bytes_done >= at {
                return Fault::Hard;
            }
            let room = (at - bytes_done) as usize;
            if room < requested {
                return Fault::Short(room);
            }
        }
        let h = splitmix64(self.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some(every) = self.transient_every {
            if h.is_multiple_of(every) {
                return if h & (1 << 32) == 0 { Fault::Interrupted } else { Fault::WouldBlock };
            }
        }
        if let Some(every) = self.short_every {
            if (h >> 8).is_multiple_of(every) && requested > 1 {
                return Fault::Short(requested / 2);
            }
        }
        Fault::None
    }
}

/// True for the error kinds the `Read`/`Write` contracts call retryable.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock)
}

fn injected(kind: ErrorKind, op: u64) -> io::Error {
    io::Error::new(kind, format!("injected fault at op {op}"))
}

/// A [`Read`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    plan: FaultPlan,
    ops: u64,
    bytes: u64,
}

impl<R: Read> FaultyRead<R> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        Self { inner, plan, ops: 0, bytes: 0 }
    }

    /// Operations attempted so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes actually delivered so far.
    pub fn bytes_forwarded(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.ops;
        self.ops += 1;
        match self.plan.decide(op, self.bytes, buf.len()) {
            Fault::Hard => Err(injected(ErrorKind::Other, op)),
            Fault::Interrupted => Err(injected(ErrorKind::Interrupted, op)),
            Fault::WouldBlock => Err(injected(ErrorKind::WouldBlock, op)),
            Fault::Short(max) => {
                let take = max.min(buf.len()).max(1);
                let Some(slice) = buf.get_mut(..take) else { return Ok(0) };
                let n = self.inner.read(slice)?;
                self.bytes += n as u64;
                Ok(n)
            }
            Fault::None => {
                let n = self.inner.read(buf)?;
                self.bytes += n as u64;
                Ok(n)
            }
        }
    }
}

/// A [`Write`] wrapper that injects faults per a [`FaultPlan`] — including
/// the torn write: once the plan's byte budget is spent, nothing further
/// reaches the sink, exactly as when the writing process dies.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
    ops: u64,
    bytes: u64,
}

impl<W: Write> FaultyWrite<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        Self { inner, plan, ops: 0, bytes: 0 }
    }

    /// Operations attempted so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes actually persisted to the sink so far.
    pub fn bytes_forwarded(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.ops;
        self.ops += 1;
        match self.plan.decide(op, self.bytes, buf.len()) {
            Fault::Hard => Err(injected(ErrorKind::Other, op)),
            Fault::Interrupted => Err(injected(ErrorKind::Interrupted, op)),
            Fault::WouldBlock => Err(injected(ErrorKind::WouldBlock, op)),
            Fault::Short(max) => {
                let take = max.min(buf.len()).max(1);
                let Some(slice) = buf.get(..take) else { return Ok(0) };
                let n = self.inner.write(slice)?;
                self.bytes += n as u64;
                Ok(n)
            }
            Fault::None => {
                let n = self.inner.write(buf)?;
                self.bytes += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Bounded retry-with-backoff for transient I/O faults.
///
/// `max_attempts` bounds how many *transient* failures one logical operation
/// (a full-buffer read or write) absorbs before giving up; `base_backoff` is
/// the sleep before the first retry, doubled on each subsequent one (capped
/// at 100 ms). Hard errors are never retried. A zero `base_backoff` retries
/// immediately, which is what the deterministic tests use.
///
/// With a nonzero `jitter_seed`, each retry sleeps a *jittered* delay drawn
/// deterministically from the upper half of its exponential step (see
/// [`RetryPolicy::backoff_delay`]): parallel workers that hit the same
/// transient fault at the same moment decorrelate instead of retrying in
/// lockstep and re-colliding, while every schedule stays a pure function of
/// the seed (`ALP_FAULT_SEED` reproducibility is preserved by deriving
/// per-worker seeds from the suite's base seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Transient failures tolerated per logical operation.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry, capped at 100 ms.
    pub base_backoff: Duration,
    /// Seed for deterministic backoff jitter; `0` disables jitter and keeps
    /// the exact exponential schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Eight transient failures, 1 ms initial backoff — a budget that rides
    /// out bursts of `EINTR` without stalling a genuinely dead source for
    /// more than ~a quarter second.
    fn default() -> Self {
        Self { max_attempts: 8, base_backoff: Duration::from_millis(1), jitter_seed: 0 }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient is surfaced as-is.
    pub fn none() -> Self {
        Self { max_attempts: 0, base_backoff: Duration::ZERO, jitter_seed: 0 }
    }

    /// A policy that retries `max_attempts` times with no backoff sleep —
    /// the right shape for deterministic tests.
    pub fn immediate(max_attempts: u32) -> Self {
        Self { max_attempts, base_backoff: Duration::ZERO, jitter_seed: 0 }
    }

    /// Enables deterministic backoff jitter from `seed` (0 disables). Give
    /// each parallel worker a distinct seed — e.g. `base_seed ^ worker_id`
    /// with the suite's `ALP_FAULT_SEED` as `base_seed` — so simultaneous
    /// retriers spread out while the whole schedule stays reproducible.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The exact delay retry number `attempt` (1-based) will sleep.
    ///
    /// Without jitter this is the classic doubling schedule
    /// `base_backoff * 2^(attempt-1)`, capped at 100 ms. With jitter the
    /// delay is drawn deterministically from `[step/2, step]` ("equal
    /// jitter": bounded below by half the exponential step, so backoff
    /// pressure is preserved, and above by the step, so the cap still
    /// holds). Exposed so tests can assert the schedule without sleeping.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        let step = self.base_backoff.saturating_mul(factor).min(Duration::from_millis(100));
        if self.jitter_seed == 0 {
            return step;
        }
        // Deterministic draw from [step/2, step]: pure in (seed, attempt).
        let nanos = step.as_nanos() as u64; // <= 100 ms, far below u64::MAX
        let half = nanos / 2;
        let span = nanos - half;
        let draw = splitmix64(self.jitter_seed ^ u64::from(attempt)) % (span + 1);
        Duration::from_nanos(half + draw)
    }

    /// Sleeps for the backoff of retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) {
        let delay = self.backoff_delay(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

/// The typed error surfaced when a transient fault outlives its retry
/// budget. Wrapped in an [`io::Error`] of the *original* transient kind so
/// `e.kind()` still tells the caller what kept failing; downcast the inner
/// error to recover the attempt count.
#[derive(Debug)]
pub struct RetryExhausted {
    /// Transient failures absorbed before giving up.
    pub attempts: u32,
    /// Kind of the last transient failure.
    pub last_kind: ErrorKind,
}

impl core::fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "transient I/O fault ({:?}) persisted after {} attempts",
            self.last_kind, self.attempts
        )
    }
}

impl std::error::Error for RetryExhausted {}

fn exhausted(attempts: u32, last: &io::Error) -> io::Error {
    io::Error::new(last.kind(), RetryExhausted { attempts, last_kind: last.kind() })
}

/// Reads exactly `buf.len()` bytes, absorbing up to `policy.max_attempts`
/// transient faults ([`ErrorKind::Interrupted`], [`ErrorKind::WouldBlock`])
/// with backoff. Short reads are not faults — the loop simply continues.
/// Returns [`ErrorKind::UnexpectedEof`] if the source ends early, the
/// original error for hard faults, and a [`RetryExhausted`]-wrapped error
/// when the transient budget runs out.
pub fn read_full_retry<R: Read + ?Sized>(
    source: &mut R,
    buf: &mut [u8],
    policy: &RetryPolicy,
) -> io::Result<()> {
    let mut filled = 0usize;
    let mut transients = 0u32;
    while let Some(rest) = buf.get_mut(filled..) {
        if rest.is_empty() {
            return Ok(());
        }
        match source.read(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("source ended {} bytes short", rest.len()),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if is_transient(&e) => {
                transients += 1;
                if transients > policy.max_attempts {
                    return Err(exhausted(transients, &e));
                }
                policy.backoff(transients);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Like [`read_full_retry`], but a short source is not an error: returns
/// the bytes filled, so a salvage reader can classify a torn tail from the
/// partial frame it did get. Transient and hard faults behave identically
/// to [`read_full_retry`].
pub(crate) fn read_best_effort<R: Read + ?Sized>(
    source: &mut R,
    buf: &mut [u8],
    policy: &RetryPolicy,
) -> io::Result<usize> {
    let mut filled = 0usize;
    let mut transients = 0u32;
    while let Some(rest) = buf.get_mut(filled..) {
        if rest.is_empty() {
            break;
        }
        match source.read(rest) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if is_transient(&e) => {
                transients += 1;
                if transients > policy.max_attempts {
                    return Err(exhausted(transients, &e));
                }
                policy.backoff(transients);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Writes all of `buf`, absorbing up to `policy.max_attempts` transient
/// faults with backoff. Short writes are not faults. A `write` returning
/// `Ok(0)` is surfaced as [`ErrorKind::WriteZero`].
pub fn write_all_retry<W: Write + ?Sized>(
    sink: &mut W,
    buf: &[u8],
    policy: &RetryPolicy,
) -> io::Result<()> {
    let mut written = 0usize;
    let mut transients = 0u32;
    while let Some(rest) = buf.get(written..) {
        if rest.is_empty() {
            return Ok(());
        }
        match sink.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::WriteZero,
                    format!("sink accepted 0 of {} remaining bytes", rest.len()),
                ))
            }
            Ok(n) => written += n,
            Err(e) if is_transient(&e) => {
                transients += 1;
                if transients > policy.max_attempts {
                    return Err(exhausted(transients, &e));
                }
                policy.backoff(transients);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Flushes `sink`, absorbing transient faults under the same budget.
pub fn flush_retry<W: Write + ?Sized>(sink: &mut W, policy: &RetryPolicy) -> io::Result<()> {
    let mut transients = 0u32;
    loop {
        match sink.flush() {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) => {
                transients += 1;
                if transients > policy.max_attempts {
                    return Err(exhausted(transients, &e));
                }
                policy.backoff(transients);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_transparent() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut reader = FaultyRead::new(&data[..], FaultPlan::clean(1));
        let mut out = vec![0u8; 256];
        read_full_retry(&mut reader, &mut out, &RetryPolicy::none()).unwrap();
        assert_eq!(out, data);

        let mut sink = Vec::new();
        let mut writer = FaultyWrite::new(&mut sink, FaultPlan::clean(1));
        write_all_retry(&mut writer, &data, &RetryPolicy::none()).unwrap();
        assert_eq!(sink, data);
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let plan = FaultPlan::clean(42).with_transients(3).with_short_ops(4);
        let a: Vec<Fault> = (0..64).map(|op| plan.decide(op, 0, 100)).collect();
        let b: Vec<Fault> = (0..64).map(|op| plan.decide(op, 0, 100)).collect();
        assert_eq!(a, b);
        // A different seed produces a different schedule.
        let other = FaultPlan::clean(43).with_transients(3).with_short_ops(4);
        let c: Vec<Fault> = (0..64).map(|op| other.decide(op, 0, 100)).collect();
        assert_ne!(a, c);
        // And some transients actually fire at this rate.
        assert!(a.iter().any(|f| matches!(f, Fault::Interrupted | Fault::WouldBlock)));
    }

    #[test]
    fn transients_are_absorbed_by_retry() {
        let data: Vec<u8> = (0..200u32).flat_map(|i| i.to_le_bytes()).collect();
        let plan = FaultPlan::clean(7).with_transients(2).with_short_ops(3);
        let mut reader = FaultyRead::new(&data[..], plan);
        let mut out = vec![0u8; data.len()];
        read_full_retry(&mut reader, &mut out, &RetryPolicy::immediate(64)).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        // Every op is transient; a budget of 2 must give up with the typed
        // RetryExhausted error, preserving the transient kind.
        let plan = FaultPlan::clean(1).with_transients(1);
        let data = [0u8; 64];
        let mut reader = FaultyRead::new(&data[..], plan);
        let mut out = [0u8; 64];
        let err = read_full_retry(&mut reader, &mut out, &RetryPolicy::immediate(2)).unwrap_err();
        assert!(is_transient(&err));
        let inner = err.get_ref().expect("wrapped error");
        let typed = inner.downcast_ref::<RetryExhausted>().expect("RetryExhausted");
        assert_eq!(typed.attempts, 3);
    }

    #[test]
    fn hard_faults_are_never_retried() {
        let plan = FaultPlan::clean(9).with_hard_fault_at(0);
        let data = [1u8; 16];
        let mut reader = FaultyRead::new(&data[..], plan);
        let mut out = [0u8; 16];
        let err = read_full_retry(&mut reader, &mut out, &RetryPolicy::immediate(100)).unwrap_err();
        assert!(!is_transient(&err));
        assert_eq!(reader.ops(), 1, "a hard fault must not consume retry attempts");
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for cut in [0u64, 1, 137, 999] {
            let mut sink = Vec::new();
            let mut writer =
                FaultyWrite::new(&mut sink, FaultPlan::clean(5).with_torn_write_at(cut));
            let err = write_all_retry(&mut writer, &data, &RetryPolicy::immediate(4)).unwrap_err();
            assert!(!is_transient(&err));
            assert_eq!(sink.len() as u64, cut, "torn at {cut}");
            assert_eq!(&sink[..], &data[..cut as usize]);
        }
    }

    #[test]
    fn short_ops_still_deliver_everything() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan::clean(11).with_short_ops(1);
        let mut writer = FaultyWrite::new(Vec::new(), plan);
        write_all_retry(&mut writer, &data, &RetryPolicy::none()).unwrap();
        assert!(writer.ops() > 1, "short writes must split the operation");
        assert_eq!(writer.into_inner(), data);
    }

    #[test]
    fn jitter_schedule_is_bounded_and_deterministic() {
        let base = Duration::from_millis(1);
        let plain = RetryPolicy { max_attempts: 8, base_backoff: base, jitter_seed: 0 };
        let jittered = plain.with_jitter(42);
        for attempt in 1..=8u32 {
            let step = plain.backoff_delay(attempt);
            let d = jittered.backoff_delay(attempt);
            // Bounded: never below half the exponential step (backoff
            // pressure preserved), never above the step (cap preserved).
            assert!(d >= step / 2, "attempt {attempt}: {d:?} < {:?}", step / 2);
            assert!(d <= step, "attempt {attempt}: {d:?} > {step:?}");
            // Deterministic: same (seed, attempt) -> same delay.
            assert_eq!(d, jittered.backoff_delay(attempt));
        }
        // The exponential cap survives jitter.
        assert!(jittered.backoff_delay(64) <= Duration::from_millis(100));
    }

    #[test]
    fn jitter_decorrelates_distinct_worker_seeds() {
        let base =
            RetryPolicy { max_attempts: 8, base_backoff: Duration::from_millis(4), jitter_seed: 0 };
        // Workers derive their seeds from one base seed (the ALP_FAULT_SEED
        // pattern); their schedules must not coincide everywhere, or retries
        // resync in lockstep.
        let schedules: Vec<Vec<Duration>> = (0..4u64)
            .map(|w| {
                let p = base.with_jitter(fault_seed(9) ^ w.wrapping_add(1));
                (1..=6).map(|a| p.backoff_delay(a)).collect()
            })
            .collect();
        let mut distinct_pairs = 0;
        for i in 0..schedules.len() {
            for j in i + 1..schedules.len() {
                if schedules[i] != schedules[j] {
                    distinct_pairs += 1;
                }
            }
        }
        assert_eq!(distinct_pairs, 6, "every worker pair must decorrelate");
    }

    #[test]
    fn zero_seed_keeps_the_legacy_doubling_schedule() {
        let p =
            RetryPolicy { max_attempts: 4, base_backoff: Duration::from_millis(2), jitter_seed: 0 };
        assert_eq!(p.backoff_delay(1), Duration::from_millis(2));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(4));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(8));
        assert_eq!(p.backoff_delay(20), Duration::from_millis(100), "cap");
    }

    #[test]
    fn fault_seed_env_round_trips() {
        // Only asserts the default path: mutating the environment would race
        // other tests in this binary.
        assert_eq!(
            fault_seed(77),
            std::env::var(FAULT_SEED_ENV).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(77)
        );
    }
}
