//! The two-level adaptive sampling scheme of §3.2.
//!
//! **Level 1** (once per row-group): sample `SAMPLE_VECTORS` equidistant
//! vectors, `SAMPLE_VALUES` equidistant values from each; brute-force the full
//! (e, f) search space (253 combinations for doubles) on each sampled vector;
//! keep the `k` most frequent winners. The pooled sample also drives the
//! ALP-vs-ALP_rd scheme decision (§3.4).
//!
//! **Level 2** (once per vector, only when `k' > 1`): sample `SECOND_VALUES`
//! equidistant values from the vector, evaluate the `k'` candidates in order,
//! early-exiting after two consecutive non-improvements.

use crate::encode::{decode_one, encode_one};
use crate::traits::AlpFloat;

/// Sampling parameters (§4 "Sampling Parameters"). Defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerParams {
    /// `w`: vectors per row-group (paper: 100).
    pub vectors_per_rowgroup: usize,
    /// Vectors sampled per row-group in level 1 (paper: 8).
    pub sample_vectors: usize,
    /// Values sampled per vector in level 1 (paper: 32).
    pub sample_values: usize,
    /// `k`: maximum number of candidate combinations kept (paper: 5).
    pub max_combinations: usize,
    /// `s`: values sampled per vector in level 2 (paper: 32).
    pub second_level_values: usize,
}

impl Default for SamplerParams {
    fn default() -> Self {
        Self {
            vectors_per_rowgroup: 100,
            sample_vectors: 8,
            sample_values: 32,
            max_combinations: 5,
            second_level_values: 32,
        }
    }
}

impl SamplerParams {
    /// Validates the configuration: every count must be nonzero. A zero
    /// `vectors_per_rowgroup` used to be silently clamped to 1 deep inside
    /// the compressor; zero sampling counts divide by zero in
    /// [`equidistant_indices`]. Both are now rejected up front.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let checks = [
            ("vectors_per_rowgroup", self.vectors_per_rowgroup),
            ("sample_vectors", self.sample_vectors),
            ("sample_values", self.sample_values),
            ("max_combinations", self.max_combinations),
            ("second_level_values", self.second_level_values),
        ];
        for (param, value) in checks {
            if value == 0 {
                return Err(ConfigError { param });
            }
        }
        Ok(())
    }
}

/// A sampling parameter held a value the compressor cannot honor (today:
/// zero, where a positive count is required). Returned by
/// [`SamplerParams::validate`] and surfaced through every constructor that
/// accepts custom parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the rejected parameter.
    pub param: &'static str,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid sampler configuration: `{}` must be nonzero", self.param)
    }
}

impl std::error::Error for ConfigError {}

/// An (exponent, factor) candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combination {
    /// Exponent `e`.
    pub e: u8,
    /// Factor `f <= e`.
    pub f: u8,
}

/// Estimated compressed footprint of a sample under one combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleScore {
    /// Estimated size in bits (packed integers + exception overhead).
    pub bits: usize,
    /// Number of sampled values that failed to round-trip.
    pub exceptions: usize,
}

/// Scores `sample` under `(e, f)`: estimated bits = `len * width(max-min)`
/// plus `(BITS + 16)` bits per exception — the cost model of §3.2.
pub fn score_sample<F: AlpFloat>(sample: &[F], e: u8, f: u8) -> SampleScore {
    let mut exceptions = 0usize;
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut ok = 0usize;
    for &n in sample {
        let d = encode_one(n, e, f);
        let dec: F = decode_one(d, e, f);
        if dec.to_bits_u64() == n.to_bits_u64() {
            min = min.min(d);
            max = max.max(d);
            ok += 1;
        } else {
            exceptions += 1;
        }
    }
    let width =
        if ok > 0 { fastlanes::bits_needed((max as u64).wrapping_sub(min as u64)) } else { 0 };
    SampleScore { bits: sample.len() * width + exceptions * (F::BITS as usize + 16), exceptions }
}

/// Brute-force search over the full `(e, f)` space; ties prefer higher `e`,
/// then higher `f` (§3.2).
pub fn full_search<F: AlpFloat>(sample: &[F]) -> (Combination, SampleScore) {
    let mut best = Combination { e: 0, f: 0 };
    let mut best_score = SampleScore { bits: usize::MAX, exceptions: usize::MAX };
    for e in 0..=F::MAX_EXPONENT {
        for f in 0..=e {
            let s = score_sample(sample, e, f);
            // `e` ascends and `f` ascends within `e`, so `<=` makes the
            // *later* (higher-e, then higher-f) combination win ties — the
            // paper's tie-break rule.
            if s.bits <= best_score.bits {
                best = Combination { e, f };
                best_score = s;
            }
        }
    }
    (best, best_score)
}

/// Outcome of level-1 sampling for one row-group.
#[derive(Debug, Clone)]
pub struct FirstLevelOutcome {
    /// The `k' <= k` candidate combinations, most frequent first.
    pub combinations: Vec<Combination>,
    /// Estimated bits/value of the pooled sample under the top candidate.
    pub estimated_bits_per_value: f64,
    /// Fraction of pooled sample values that were exceptions.
    pub exception_fraction: f64,
}

impl FirstLevelOutcome {
    /// Whether the row-group should switch to ALP_rd (§3.4): the decimal
    /// encoding is deemed hopeless when the estimate approaches the
    /// uncompressed width or exceptions dominate.
    pub fn should_use_rd<F: AlpFloat>(&self) -> bool {
        self.estimated_bits_per_value >= F::BITS as f64 * 0.96 || self.exception_fraction > 0.35
    }
}

/// Indices of `count` samples of a `len`-element sequence: one per
/// equal-width stratum, at a deterministic hash-jittered offset.
///
/// The paper samples strictly equidistantly; a fixed stride, however, aliases
/// with periodic data (e.g. a value pattern whose period divides the stride
/// makes every sample land in the same residue class, so the search only ever
/// sees one sub-population). The jitter keeps the samples spread while
/// breaking that resonance; it is deterministic, so compression stays
/// reproducible.
pub fn equidistant_indices(len: usize, count: usize) -> Vec<usize> {
    if len == 0 || count == 0 {
        return Vec::new();
    }
    if count >= len {
        return (0..len).collect();
    }
    let stride = len / count;
    (0..count)
        .map(|i| {
            let jitter = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % stride;
            i * stride + jitter
        })
        .collect()
}

/// Level-1 sampling over one row-group, presented as a slice of (up to
/// `vectors_per_rowgroup * 1024`) values.
pub fn first_level<F: AlpFloat>(rowgroup: &[F], params: &SamplerParams) -> FirstLevelOutcome {
    let n_vectors = rowgroup.len().div_ceil(fastlanes::VECTOR_SIZE);
    let vector_ids = equidistant_indices(n_vectors, params.sample_vectors);

    let mut winners: Vec<Combination> = Vec::with_capacity(vector_ids.len());
    let mut sample_buf: Vec<F> = Vec::with_capacity(params.sample_values);
    let mut sampled_values = 0usize;
    let mut best_bits = 0usize;
    let mut best_exceptions = 0usize;

    for &vid in &vector_ids {
        let start = vid * fastlanes::VECTOR_SIZE;
        let end = (start + fastlanes::VECTOR_SIZE).min(rowgroup.len());
        let vector = &rowgroup[start..end];
        sample_buf.clear();
        for idx in equidistant_indices(vector.len(), params.sample_values) {
            sample_buf.push(vector[idx]);
        }
        let (combo, score) = full_search(&sample_buf);
        winners.push(combo);
        // The scheme decision uses what a *per-vector adaptive* encoder can
        // achieve — each sampled vector under its own best combination —
        // so mixed row-groups (e.g. zero bursts next to value bursts) are
        // not mistaken for incompressible real doubles.
        sampled_values += sample_buf.len();
        best_bits += score.bits;
        best_exceptions += score.exceptions;
    }

    // Frequency-rank the winners; ties prefer higher e, then higher f.
    let mut counts: Vec<(Combination, usize)> = Vec::new();
    for &w in &winners {
        match counts.iter_mut().find(|(c, _)| *c == w) {
            Some((_, n)) => *n += 1,
            None => counts.push((w, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.e.cmp(&a.0.e)).then(b.0.f.cmp(&a.0.f)));
    counts.truncate(params.max_combinations);
    let combinations: Vec<Combination> = counts.into_iter().map(|(c, _)| c).collect();

    let (est_bits, exc_frac) = if sampled_values == 0 {
        (0.0, 0.0)
    } else {
        (best_bits as f64 / sampled_values as f64, best_exceptions as f64 / sampled_values as f64)
    };

    FirstLevelOutcome {
        combinations,
        estimated_bits_per_value: est_bits,
        exception_fraction: exc_frac,
    }
}

/// Counters the §4.2 "Sampling Overhead" analysis reports.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SamplerStats {
    /// Vectors encoded with the decimal (non-rd) scheme.
    pub vectors_encoded: usize,
    /// Vectors whose second-level sampling was skipped because `k' == 1`.
    pub second_level_skipped: usize,
    /// Histogram over how many candidate combinations each vector tried
    /// (index = combinations tried; index 0 unused).
    pub combinations_tried: [usize; 8],
    /// Row-groups encoded with plain ALP.
    pub rowgroups_alp: usize,
    /// Row-groups that fell back to ALP_rd.
    pub rowgroups_rd: usize,
    /// Vectors whose row-group candidates all failed locally and that were
    /// re-searched individually (see `rescue_if_poor`).
    pub rescued_vectors: usize,
}

impl SamplerStats {
    /// Folds another accumulation into `self`. Every counter is a sum, so
    /// parallel workers can accumulate per-row-group partials and merge them
    /// at the join barrier in any order without changing the totals.
    pub fn merge(&mut self, other: &SamplerStats) {
        self.vectors_encoded += other.vectors_encoded;
        self.second_level_skipped += other.second_level_skipped;
        for (mine, theirs) in self.combinations_tried.iter_mut().zip(other.combinations_tried) {
            *mine += theirs;
        }
        self.rowgroups_alp += other.rowgroups_alp;
        self.rowgroups_rd += other.rowgroups_rd;
        self.rescued_vectors += other.rescued_vectors;
    }
}

/// Level-2 sampling: picks the combination for one vector from the row-group
/// candidates, with the greedy two-strikes early exit of §3.2.
pub fn second_level<F: AlpFloat>(
    vector: &[F],
    candidates: &[Combination],
    params: &SamplerParams,
    stats: &mut SamplerStats,
) -> Combination {
    stats.vectors_encoded += 1;
    let mut sample: Vec<F> = Vec::with_capacity(params.second_level_values);
    for idx in equidistant_indices(vector.len(), params.second_level_values) {
        sample.push(vector[idx]);
    }

    if candidates.len() <= 1 {
        stats.second_level_skipped += 1;
        stats.combinations_tried[1.min(candidates.len())] += 1;
        let combo = candidates.first().copied().unwrap_or(Combination { e: 0, f: 0 });
        return rescue_if_poor(&sample, combo, stats);
    }

    let mut best = candidates[0];
    let mut best_bits = usize::MAX;
    let mut worse_streak = 0usize;
    let mut tried = 0usize;
    for &c in candidates {
        tried += 1;
        let s = score_sample(&sample, c.e, c.f);
        if s.bits < best_bits {
            best = c;
            best_bits = s.bits;
            worse_streak = 0;
        } else {
            worse_streak += 1;
            if worse_streak == 2 {
                break;
            }
        }
    }
    stats.combinations_tried[tried.min(7)] += 1;
    rescue_if_poor(&sample, best, stats)
}

/// Robustness guard (deviation from the paper, see DESIGN.md): if the
/// row-group's candidates all fail on this particular vector — which happens
/// when the level-1 sample missed a locally different sub-population (e.g. a
/// burst of values inside a mostly-zero column) — fall back to a full search
/// on the vector's own sample. The guard costs one 32-value scoring pass per
/// vector and only triggers on pathological vectors.
fn rescue_if_poor<F: AlpFloat>(
    sample: &[F],
    combo: Combination,
    stats: &mut SamplerStats,
) -> Combination {
    let s = score_sample(sample, combo.e, combo.f);
    if s.exceptions * 4 > sample.len() {
        stats.rescued_vectors += 1;
        let (best, best_score) = full_search(sample);
        if best_score.bits < s.bits {
            return best;
        }
    }
    combo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decimals(precision: u32, count: usize) -> Vec<f64> {
        // i / 10^p — correctly rounded decimal-to-double (see DESIGN.md).
        let div = 10f64.powi(precision as i32);
        (0..count).map(|i| (i as f64 * 7.0 + 13.0) / div).collect()
    }

    #[test]
    fn sample_indices_are_strata_bounded_and_sorted() {
        for (len, count) in [(10, 3), (1024, 32), (1000, 7), (4096, 32)] {
            let idx = equidistant_indices(len, count);
            assert_eq!(idx.len(), count);
            let stride = len / count;
            for (i, &x) in idx.iter().enumerate() {
                assert!(x >= i * stride && x < (i + 1) * stride, "len {len} count {count} i {i}");
            }
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(equidistant_indices(2, 5), vec![0, 1]);
        assert_eq!(equidistant_indices(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn sample_indices_break_periodic_aliasing() {
        // With a plain stride of 32 on 1024 values, all samples share
        // index % 4; the jitter must hit several residue classes.
        let idx = equidistant_indices(1024, 32);
        let classes: std::collections::HashSet<usize> = idx.iter().map(|&i| i % 4).collect();
        assert!(classes.len() > 1, "{idx:?}");
    }

    #[test]
    fn full_search_finds_lossless_combo_for_decimals() {
        let sample = decimals(2, 32);
        let (combo, score) = full_search(&sample);
        assert_eq!(score.exceptions, 0, "combo {combo:?}");
        // Must at least neutralize 2 decimal places.
        assert!(combo.e as i32 - combo.f as i32 >= 2);
    }

    #[test]
    fn score_prefers_factor_that_shrinks_integers() {
        // Values like 123.00 (2 decimals of zeros): high factor shrinks d.
        let sample: Vec<f64> = (0..32).map(|i| (i * 100) as f64).collect();
        let with_factor = score_sample(&sample, 14, 14);
        let without_factor = score_sample(&sample, 14, 0);
        assert_eq!(with_factor.exceptions, 0);
        assert!(with_factor.bits < without_factor.bits);
    }

    #[test]
    fn first_level_converges_to_one_combo_on_uniform_data() {
        let rowgroup = decimals(3, 8 * 1024);
        let outcome = first_level(&rowgroup, &SamplerParams::default());
        assert!(!outcome.combinations.is_empty());
        assert_eq!(outcome.combinations.len(), 1, "{:?}", outcome.combinations);
        assert!(!outcome.should_use_rd::<f64>());
    }

    #[test]
    fn first_level_flags_real_doubles_for_rd() {
        // Full-precision values: essentially nothing round-trips.
        let rowgroup: Vec<f64> =
            (0..8192).map(|i| ((i as f64) + 0.1).sqrt().sin() * 1e-3).collect();
        let outcome = first_level(&rowgroup, &SamplerParams::default());
        assert!(outcome.should_use_rd::<f64>(), "{outcome:?}");
    }

    #[test]
    fn second_level_skips_when_single_candidate() {
        let mut stats = SamplerStats::default();
        let v = decimals(2, 1024);
        let combo = second_level(
            &v,
            &[Combination { e: 14, f: 12 }],
            &SamplerParams::default(),
            &mut stats,
        );
        assert_eq!(combo, Combination { e: 14, f: 12 });
        assert_eq!(stats.second_level_skipped, 1);
    }

    #[test]
    fn second_level_picks_better_candidate() {
        let mut stats = SamplerStats::default();
        let v = decimals(4, 1024); // needs >= 4 decimals of headroom
        let good = Combination { e: 14, f: 10 };
        let bad = Combination { e: 2, f: 0 }; // cannot represent 4 decimals
        let combo = second_level(&v, &[bad, good], &SamplerParams::default(), &mut stats);
        assert_eq!(combo, good);
    }

    #[test]
    fn paper_defaults() {
        let p = SamplerParams::default();
        assert_eq!(
            (
                p.vectors_per_rowgroup,
                p.sample_vectors,
                p.sample_values,
                p.max_combinations,
                p.second_level_values
            ),
            (100, 8, 32, 5, 32)
        );
    }
}
