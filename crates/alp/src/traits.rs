//! The [`AlpFloat`] abstraction that lets the same encoder handle `f64`
//! (the paper's main subject, §3) and `f32` (§4.4) without duplicating logic.

use core::fmt::Debug;
use core::ops::{Add, Mul, Sub};

/// A floating-point type ALP can compress.
///
/// The associated constants encode the IEEE 754 parameters the scheme depends
/// on: the exact-power-of-ten limit for the exponent search space and the
/// "sweet spot" constant used by the SIMD-friendly fast-rounding trick
/// (`2^(m-1) + 2^(m-2)` where `m` is the mantissa width + 1).
pub trait AlpFloat:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Send
    + Sync
    + Mul<Output = Self>
    + Add<Output = Self>
    + Sub<Output = Self>
    + 'static
{
    /// Total bit width of the type (64 or 32).
    const BITS: u32;
    /// Largest exponent `e` with an exactly representable `10^e`
    /// (21 for doubles, 10 for floats — §2.5 of the paper).
    const MAX_EXPONENT: u8;
    /// `2^51 + 2^52` for doubles, `2^22 + 2^23` for floats: adding and
    /// subtracting this constant rounds to nearest integer (§3.1).
    const SWEET: Self;
    /// Human-readable name for reports ("f64" / "f32").
    const NAME: &'static str;

    /// Exact positive power of ten `10^e`, `e <= MAX_EXPONENT`.
    fn f10(e: u8) -> Self;
    /// Inverse power of ten `10^-e` (inexact for most `e`, by design).
    fn if10(e: u8) -> Self;
    /// Raw bit pattern, zero-extended to 64 bits.
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`AlpFloat::to_bits_u64`]; the upper bits must be zero for `f32`.
    fn from_bits_u64(bits: u64) -> Self;
    /// Exact conversion from an encoded integer back to the float domain.
    fn from_i64(v: i64) -> Self;
    /// Saturating cast to `i64` (Rust `as` semantics: NaN → 0).
    fn to_i64_cast(self) -> i64;
    /// True iff the value is NaN — the "invalid" state of the fused-scan
    /// validity bitmaps.
    fn is_nan(self) -> bool;
}

/// `10^e` for `e ∈ 0..=22`, all exactly representable as doubles.
const F10_F64: [f64; 23] = [
    1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14,
    1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// `10^-e` for `e ∈ 0..=22`. Most are inexact; ALP relies on the inexactness
/// being too small to disturb the rounded integer (§2.6).
const IF10_F64: [f64; 23] = [
    1.0, 0.1, 0.01, 0.001, 0.0001, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13, 1e-14,
    1e-15, 1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22,
];

impl AlpFloat for f64 {
    const BITS: u32 = 64;
    const MAX_EXPONENT: u8 = 21;
    const SWEET: f64 = 6755399441055744.0; // 2^51 + 2^52
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn f10(e: u8) -> f64 {
        F10_F64[e as usize]
    }
    #[inline(always)]
    fn if10(e: u8) -> f64 {
        IF10_F64[e as usize]
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
    #[inline(always)]
    fn from_i64(v: i64) -> f64 {
        v as f64
    }
    #[inline(always)]
    fn to_i64_cast(self) -> i64 {
        self as i64
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

/// `10^e` for `e ∈ 0..=10`, all exactly representable as `f32`
/// (`5^10 = 9765625 < 2^24`).
const F10_F32: [f32; 11] = [1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6, 1e7, 1e8, 1e9, 1e10];

const IF10_F32: [f32; 11] = [1.0, 0.1, 0.01, 0.001, 0.0001, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10];

impl AlpFloat for f32 {
    const BITS: u32 = 32;
    const MAX_EXPONENT: u8 = 10;
    const SWEET: f32 = 12582912.0; // 2^22 + 2^23
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn f10(e: u8) -> f32 {
        F10_F32[e as usize]
    }
    #[inline(always)]
    fn if10(e: u8) -> f32 {
        IF10_F32[e as usize]
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> f32 {
        f32::from_bits(bits as u32)
    }
    #[inline(always)]
    fn from_i64(v: i64) -> f32 {
        v as f32
    }
    #[inline(always)]
    fn to_i64_cast(self) -> i64 {
        self as i64
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
}

/// Number of (exponent, factor) combinations in the full search space:
/// `Σ_{e=0..=MAX} (e+1)` — 253 for doubles (matching §2.6), 66 for floats.
pub const fn search_space_size<F: AlpFloat>() -> usize {
    let m = F::MAX_EXPONENT as usize;
    (m + 1) * (m + 2) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_ten_are_exact_f64() {
        let mut p: f64 = 1.0;
        for e in 0..=21u8 {
            assert_eq!(f64::f10(e), p, "10^{e}");
            p *= 10.0; // exact while p*10 < 2^53 * ulp scale; holds through 1e22
        }
    }

    #[test]
    fn powers_of_ten_are_exact_f32() {
        let mut p: f32 = 1.0;
        for e in 0..=10u8 {
            assert_eq!(f32::f10(e), p, "10^{e}");
            p *= 10.0;
        }
    }

    #[test]
    fn sweet_constants() {
        assert_eq!(f64::SWEET, (1u64 << 51) as f64 + (1u64 << 52) as f64);
        assert_eq!(f32::SWEET, (1u32 << 22) as f32 + (1u32 << 23) as f32);
    }

    #[test]
    fn search_space_matches_paper() {
        assert_eq!(search_space_size::<f64>(), 253);
        assert_eq!(search_space_size::<f32>(), 66);
    }

    #[test]
    fn bits_roundtrip_preserves_nan_payloads() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        assert_eq!(f64::from_bits_u64(weird.to_bits_u64()).to_bits(), weird.to_bits());
        let weird32 = f32::from_bits(0x7FC0_1234);
        assert_eq!(f32::from_bits_u64(weird32.to_bits_u64()).to_bits(), weird32.to_bits());
    }
}
