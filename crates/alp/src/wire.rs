//! Little-endian read/write helpers for the on-disk format.
//!
//! Replaces the external `bytes` crate (the build environment is offline)
//! with the five writers and six readers `format`/`stream` actually use.
//! Readers panic if the slice is too short — callers bounds-check first, the
//! same contract `bytes::Buf` had.

/// Appending little-endian writers for `Vec<u8>`.
pub(crate) trait PutExt {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
}

impl PutExt for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Consuming little-endian readers for `&[u8]` cursors.
pub(crate) trait GetExt {
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
}

impl GetExt for &[u8] {
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
    #[inline]
    // ANALYZER-ALLOW(no-panic): documented cursor contract (see module doc):
    // callers bounds-check remaining length before reading, as with bytes::Buf.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_slice(b"hd");
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_i64_le(-42);

        let mut cur: &[u8] = &buf;
        cur.advance(2);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cur.get_i64_le(), -42);
        assert!(cur.is_empty());
    }
}
