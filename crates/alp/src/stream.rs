//! Streaming compression over `std::io` — write a column row-group by
//! row-group without ever materializing it, and read it back incrementally.
//!
//! The stream format is a sequence of self-contained frames followed by a
//! commit footer:
//!
//! ```text
//! "ALPT" | bits:u8 | { frame_len:u32 | xxh64:u64 | row-group bytes }* | frame_len = 0
//! "ALPF" | values:u64 | rowgroups:u32 | xxh64:u64            (commit footer)
//! ```
//!
//! Each frame holds one serialized row-group (see [`crate::format`]) plus the
//! [XXH64](crate::hash) checksum of its bytes, so a reader needs only one
//! row-group of memory at a time, can stop early, and detects payload
//! corruption before handing data out. Because every frame is
//! length-prefixed, a reader can also *resync* past a damaged frame — see
//! [`ColumnReader::next_rowgroup_salvaged`] — losing exactly the row-groups
//! whose frames were hit.
//!
//! The commit footer is written only by [`ColumnWriter::finish`], so its
//! presence (checked by [`ColumnReader::is_committed`]) distinguishes a
//! cleanly finished stream from one whose writer died mid-row-group: a torn
//! write can never fabricate the footer's magic, counts, and checksum. Both
//! ends absorb *transient* I/O faults (`Interrupted`, `WouldBlock`, short
//! reads/writes) under a bounded [`RetryPolicy`](crate::io::RetryPolicy) and
//! surface hard faults as [`StreamError::Io`]; see [`crate::io`] for the
//! taxonomy.
//!
//! Legacy `"ALPS"` streams (the pre-checksum layout, identical but with no
//! `xxh64` field and no commit footer) are still read transparently.
//!
//! Writers configured with a [`ParityConfig`](crate::parity::ParityConfig)
//! additionally emit one `"ALPP"` parity frame per `group_size` row-group
//! frames (see [`crate::parity`]), which upgrades
//! [`ColumnReader::next_rowgroup_salvaged`] from *skip and report* to
//! *reconstruct, verify, and report repaired*: any single damaged frame per
//! group comes back byte-identical. Readers that do not understand parity
//! resync past the extra frames exactly as they would past damage, so the
//! layout stays backward-compatible.
//!
//! # Example
//! ```
//! use alp::stream::{ColumnReader, ColumnWriter};
//!
//! let mut file = Vec::new();
//! let mut writer = ColumnWriter::<f64, _>::new(&mut file);
//! for chunk in (0..500_000).map(|i| (i % 1000) as f64 / 10.0).collect::<Vec<_>>().chunks(37_000) {
//!     writer.push(chunk).unwrap();
//! }
//! let summary = writer.finish().unwrap();
//! assert_eq!(summary.values, 500_000);
//!
//! let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
//! let mut restored = Vec::new();
//! while let Some(values) = reader.next_rowgroup().unwrap() {
//!     restored.extend(values);
//! }
//! assert_eq!(restored.len(), 500_000);
//! ```

use std::io::{self, Read, Write};

use fastlanes::VECTOR_SIZE;

/// The pipelined ingest path (`alp::stream::pipeline`): same stream bytes,
/// with compression overlapped onto a worker pool. See [`crate::pipeline`].
pub use crate::pipeline;

use std::collections::VecDeque;

use crate::format::{read_rowgroup, write_rowgroup, FormatError};
use crate::hash::{xxh64, CHECKSUM_SEED};
use crate::io::{flush_retry, read_best_effort, read_full_retry, write_all_retry, RetryPolicy};
use crate::parity::{self, ParityAccumulator, ParityConfig};
use crate::rowgroup::{Compressor, RowGroup};
use crate::sampler::{ConfigError, SamplerParams};
use crate::traits::AlpFloat;
use crate::wire::{GetExt, PutExt};

/// Magic bytes of a streamed column (current, checksummed format).
pub const STREAM_MAGIC: &[u8; 4] = b"ALPT";

/// Magic bytes of the legacy, pre-checksum stream format.
pub const STREAM_MAGIC_V1: &[u8; 4] = b"ALPS";

/// Magic bytes of the commit footer a finished `"ALPT"` stream ends with.
pub const COMMIT_MAGIC: &[u8; 4] = b"ALPF";

/// Serialized size of the commit footer: magic + values + rowgroups + xxh64.
pub const COMMIT_FOOTER_LEN: usize = 4 + 8 + 4 + 8;

/// The commit footer of a cleanly finished stream: what the writer intended
/// the stream to contain, attested by an XXH64 over the footer fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFooter {
    /// Total values the writer emitted.
    pub values: u64,
    /// Row-group frames the writer emitted.
    pub rowgroups: u32,
}

/// On-disk stream flavor, decided by the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamVersion {
    /// `"ALPS"`: bare length-prefixed frames.
    V1,
    /// `"ALPT"`: every frame carries an XXH64 checksum of its body.
    V2,
}

/// Statistics returned by [`ColumnWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total values written.
    pub values: usize,
    /// Row-groups emitted.
    pub rowgroups: usize,
    /// Frame bytes written: every length prefix, per-frame checksum, and
    /// compressed body. Excludes the 5-byte stream header, the 4-byte
    /// terminator, and the `"ALPT"` commit footer.
    pub payload_bytes: usize,
    /// Every byte written to the sink — header, frames, terminator, and
    /// (for `"ALPT"` streams) the commit footer. After a successful
    /// [`ColumnWriter::finish`] this equals the sink's length exactly.
    pub total_bytes: usize,
}

/// Appends one complete frame — `len:u32 | xxh64:u64 (V2 only) | body` — for
/// `rg` to `out`. The single frame-encoding routine shared by the serial
/// [`ColumnWriter`] and the pipelined ingest workers, so both produce
/// byte-identical streams by construction.
pub(crate) fn encode_frame<F: AlpFloat>(rg: &RowGroup, version: StreamVersion, out: &mut Vec<u8>) {
    let prefix = match version {
        StreamVersion::V1 => 4,
        StreamVersion::V2 => 4 + 8,
    };
    let start = out.len();
    out.resize(start + prefix, 0);
    write_rowgroup::<F>(out, rg);
    let body_len = (out.len() - start - prefix) as u32;
    out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    if version == StreamVersion::V2 {
        let checksum = xxh64(&out[start + prefix..], CHECKSUM_SEED);
        out[start + 4..start + prefix].copy_from_slice(&checksum.to_le_bytes());
    }
}

/// Total byte length (prefix + body) of the frame at the head of `buf`, or
/// `None` when `buf` does not hold a whole frame.
fn frame_total_len(buf: &[u8], version: StreamVersion) -> Option<usize> {
    let body = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?) as usize;
    let prefix: usize = match version {
        StreamVersion::V1 => 4,
        StreamVersion::V2 => 4 + 8,
    };
    let total = prefix.checked_add(body)?;
    (total <= buf.len()).then_some(total)
}

/// Decodes one row-group frame body into its values; `None` when the body
/// does not parse as exactly one row-group.
fn decode_frame_values<F: AlpFloat>(body: &[u8]) -> Option<Vec<F>> {
    let mut slice = body;
    let rg = read_rowgroup::<F>(&mut slice).ok()?;
    if !slice.is_empty() {
        return None;
    }
    let len = rg.len();
    Some(crate::rowgroup::Compressed::<F>::from_rowgroups(vec![rg], len).decompress())
}

/// Incremental column writer: buffers up to one row-group, compresses and
/// frames it, and forwards the bytes to the sink.
pub struct ColumnWriter<F: AlpFloat, W: Write> {
    sink: W,
    compressor: Compressor,
    buffer: Vec<F>,
    /// Values buffered before a flush: `flush_rowgroups` full row-groups.
    flush_values: usize,
    header_written: bool,
    summary: StreamSummary,
    scratch: Vec<u8>,
    version: StreamVersion,
    retry: RetryPolicy,
    /// XOR erasure protection: when set, one `"ALPP"` parity frame is
    /// emitted per `group_size` row-group frames (see [`crate::parity`]).
    parity: Option<ParityAccumulator>,
}

impl<F: AlpFloat, W: Write> ColumnWriter<F, W> {
    /// Writer with the paper's default sampling parameters.
    pub fn new(sink: W) -> Self {
        Self::build(sink, Compressor::new(), StreamVersion::V2, 1)
    }

    /// Writer with custom sampling parameters.
    ///
    /// Returns [`ConfigError`] when any count in `params` is zero — notably a
    /// zero `vectors_per_rowgroup`, which would make [`ColumnWriter::push`]
    /// flush empty row-groups forever (it used to be silently clamped to 1).
    pub fn with_params(sink: W, params: SamplerParams) -> Result<Self, ConfigError> {
        Ok(Self::build(sink, Compressor::with_params(params)?, StreamVersion::V2, 1))
    }

    /// Writer that buffers `flush_rowgroups` full row-groups before each
    /// compress-and-flush, amortizing sink syscalls for small row-group
    /// configurations. The emitted stream is byte-identical to a writer
    /// flushing one row-group at a time.
    ///
    /// Returns [`ConfigError`] when `flush_rowgroups` is zero (the writer
    /// could never flush) or when any count in `params` is zero.
    pub fn with_flush_rowgroups(
        sink: W,
        params: SamplerParams,
        flush_rowgroups: usize,
    ) -> Result<Self, ConfigError> {
        if flush_rowgroups == 0 {
            return Err(ConfigError { param: "flush_rowgroups" });
        }
        Ok(Self::build(sink, Compressor::with_params(params)?, StreamVersion::V2, flush_rowgroups))
    }

    /// Writer emitting the legacy pre-checksum `"ALPS"` layout, for
    /// interoperability with readers that predate frame checksums.
    pub fn legacy(sink: W) -> Self {
        Self::build(sink, Compressor::new(), StreamVersion::V1, 1)
    }

    /// Writer with erasure protection: every `parity.group_size` row-group
    /// frames are followed by an XOR parity frame, so any *single* damaged
    /// frame per group is reconstructible on read (see [`crate::parity`]).
    ///
    /// Returns [`ConfigError`] when the group size is out of range.
    pub fn with_parity(sink: W, parity: ParityConfig) -> Result<Self, ConfigError> {
        Self::with_params_and_parity(sink, SamplerParams::default(), parity)
    }

    /// Writer with both custom sampling parameters and erasure protection.
    ///
    /// Returns [`ConfigError`] when any count in `params` is zero or the
    /// parity group size is out of range.
    pub fn with_params_and_parity(
        sink: W,
        params: SamplerParams,
        parity: ParityConfig,
    ) -> Result<Self, ConfigError> {
        parity.validate()?;
        let mut writer = Self::build(sink, Compressor::with_params(params)?, StreamVersion::V2, 1);
        writer.parity = Some(ParityAccumulator::new(parity.group_size));
        Ok(writer)
    }

    fn build(
        sink: W,
        compressor: Compressor,
        version: StreamVersion,
        flush_rowgroups: usize,
    ) -> Self {
        // Nonzero: every `Compressor` constructor validates its params, and
        // every caller of `build` validates `flush_rowgroups`.
        let flush_values = flush_rowgroups * compressor.params().vectors_per_rowgroup * VECTOR_SIZE;
        Self {
            sink,
            compressor,
            buffer: Vec::with_capacity(flush_values),
            flush_values,
            header_written: false,
            summary: StreamSummary { values: 0, rowgroups: 0, payload_bytes: 0, total_bytes: 0 },
            scratch: Vec::new(),
            version,
            retry: RetryPolicy::default(),
            parity: None,
        }
    }

    /// Replaces the transient-fault retry policy (default:
    /// [`RetryPolicy::default`]). Transient sink faults (`Interrupted`,
    /// `WouldBlock`, short writes) are absorbed up to the policy budget;
    /// hard faults always surface immediately.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Appends values; full row-groups are compressed and flushed eagerly.
    pub fn push(&mut self, values: &[F]) -> io::Result<()> {
        let mut rest = values;
        while !rest.is_empty() {
            let room = self.flush_values - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() == self.flush_values {
                self.flush_rowgroup()?;
            }
        }
        Ok(())
    }

    /// Flushes any buffered tail, writes the end-of-stream marker, and — for
    /// the current `"ALPT"` layout — commits the stream with a footer.
    ///
    /// The footer (`"ALPF" | values:u64 | rowgroups:u32 | xxh64:u64`) is the
    /// stream's commit record: a reader that finds it intact knows the writer
    /// finished cleanly, while a torn write — the process dying mid-frame —
    /// can never fabricate it. Legacy `"ALPS"` streams stay footer-free.
    pub fn finish(mut self) -> io::Result<StreamSummary> {
        if !self.buffer.is_empty() {
            self.flush_rowgroup()?;
        }
        self.ensure_header()?;
        // A partial final group still gets its parity frame, so the stream's
        // tail is as protected as its body.
        if let Some(acc) = self.parity.as_mut() {
            if let Some(pframe) = acc.take_frame() {
                write_all_retry(&mut self.sink, &pframe, &self.retry)?;
                self.summary.payload_bytes += pframe.len();
                self.summary.total_bytes += pframe.len();
            }
        }
        write_all_retry(&mut self.sink, &0u32.to_le_bytes(), &self.retry)?;
        self.summary.total_bytes += 4;
        if self.version == StreamVersion::V2 {
            let mut footer = Vec::with_capacity(COMMIT_FOOTER_LEN);
            footer.put_slice(COMMIT_MAGIC);
            footer.put_u64_le(self.summary.values as u64);
            footer.put_u32_le(self.summary.rowgroups as u32);
            let checksum = xxh64(&footer, CHECKSUM_SEED);
            footer.put_u64_le(checksum);
            write_all_retry(&mut self.sink, &footer, &self.retry)?;
            self.summary.total_bytes += footer.len();
        }
        flush_retry(&mut self.sink, &self.retry)?;
        Ok(self.summary)
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            let magic = match self.version {
                StreamVersion::V1 => STREAM_MAGIC_V1,
                StreamVersion::V2 => STREAM_MAGIC,
            };
            write_all_retry(&mut self.sink, magic, &self.retry)?;
            write_all_retry(&mut self.sink, &[F::BITS as u8], &self.retry)?;
            self.header_written = true;
            self.summary.total_bytes += magic.len() + 1;
        }
        Ok(())
    }

    /// Compresses the buffered values and writes one frame per resulting
    /// row-group. A flush spanning several row-groups (see
    /// [`ColumnWriter::with_flush_rowgroups`]) emits them all, in order.
    fn flush_rowgroup(&mut self) -> io::Result<()> {
        let compressed = self.compressor.compress(&self.buffer);
        let values = self.buffer.len();
        self.buffer.clear();
        self.scratch.clear();
        for rg in &compressed.rowgroups {
            encode_frame::<F>(rg, self.version, &mut self.scratch);
        }
        let frames = core::mem::take(&mut self.scratch);
        let result = self.commit_encoded_frames(&frames, values, compressed.rowgroups.len());
        self.scratch = frames;
        result
    }

    /// Writes pre-encoded frames (see [`encode_frame`]) to the sink and folds
    /// them into the summary. The commit seam shared with the pipelined
    /// ingest path: frames land on the sink whole and in order, under the
    /// writer's retry policy.
    pub(crate) fn commit_encoded_frames(
        &mut self,
        frames: &[u8],
        values: usize,
        rowgroups: usize,
    ) -> io::Result<()> {
        self.ensure_header()?;
        if self.parity.is_none() {
            write_all_retry(&mut self.sink, frames, &self.retry)?;
            self.summary.payload_bytes += frames.len();
            self.summary.total_bytes += frames.len();
        } else {
            // Walk the batch frame by frame so each parity frame lands
            // immediately after the group it closes — the layout is then
            // independent of flush batching and of the pipelined path, both
            // of which funnel through this seam.
            let mut rest = frames;
            while !rest.is_empty() {
                let Some(frame_len) = frame_total_len(rest, self.version) else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed encoded frame batch",
                    ));
                };
                let (frame, tail) = rest.split_at(frame_len);
                rest = tail;
                write_all_retry(&mut self.sink, frame, &self.retry)?;
                self.summary.payload_bytes += frame.len();
                self.summary.total_bytes += frame.len();
                if let Some(acc) = self.parity.as_mut() {
                    acc.absorb(frame);
                    if acc.is_full() {
                        if let Some(pframe) = acc.take_frame() {
                            write_all_retry(&mut self.sink, &pframe, &self.retry)?;
                            self.summary.payload_bytes += pframe.len();
                            self.summary.total_bytes += pframe.len();
                        }
                    }
                }
            }
        }
        self.summary.values += values;
        self.summary.rowgroups += rowgroups;
        Ok(())
    }

    /// Values a full flush buffer holds (`flush_rowgroups` row-groups' worth).
    pub(crate) fn flush_values(&self) -> usize {
        self.flush_values
    }

    /// The writer's compression parameters (for workers that encode frames
    /// on its behalf).
    pub(crate) fn compressor(&self) -> &Compressor {
        &self.compressor
    }

    /// The stream flavor this writer emits.
    pub(crate) fn version(&self) -> StreamVersion {
        self.version
    }
}

/// Frames retained while probing for parity frames in a stream that may not
/// carry any. A parity group holds at most 255 data frames, so a stream that
/// has parity always shows its first parity frame within this many frames.
const PARITY_PROBATION_FRAMES: usize = 256;

/// Byte cap on the same probation window, for streams with huge frames.
const PARITY_PROBATION_BYTES: usize = 64 << 20;

/// One frame held by the salvage engine between parity resolutions.
struct PendingFrame<F> {
    /// Whole frame bytes — length prefix, checksum, and body — as read.
    /// Intact frames feed XOR reconstruction of a damaged neighbor.
    bytes: Vec<u8>,
    /// Frame checksum verified (the bytes are what the writer wrote).
    verified: bool,
    /// Decoded values not yet handed to the caller (held while an earlier
    /// frame in the group is unresolved, to preserve stream order).
    values: Option<Vec<F>>,
    /// Values handed out (or the loss recorded): its data index is assigned.
    emitted: bool,
}

/// Incremental column reader: yields one decompressed row-group at a time.
pub struct ColumnReader<F: AlpFloat, R: Read> {
    source: R,
    frame: Vec<u8>,
    done: bool,
    version: StreamVersion,
    /// Index of the next *data* row-group (parity frames are not counted).
    next_index: usize,
    /// Row-group indices skipped by the salvage path.
    lost: Vec<usize>,
    /// Row-group indices the salvage path reconstructed from parity.
    repaired: Vec<usize>,
    /// Whether the stream's commit record was found intact (see
    /// [`ColumnReader::is_committed`]).
    committed: bool,
    /// The parsed commit footer, when one was found and verified.
    footer: Option<StreamFooter>,
    retry: RetryPolicy,
    /// Frames since the last resolved parity group (salvage engine state).
    window: Vec<PendingFrame<F>>,
    /// Bytes retained in `window`, for the probation cap.
    window_bytes: usize,
    /// Decoded row-groups ready to hand out, in stream order.
    pending: VecDeque<Vec<F>>,
    /// Parity group size, once learned from a verified parity frame.
    group_size: Option<usize>,
    /// Cleared when the probation window fills without a parity frame: the
    /// stream evidently carries none, so nothing is retained for repair.
    parity_possible: bool,
}

/// Errors produced while reading a stream.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid frame.
    Format(FormatError),
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Format(e) => write!(f, "stream format error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<FormatError> for StreamError {
    fn from(e: FormatError) -> Self {
        StreamError::Format(e)
    }
}

impl<F: AlpFloat, R: Read> ColumnReader<F, R> {
    /// Opens a stream, validating the header. Accepts both the current
    /// checksummed `"ALPT"` format and the legacy `"ALPS"` one.
    pub fn new(source: R) -> Result<Self, StreamError> {
        Self::with_retry_policy(source, RetryPolicy::default())
    }

    /// Like [`ColumnReader::new`], but with an explicit transient-fault
    /// retry policy covering every read, the 5-byte header included.
    pub fn with_retry_policy(mut source: R, retry: RetryPolicy) -> Result<Self, StreamError> {
        let mut header = [0u8; 5];
        read_full_retry(&mut source, &mut header, &retry)?;
        let version = Self::parse_header(&header)?;
        Ok(Self {
            source,
            frame: Vec::new(),
            done: false,
            version,
            next_index: 0,
            lost: Vec::new(),
            repaired: Vec::new(),
            committed: false,
            footer: None,
            retry,
            window: Vec::new(),
            window_bytes: 0,
            pending: VecDeque::new(),
            group_size: None,
            parity_possible: version == StreamVersion::V2,
        })
    }

    /// Validates the 5-byte stream header: the magic (either flavor) picks
    /// the [`StreamVersion`], and the element width must match `F`.
    fn parse_header(header: &[u8; 5]) -> Result<StreamVersion, StreamError> {
        let version = if &header[..4] == STREAM_MAGIC {
            StreamVersion::V2
        } else if &header[..4] == STREAM_MAGIC_V1 {
            StreamVersion::V1
        } else {
            return Err(StreamError::Format(FormatError::BadMagic));
        };
        if header[4] as u32 != F::BITS {
            return Err(StreamError::Format(FormatError::WidthMismatch {
                found: header[4],
                expected: F::BITS as u8,
            }));
        }
        Ok(version)
    }

    /// Replaces the transient-fault retry policy (default:
    /// [`RetryPolicy::default`]). Transient source faults (`Interrupted`,
    /// `WouldBlock`, short reads) are absorbed up to the policy budget; hard
    /// faults always surface as [`StreamError::Io`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Reads and decompresses the next row-group; `None` at end of stream.
    pub fn next_rowgroup(&mut self) -> Result<Option<Vec<F>>, StreamError> {
        match self.next_rowgroup_compressed()? {
            None => Ok(None),
            Some(rg) => {
                let len = rg.len();
                let compressed = crate::rowgroup::Compressed::<F>::from_rowgroups(vec![rg], len);
                Ok(Some(compressed.decompress()))
            }
        }
    }

    /// Reads the next row-group without decompressing it (for servers that
    /// relay or selectively decode).
    ///
    /// Errors after the frame was consumed in full (checksum mismatch, body
    /// parse failure) leave the source positioned at the next frame, which is
    /// what lets [`ColumnReader::next_rowgroup_salvaged`] resync.
    pub fn next_rowgroup_compressed(&mut self) -> Result<Option<RowGroup>, StreamError> {
        loop {
            if self.done {
                return Ok(None);
            }
            let mut len_bytes = [0u8; 4];
            read_full_retry(&mut self.source, &mut len_bytes, &self.retry)?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len == 0 {
                self.done = true;
                self.read_commit_footer();
                return Ok(None);
            }
            let mut stored_checksum = 0u64;
            if self.version == StreamVersion::V2 {
                let mut checksum_bytes = [0u8; 8];
                read_full_retry(&mut self.source, &mut checksum_bytes, &self.retry)?;
                stored_checksum = u64::from_le_bytes(checksum_bytes);
            }
            self.frame.resize(len, 0);
            read_full_retry(&mut self.source, &mut self.frame, &self.retry)?;
            // The frame is fully consumed from here on: every error below is
            // recoverable by reading the next frame.
            if self.version == StreamVersion::V2 {
                let computed = xxh64(&self.frame, CHECKSUM_SEED);
                if computed != stored_checksum {
                    let index = self.next_index;
                    self.next_index += 1;
                    return Err(StreamError::Format(FormatError::ChecksumMismatch {
                        rowgroup: index,
                        stored: stored_checksum,
                        computed,
                    }));
                }
                if parity::is_parity_body(&self.frame) {
                    // Erasure-protection frame, not a row-group: skip it
                    // without consuming a data index.
                    continue;
                }
            }
            self.next_index += 1;
            let mut slice: &[u8] = &self.frame;
            let rg = read_rowgroup::<F>(&mut slice)?;
            if !slice.is_empty() {
                return Err(StreamError::Format(FormatError::Corrupt("row-group frame length")));
            }
            return Ok(Some(rg));
        }
    }

    /// Like [`ColumnReader::next_rowgroup`], but skips damaged frames instead
    /// of failing — and, when the stream carries parity frames (see
    /// [`ColumnWriter::with_parity`]), *reconstructs* any single damaged
    /// frame per group, verifies the repaired frame's checksum, and records
    /// its index in [`ColumnReader::repaired_rowgroups`]. Frames that remain
    /// unrecoverable (two or more damaged in one group, or no parity at all)
    /// are recorded in [`ColumnReader::lost_rowgroups`]. A torn tail — the
    /// source ending mid-frame, where resync is impossible because the next
    /// frame boundary is gone — ends the walk with the cut frame recorded as
    /// lost, so the caller keeps exactly the committed prefix. Other I/O
    /// errors (hard faults, exhausted retry budgets) still surface as `Err`.
    ///
    /// Repair accounting assumes the stream is drained through this method;
    /// interleaving calls with the strict readers degrades repairs to losses
    /// (never the other way around).
    pub fn next_rowgroup_salvaged(&mut self) -> Result<Option<Vec<F>>, StreamError> {
        if self.version == StreamVersion::V1 {
            return self.next_rowgroup_salvaged_v1();
        }
        loop {
            if let Some(values) = self.pending.pop_front() {
                return Ok(Some(values));
            }
            if self.done {
                return Ok(None);
            }
            self.pump_salvage()?;
        }
    }

    /// The pre-parity salvage walk, still exact for legacy `"ALPS"` streams
    /// (whose frames carry no checksums, so there is nothing to repair
    /// against).
    fn next_rowgroup_salvaged_v1(&mut self) -> Result<Option<Vec<F>>, StreamError> {
        loop {
            let before = self.next_index;
            match self.next_rowgroup() {
                Ok(result) => return Ok(result),
                Err(StreamError::Io(e))
                    if e.kind() == io::ErrorKind::UnexpectedEof && !self.done =>
                {
                    // Torn write: the writer died mid-frame (or the tail was
                    // truncated). `is_committed` stays false — the terminator
                    // and footer were never reached.
                    self.lost.push(before);
                    self.done = true;
                    return Ok(None);
                }
                Err(StreamError::Io(e)) => return Err(StreamError::Io(e)),
                Err(StreamError::Format(_)) if self.next_index > before => {
                    // The frame was consumed but its contents were bad: note
                    // the loss and resync at the next length prefix.
                    self.lost.push(before);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads one frame in salvage mode: verified row-groups decode (and are
    /// handed out as soon as nothing earlier is unresolved), verified parity
    /// frames resolve the pending group, damaged frames wait in the window
    /// for reconstruction. Torn tails resolve whatever is pending and end
    /// the stream.
    fn pump_salvage(&mut self) -> Result<(), StreamError> {
        let mut len_bytes = [0u8; 4];
        if self.read_or_tear(&mut len_bytes)? {
            return Ok(());
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 {
            self.done = true;
            self.read_commit_footer();
            self.resolve_terminal();
            return Ok(());
        }
        let mut raw = vec![0u8; 4 + 8 + len];
        if let Some(head) = raw.get_mut(..4) {
            head.copy_from_slice(&len_bytes);
        }
        let expected = raw.len() - 4;
        let got = match raw.get_mut(4..) {
            Some(rest) => {
                read_best_effort(&mut self.source, rest, &self.retry).map_err(StreamError::Io)?
            }
            None => 0,
        };
        if got < expected {
            // Torn tail. The partial frame still identifies itself: a cut
            // that landed inside a *parity* frame costs no data, while a cut
            // inside a row-group frame is a (possibly repairable) loss.
            let body_prefix_known = 4 + got >= 16;
            let parity_tear =
                body_prefix_known && raw.get(12..16) == Some(parity::PARITY_MAGIC.as_slice());
            if !parity_tear {
                self.window.push(PendingFrame {
                    bytes: Vec::new(),
                    verified: false,
                    values: None,
                    emitted: false,
                });
            }
            self.done = true;
            self.resolve_terminal();
            return Ok(());
        }
        let stored = raw
            .get(4..12)
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        let body_checksum = raw.get(12..).map(|body| xxh64(body, CHECKSUM_SEED));
        let verified = body_checksum == Some(stored);

        if verified {
            if let Some(body) = raw.get(12..) {
                if parity::is_parity_body(body) {
                    match parity::parse_parity_body(body) {
                        Some(pb) => {
                            self.group_size = Some(pb.group_size);
                            self.parity_possible = true;
                            self.resolve_group(pb.count, pb.xor);
                            return Ok(());
                        }
                        None => {
                            // Checksummed but malformed parity body: nothing
                            // to resolve against; fall through as a frame
                            // that occupies no data slot.
                            return Ok(());
                        }
                    }
                }
            }
        }

        let values = if verified { raw.get(12..).and_then(decode_frame_values::<F>) } else { None };

        if !self.parity_possible {
            // Probation expired with no parity frame in sight: the stream
            // has none, so nothing is retained and damage is final.
            let idx = self.next_index;
            self.next_index += 1;
            match values {
                Some(v) => self.pending.push_back(v),
                None => self.lost.push(idx),
            }
            return Ok(());
        }

        let mut entry = PendingFrame { bytes: raw, verified, values, emitted: false };
        let holding = self.window.iter().any(|e| !e.emitted);
        if !holding && entry.verified {
            // Nothing unresolved ahead of this frame: hand it out (or record
            // the loss) now, keeping only its bytes for a later repair.
            let idx = self.next_index;
            self.next_index += 1;
            match entry.values.take() {
                Some(v) => self.pending.push_back(v),
                None => self.lost.push(idx),
            }
            entry.emitted = true;
        }
        self.window_bytes += entry.bytes.len();
        self.window.push(entry);
        self.enforce_window_bounds();
        Ok(())
    }

    /// Reads `buf` in full, or — on a torn tail — records the cut frame as
    /// damaged, resolves the pending window, and ends the stream. Returns
    /// `true` when the tail was torn.
    fn read_or_tear(&mut self, buf: &mut [u8]) -> Result<bool, StreamError> {
        match read_full_retry(&mut self.source, buf, &self.retry) {
            Ok(()) => Ok(false),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.window.push(PendingFrame {
                    bytes: Vec::new(),
                    verified: false,
                    values: None,
                    emitted: false,
                });
                self.done = true;
                self.resolve_terminal();
                Ok(true)
            }
            Err(e) => Err(StreamError::Io(e)),
        }
    }

    /// Caps salvage-window memory: a stream that never shows a parity frame
    /// within the probation window carries none (groups hold at most 255
    /// frames), and a stream whose parity frames are themselves repeatedly
    /// damaged is beyond the single-fault protection level.
    fn enforce_window_bounds(&mut self) {
        match self.group_size {
            Some(k) => {
                if self.window.len() >= 3 * (k + 1) {
                    // Two consecutive parity frames lost: resolve what
                    // position arithmetic still can, and start fresh.
                    let mut window = core::mem::take(&mut self.window);
                    self.window_bytes = 0;
                    self.settle_positional(&mut window, k);
                }
            }
            None => {
                if self.window.len() >= PARITY_PROBATION_FRAMES
                    || self.window_bytes >= PARITY_PROBATION_BYTES
                {
                    self.parity_possible = false;
                    let mut window = core::mem::take(&mut self.window);
                    self.window_bytes = 0;
                    self.settle_positional(&mut window, 0);
                }
            }
        }
    }

    /// Resolves the window against a verified parity frame covering its last
    /// `count` entries: a single damaged frame in the group is rebuilt by
    /// XOR, self-verified, and handed out in stream order.
    fn resolve_group(&mut self, count: usize, xor: &[u8]) {
        let mut window = core::mem::take(&mut self.window);
        self.window_bytes = 0;
        let group_start = window.len().saturating_sub(count);
        let (prefix, group) = window.split_at_mut(group_start);
        // Entries before the group belong to earlier groups whose parity
        // frame was itself damaged: position arithmetic settles them.
        let k = self.group_size.unwrap_or(0);
        self.settle_positional(prefix, k);
        // Frames the window never saw (reader started mid-stream or mixed
        // strict and salvaged reads) block reconstruction but damage nothing.
        let missing = count.saturating_sub(group.len());
        let damaged_count = group.iter().filter(|e| !e.verified).count();
        let mut repaired_values: Option<Vec<F>> = None;
        if missing == 0 && damaged_count == 1 {
            let intact: Vec<&[u8]> =
                group.iter().filter(|e| e.verified).map(|e| e.bytes.as_slice()).collect();
            if let Some(frame) = parity::try_repair_frame(xor, &intact) {
                repaired_values = frame.get(12..).and_then(decode_frame_values::<F>);
            }
        }
        for e in group.iter_mut() {
            if e.emitted {
                continue;
            }
            let idx = self.next_index;
            self.next_index += 1;
            if e.verified {
                match e.values.take() {
                    Some(v) => self.pending.push_back(v),
                    None => self.lost.push(idx),
                }
            } else if let Some(v) = repaired_values.take() {
                self.pending.push_back(v);
                self.repaired.push(idx);
            } else {
                self.lost.push(idx);
            }
            e.emitted = true;
        }
    }

    /// End-of-stream resolution: settle everything still pending by position
    /// arithmetic, then let a verified footer arbitrate — trailing "losses"
    /// in excess of its row-group count were parity frames, not data.
    fn resolve_terminal(&mut self) {
        let k = self.group_size.unwrap_or(0);
        let mut window = core::mem::take(&mut self.window);
        self.window_bytes = 0;
        self.settle_positional(&mut window, k);
        if let Some(f) = self.footer {
            let total = f.rowgroups as usize;
            while self.next_index > total && self.lost.last() == Some(&(self.next_index - 1)) {
                self.lost.pop();
                self.next_index -= 1;
            }
            self.committed = total == self.next_index;
        }
    }

    /// Settles entries without a resolving parity frame. Verified entries
    /// are data (parity frames never linger in the window); damaged entries
    /// are classified by their position within `k + 1`-frame chunks — one
    /// parity slot per chunk — and a damaged frame sitting in a parity slot
    /// costs no data. With `k == 0` (no parity knowledge) every damaged
    /// frame is a data loss, the pre-parity behavior.
    fn settle_positional(&mut self, entries: &mut [PendingFrame<F>], k: usize) {
        let mut pos = 0usize;
        for e in entries.iter_mut() {
            let parity_slot = k > 0 && pos == k;
            if parity_slot {
                pos = 0;
            } else {
                pos += 1;
            }
            if e.emitted {
                continue;
            }
            if e.verified {
                let idx = self.next_index;
                self.next_index += 1;
                match e.values.take() {
                    Some(v) => self.pending.push_back(v),
                    None => self.lost.push(idx),
                }
            } else if !parity_slot {
                let idx = self.next_index;
                self.next_index += 1;
                self.lost.push(idx);
            }
            e.emitted = true;
        }
    }

    /// Row-group indices skipped so far by
    /// [`ColumnReader::next_rowgroup_salvaged`].
    pub fn lost_rowgroups(&self) -> &[usize] {
        &self.lost
    }

    /// Row-group indices reconstructed from parity so far by
    /// [`ColumnReader::next_rowgroup_salvaged`]. Repaired row-groups are
    /// byte-identical to what the writer emitted (the reconstruction is
    /// verified against the frame's own checksum before use).
    pub fn repaired_rowgroups(&self) -> &[usize] {
        &self.repaired
    }

    /// Whether the stream's commit record was found intact. Meaningful once
    /// the stream has been drained (a `None` from one of the `next_*`
    /// methods): `true` means the writer's [`ColumnWriter::finish`] ran to
    /// completion and its row-group count matches what this reader walked.
    /// In-place frame damage does *not* clear the flag — a committed stream
    /// with losses was written whole and corrupted later.
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// The verified commit footer, when the stream had one. Like
    /// [`ColumnReader::is_committed`], populated once the terminator is
    /// reached; legacy `"ALPS"` streams never carry one.
    pub fn footer(&self) -> Option<StreamFooter> {
        self.footer
    }

    /// Best-effort read of the commit record after the terminator frame.
    /// Any defect — missing bytes, wrong magic, checksum mismatch — leaves
    /// the stream uncommitted rather than erroring: an absent footer is the
    /// *signal* a torn write leaves behind, not a failure of this reader.
    fn read_commit_footer(&mut self) {
        if self.version == StreamVersion::V1 {
            // The legacy layout has no footer: its terminator is the only
            // commit record there is.
            self.committed = true;
            return;
        }
        let mut raw = [0u8; COMMIT_FOOTER_LEN];
        if read_full_retry(&mut self.source, &mut raw, &self.retry).is_err() {
            return;
        }
        let Some(attested) = raw.get(..COMMIT_FOOTER_LEN - 8) else { return };
        let mut cursor: &[u8] = &raw;
        if cursor.get(..4) != Some(COMMIT_MAGIC.as_slice()) {
            return;
        }
        cursor.advance(4);
        let values = cursor.get_u64_le();
        let rowgroups = cursor.get_u32_le();
        let stored = cursor.get_u64_le();
        if xxh64(attested, CHECKSUM_SEED) != stored {
            return;
        }
        self.footer = Some(StreamFooter { values, rowgroups });
        self.committed = rowgroups as usize == self.next_index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_roundtrip(data: &[f64], chunk: usize) {
        assert!(chunk > 0, "test chunking granularity must be nonzero");
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut file);
        for c in data.chunks(chunk) {
            writer.push(c).unwrap();
        }
        let summary = writer.finish().unwrap();
        assert_eq!(summary.values, data.len());
        assert_eq!(summary.total_bytes, file.len());
        assert_eq!(summary.total_bytes, 5 + summary.payload_bytes + 4 + COMMIT_FOOTER_LEN);

        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup().unwrap() {
            restored.extend(values);
        }
        assert_eq!(restored.len(), data.len());
        for (a, b) in data.iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn roundtrip_various_chunkings() {
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 999) as f64) / 4.0).collect();
        for chunk in [1usize << 20, 102_400, 1024, 999, 37] {
            stream_roundtrip(&data, chunk);
        }
    }

    #[test]
    fn zero_rowgroup_config_is_rejected_with_typed_error() {
        let params = SamplerParams { vectors_per_rowgroup: 0, ..SamplerParams::default() };
        let sink: Vec<u8> = Vec::new();
        let err = match ColumnWriter::<f64, _>::with_params(sink, params) {
            Err(e) => e,
            Ok(_) => panic!("zero vectors_per_rowgroup must be rejected"),
        };
        assert_eq!(err.param, "vectors_per_rowgroup");
    }

    #[test]
    fn custom_params_still_roundtrip() {
        let params = SamplerParams { vectors_per_rowgroup: 3, ..SamplerParams::default() };
        let data: Vec<f64> = (0..10_000).map(|i| (i % 777) as f64 / 4.0).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::with_params(&mut file, params).unwrap();
        writer.push(&data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.rowgroups, 10_000usize.div_ceil(3 * VECTOR_SIZE));
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup().unwrap() {
            restored.extend(values);
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn empty_stream() {
        let mut file = Vec::new();
        let writer = ColumnWriter::<f64, _>::new(&mut file);
        let summary = writer.finish().unwrap();
        assert_eq!(summary.values, 0);
        assert_eq!(summary.rowgroups, 0);
        assert_eq!(summary.payload_bytes, 0);
        assert_eq!(summary.total_bytes, file.len());
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        assert!(reader.next_rowgroup().unwrap().is_none());
    }

    /// `finish()` on a never-pushed writer emits a *committed* zero-value
    /// stream — that is intended behavior, pinned here for the current
    /// `"ALPT"` layout: the footer attests to zero values and zero
    /// row-groups, and draining yields `None` without error.
    #[test]
    fn never_pushed_v2_commits_an_empty_stream() {
        let mut file = Vec::new();
        let writer = ColumnWriter::<f64, _>::new(&mut file);
        writer.finish().unwrap();
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        assert!(reader.next_rowgroup().unwrap().is_none());
        assert!(reader.is_committed());
        assert_eq!(reader.footer(), Some(StreamFooter { values: 0, rowgroups: 0 }));
        // Draining again stays `None` without error.
        assert!(reader.next_rowgroup().unwrap().is_none());
    }

    /// Same pin for the legacy `"ALPS"` layout: the terminator alone commits
    /// it, and it never carries a footer.
    #[test]
    fn never_pushed_v1_commits_an_empty_stream() {
        let mut file = Vec::new();
        let writer = ColumnWriter::<f64, _>::legacy(&mut file);
        let summary = writer.finish().unwrap();
        assert_eq!(summary.total_bytes, file.len());
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        assert!(reader.next_rowgroup().unwrap().is_none());
        assert!(reader.is_committed());
        assert_eq!(reader.footer(), None);
        assert!(reader.next_rowgroup().unwrap().is_none());
    }

    /// Regression for the byte-accounting bug: `total_bytes` must equal the
    /// sink length exactly — header, frames, terminator, and footer all
    /// included — for both stream versions, and `payload_bytes` must cover
    /// exactly the frame bytes between header and terminator.
    #[test]
    fn summary_accounting_matches_sink_length() {
        let data: Vec<f64> = (0..150_000).map(|i| ((i % 777) as f64) / 8.0).collect();

        let mut v2 = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut v2);
        writer.push(&data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.total_bytes, v2.len());
        assert_eq!(summary.payload_bytes, v2.len() - 5 - 4 - COMMIT_FOOTER_LEN);

        let mut v1 = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::legacy(&mut v1);
        writer.push(&data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.total_bytes, v1.len());
        assert_eq!(summary.payload_bytes, v1.len() - 5 - 4);
    }

    #[test]
    fn zero_flush_rowgroups_is_rejected_with_typed_error() {
        let sink: Vec<u8> = Vec::new();
        let err =
            match ColumnWriter::<f64, _>::with_flush_rowgroups(sink, SamplerParams::default(), 0) {
                Err(e) => e,
                Ok(_) => panic!("zero flush_rowgroups must be rejected"),
            };
        assert_eq!(err.param, "flush_rowgroups");
    }

    /// A flush spanning several row-groups must emit one frame per row-group
    /// and stay byte-identical to the one-row-group-per-flush writer — the
    /// invariant `flush_rowgroup` used to only `debug_assert!`.
    #[test]
    fn multi_rowgroup_flushes_match_serial_writer_bytes() {
        let params = SamplerParams { vectors_per_rowgroup: 3, ..SamplerParams::default() };
        // 4.5 row-groups of data: full flushes of 3 row-groups plus a ragged
        // tail flush that itself spans more than one row-group.
        let data: Vec<f64> =
            (0..3 * VECTOR_SIZE * 4 + 1536).map(|i| (i % 555) as f64 / 4.0).collect();

        let mut serial = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::with_params(&mut serial, params).unwrap();
        writer.push(&data).unwrap();
        let serial_summary = writer.finish().unwrap();

        let mut batched = Vec::new();
        let mut writer =
            ColumnWriter::<f64, _>::with_flush_rowgroups(&mut batched, params, 3).unwrap();
        writer.push(&data).unwrap();
        let batched_summary = writer.finish().unwrap();

        assert_eq!(batched, serial);
        assert_eq!(batched_summary, serial_summary);
        assert_eq!(batched_summary.total_bytes, batched.len());
        assert_eq!(batched_summary.rowgroups, 5);
    }

    #[test]
    fn mixed_schemes_stream() {
        let mut data: Vec<f64> = (0..102_400).map(|i| (i % 100) as f64 / 10.0).collect();
        data.extend((0..102_400).map(|i| ((i as f64) * 0.317).sin() * 1e-6));
        stream_roundtrip(&data, 50_000);
    }

    #[test]
    fn f32_stream() {
        let data: Vec<f32> = (0..150_000).map(|i| (i % 512) as f32 / 8.0).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f32, _>::new(&mut file);
        writer.push(&data).unwrap();
        writer.finish().unwrap();
        let mut reader = ColumnReader::<f32, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup().unwrap() {
            restored.extend(values);
        }
        assert_eq!(restored, data);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut file = Vec::new();
        let writer = ColumnWriter::<f32, _>::new(&mut file);
        writer.finish().unwrap();
        assert!(matches!(
            ColumnReader::<f64, _>::new(&file[..]),
            Err(StreamError::Format(FormatError::WidthMismatch { .. }))
        ));
    }

    #[test]
    fn current_streams_use_checksummed_magic() {
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut file);
        writer.push(&[1.0, 2.0, 3.0]).unwrap();
        writer.finish().unwrap();
        assert_eq!(&file[..4], STREAM_MAGIC);
        assert_eq!(&file[..4], b"ALPT");
    }

    /// Byte offset of the first frame's body (after the 5-byte stream header
    /// and the frame's 4-byte length + 8-byte checksum).
    const FIRST_BODY: usize = 5 + 4 + 8;

    fn two_rowgroup_stream() -> (Vec<f64>, Vec<u8>) {
        let data: Vec<f64> = (0..150_000).map(|i| ((i % 777) as f64) / 8.0).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut file);
        writer.push(&data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.rowgroups, 2);
        (data, file)
    }

    #[test]
    fn flipped_payload_bit_is_caught_by_frame_checksum() {
        let (_, mut file) = two_rowgroup_stream();
        file[FIRST_BODY + 100] ^= 0x10;
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        match reader.next_rowgroup() {
            Err(StreamError::Format(FormatError::ChecksumMismatch { rowgroup, .. })) => {
                assert_eq!(rowgroup, 0);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn salvage_reader_skips_damaged_frame_and_reports_it() {
        let (data, mut file) = two_rowgroup_stream();
        let rowgroup_len = 102_400; // default vectors_per_rowgroup * VECTOR_SIZE
        file[FIRST_BODY + 100] ^= 0x10;
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert_eq!(reader.lost_rowgroups(), &[0]);
        // Everything except the damaged first row-group comes back bit-exact.
        assert_eq!(restored.len(), data.len() - rowgroup_len);
        for (a, b) in data[rowgroup_len..].iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn salvage_on_clean_stream_loses_nothing() {
        let (data, file) = two_rowgroup_stream();
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert!(reader.lost_rowgroups().is_empty());
        assert_eq!(restored.len(), data.len());
    }

    #[test]
    fn legacy_v1_streams_still_read() {
        let data: Vec<f64> = (0..150_000).map(|i| (i % 333) as f64 / 2.0).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::legacy(&mut file);
        writer.push(&data).unwrap();
        writer.finish().unwrap();
        assert_eq!(&file[..4], b"ALPS");

        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup().unwrap() {
            restored.extend(values);
        }
        assert_eq!(restored.len(), data.len());
        for (a, b) in data.iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn clean_stream_is_committed_with_footer() {
        let (data, file) = two_rowgroup_stream();
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        assert!(!reader.is_committed(), "commit is only known once drained");
        while reader.next_rowgroup().unwrap().is_some() {}
        assert!(reader.is_committed());
        let footer = reader.footer().expect("V2 stream must carry a footer");
        assert_eq!(footer.values, data.len() as u64);
        assert_eq!(footer.rowgroups, 2);
    }

    #[test]
    fn torn_stream_salvages_committed_prefix() {
        let (data, file) = two_rowgroup_stream();
        let rowgroup_len = 102_400;
        // Cut inside the second frame's payload: the writer "died" mid-frame.
        let cut = file.len() - COMMIT_FOOTER_LEN - 4 - 1000;
        let mut reader = ColumnReader::<f64, _>::new(&file[..cut]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert!(!reader.is_committed());
        assert!(reader.footer().is_none());
        assert_eq!(reader.lost_rowgroups(), &[1]);
        assert_eq!(restored.len(), rowgroup_len);
        for (a, b) in data[..rowgroup_len].iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn torn_footer_recovers_all_data_but_stays_uncommitted() {
        let (data, file) = two_rowgroup_stream();
        // Cut mid-footer: every frame is intact but the commit record is torn.
        let cut = file.len() - 1;
        let mut reader = ColumnReader::<f64, _>::new(&file[..cut]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert!(reader.lost_rowgroups().is_empty());
        assert_eq!(restored.len(), data.len());
        assert!(!reader.is_committed());
        assert!(reader.footer().is_none());
    }

    #[test]
    fn corrupted_footer_checksum_stays_uncommitted() {
        let (_, mut file) = two_rowgroup_stream();
        let last = file.len() - 1;
        file[last] ^= 0x01;
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        while reader.next_rowgroup().unwrap().is_some() {}
        assert!(!reader.is_committed());
        assert!(reader.footer().is_none());
    }

    #[test]
    fn damaged_midframe_stream_is_still_committed() {
        let (_, mut file) = two_rowgroup_stream();
        file[FIRST_BODY + 100] ^= 0x10;
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        while reader.next_rowgroup_salvaged().unwrap().is_some() {}
        assert_eq!(reader.lost_rowgroups(), &[0]);
        // The writer finished cleanly; the damage happened in place.
        assert!(reader.is_committed());
        assert_eq!(reader.footer().unwrap().rowgroups, 2);
    }

    #[test]
    fn legacy_v1_commits_at_terminator() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 2.0).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::legacy(&mut file);
        writer.push(&data).unwrap();
        writer.finish().unwrap();
        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        while reader.next_rowgroup().unwrap().is_some() {}
        assert!(reader.is_committed());
        assert!(reader.footer().is_none(), "V1 streams carry no footer");
    }

    #[test]
    fn transient_read_faults_are_absorbed() {
        use crate::io::{FaultPlan, FaultyRead};
        let (data, file) = two_rowgroup_stream();
        let plan = FaultPlan::clean(7).with_transients(4).with_short_ops(3);
        let faulty = FaultyRead::new(&file[..], plan);
        let mut reader = ColumnReader::<f64, _>::new(faulty).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert!(reader.lost_rowgroups().is_empty());
        assert!(reader.is_committed());
        assert_eq!(restored.len(), data.len());
        for (a, b) in data.iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transient_write_faults_are_absorbed() {
        use crate::io::{FaultPlan, FaultyWrite};
        let data: Vec<f64> = (0..150_000).map(|i| ((i % 777) as f64) / 8.0).collect();
        let mut clean = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut clean);
        writer.push(&data).unwrap();
        writer.finish().unwrap();

        // Retries make the faulty sink byte-identical to the clean one.
        let plan = FaultPlan::clean(11).with_transients(4).with_short_ops(3);
        let mut sink = FaultyWrite::new(Vec::new(), plan);
        let mut writer = ColumnWriter::<f64, _>::new(&mut sink);
        writer.push(&data).unwrap();
        writer.finish().unwrap();
        assert_eq!(sink.into_inner(), clean);
    }

    /// Writes `data` as a parity-protected stream with `vectors_per_rowgroup
    /// = 2` (small row-groups, many frames) and the given group size.
    fn parity_stream(data: &[f64], group_size: usize) -> Vec<u8> {
        let params = SamplerParams { vectors_per_rowgroup: 2, ..SamplerParams::default() };
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::with_params_and_parity(
            &mut file,
            params,
            ParityConfig { group_size },
        )
        .unwrap();
        writer.push(data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.total_bytes, file.len());
        file
    }

    /// Byte ranges `(start, len)` of every frame in a V2 stream, in order.
    fn frame_spans(file: &[u8]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut at = 5;
        loop {
            let len = u32::from_le_bytes(file[at..at + 4].try_into().unwrap()) as usize;
            if len == 0 {
                break;
            }
            spans.push((at, 12 + len));
            at += 12 + len;
        }
        spans
    }

    /// Whether the frame at `span` is a parity frame.
    fn is_parity_span(file: &[u8], span: (usize, usize)) -> bool {
        file[span.0 + 12..span.0 + span.1].starts_with(parity::PARITY_MAGIC.as_slice())
    }

    fn drain_salvaged(file: &[u8]) -> (Vec<f64>, Vec<usize>, Vec<usize>, bool) {
        let mut reader = ColumnReader::<f64, _>::new(file).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        (
            restored,
            reader.lost_rowgroups().to_vec(),
            reader.repaired_rowgroups().to_vec(),
            reader.is_committed(),
        )
    }

    #[test]
    fn parity_stream_reads_clean_through_strict_and_salvage_paths() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 333) as f64 / 4.0).collect();
        let file = parity_stream(&data, 4);
        let spans = frame_spans(&file);
        let parity_frames = spans.iter().filter(|&&s| is_parity_span(&file, s)).count();
        let data_frames = spans.len() - parity_frames;
        // 20_000 values / 2048 per row-group = 10 frames → 2 full groups + 1
        // partial (tail) group → 3 parity frames.
        assert_eq!(data_frames, 10);
        assert_eq!(parity_frames, 3);

        let mut reader = ColumnReader::<f64, _>::new(&file[..]).unwrap();
        let mut strict = Vec::new();
        while let Some(values) = reader.next_rowgroup().unwrap() {
            strict.extend(values);
        }
        assert_eq!(strict, data);
        assert!(reader.is_committed());
        assert_eq!(reader.footer().unwrap().rowgroups, 10);

        let (salvaged, lost, repaired, committed) = drain_salvaged(&file);
        assert_eq!(salvaged, data);
        assert!(lost.is_empty());
        assert!(repaired.is_empty());
        assert!(committed);
    }

    #[test]
    fn single_damaged_frame_per_group_is_repaired_byte_identically() {
        let data: Vec<f64> = (0..20_000).map(|i| ((i % 777) as f64) / 8.0).collect();
        let file = parity_stream(&data, 4);
        let spans = frame_spans(&file);
        let data_spans: Vec<(usize, usize)> =
            spans.iter().copied().filter(|&s| !is_parity_span(&file, s)).collect();
        // One damaged data frame in each of the three groups, including the
        // partial tail group — every one must come back repaired.
        for &victim in &[1usize, 6, 9] {
            let mut hurt = file.clone();
            let (start, len) = data_spans[victim];
            hurt[start + len / 2] ^= 0x40;
            let (restored, lost, repaired, committed) = drain_salvaged(&hurt);
            assert_eq!(restored, data, "victim {victim} must restore bit-exactly");
            assert!(lost.is_empty(), "victim {victim} must not be lost");
            assert_eq!(repaired, vec![victim]);
            assert!(committed);
        }
    }

    #[test]
    fn two_damaged_frames_in_one_group_degrade_to_loss_report() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 555) as f64 / 2.0).collect();
        let file = parity_stream(&data, 4);
        let spans = frame_spans(&file);
        let data_spans: Vec<(usize, usize)> =
            spans.iter().copied().filter(|&s| !is_parity_span(&file, s)).collect();
        let mut hurt = file.clone();
        for &victim in &[4usize, 6] {
            let (start, len) = data_spans[victim];
            hurt[start + len / 2] ^= 0x08;
        }
        let (restored, lost, repaired, committed) = drain_salvaged(&hurt);
        assert_eq!(lost, vec![4, 6]);
        assert!(repaired.is_empty());
        assert!(committed, "in-place damage does not un-commit a stream");
        // Everything outside the two lost row-groups is intact and ordered.
        let rg = 2 * VECTOR_SIZE;
        let mut expect = Vec::new();
        for (i, chunk) in data.chunks(rg).enumerate() {
            if i != 4 && i != 6 {
                expect.extend_from_slice(chunk);
            }
        }
        assert_eq!(restored, expect);
    }

    #[test]
    fn damaged_parity_frame_costs_no_data() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 999) as f64 / 16.0).collect();
        let file = parity_stream(&data, 4);
        let spans = frame_spans(&file);
        let parity_spans: Vec<(usize, usize)> =
            spans.iter().copied().filter(|&s| is_parity_span(&file, s)).collect();
        for &(start, len) in &parity_spans {
            let mut hurt = file.clone();
            hurt[start + len / 2] ^= 0x01;
            let (restored, lost, repaired, committed) = drain_salvaged(&hurt);
            assert_eq!(restored, data);
            assert!(lost.is_empty());
            assert!(repaired.is_empty());
            assert!(committed);
        }
    }

    #[test]
    fn truncation_into_tail_parity_keeps_all_data() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 444) as f64 / 4.0).collect();
        let file = parity_stream(&data, 4);
        let spans = frame_spans(&file);
        let &(pstart, plen) = spans.iter().rfind(|&&s| is_parity_span(&file, s)).unwrap();
        // Cut mid-way through the final (tail) parity frame: every data
        // frame is intact, so nothing is lost — but the commit record is
        // gone, so the stream reads as uncommitted.
        let cut = pstart + plen / 2;
        let mut reader = ColumnReader::<f64, _>::new(&file[..cut]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert_eq!(restored, data);
        assert!(reader.lost_rowgroups().is_empty());
        assert!(!reader.is_committed());
    }

    #[test]
    fn parity_accounting_matches_sink_length() {
        let data: Vec<f64> = (0..20_000).map(|i| (i % 321) as f64 / 2.0).collect();
        let params = SamplerParams { vectors_per_rowgroup: 2, ..SamplerParams::default() };
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::with_params_and_parity(
            &mut file,
            params,
            ParityConfig { group_size: 4 },
        )
        .unwrap();
        writer.push(&data).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.total_bytes, file.len());
        assert_eq!(summary.total_bytes, 5 + summary.payload_bytes + 4 + COMMIT_FOOTER_LEN);
        // Parity frames count as payload bytes but never as row-groups.
        assert_eq!(summary.rowgroups, 10);
        assert_eq!(summary.values, data.len());
    }

    #[test]
    fn zero_parity_group_size_is_rejected_with_typed_error() {
        let sink: Vec<u8> = Vec::new();
        let err = match ColumnWriter::<f64, _>::with_parity(sink, ParityConfig { group_size: 0 }) {
            Err(e) => e,
            Ok(_) => panic!("zero parity group size must be rejected"),
        };
        assert_eq!(err.param, "parity group_size");
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let data: Vec<f64> = (0..120_000).map(|i| i as f64).collect();
        let mut file = Vec::new();
        let mut writer = ColumnWriter::<f64, _>::new(&mut file);
        writer.push(&data).unwrap();
        writer.finish().unwrap();
        let cut = file.len() / 2;
        let mut reader = ColumnReader::<f64, _>::new(&file[..cut]).unwrap();
        let result = loop {
            match reader.next_rowgroup() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err());
    }
}
