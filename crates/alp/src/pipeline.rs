//! Pipelined column ingestion: overlap row-group compression with source
//! fill, keeping the on-disk stream byte-identical to the serial writer.
//!
//! [`crate::stream::ColumnWriter::push`] compresses every full row-group
//! inline on the caller's thread, so loading and compressing serialize even
//! though ALP compression is embarrassingly parallel across row-groups
//! (two-level sampling is strictly row-group-local). The
//! [`PipelinedColumnWriter`] splits that loop in two:
//!
//! - the **caller thread** fills row-group buffers from the source and
//!   commits finished frames to the sink, in row-group order, through the
//!   serial writer's own retry machinery;
//! - a small **worker pool** compresses and frame-encodes row-groups, each
//!   inside the morsel scheduler's panic containment seam
//!   ([`crate::par::run_morsels_contained`]).
//!
//! Three invariants make the overlap safe:
//!
//! 1. **Ordered commit.** Frames reach the sink strictly in row-group
//!    sequence order, whole, so the `"ALPT"` layout — header, frames,
//!    terminator, commit footer — is byte-identical to the serial
//!    [`ColumnWriter`](crate::stream::ColumnWriter) at every thread count
//!    and pipeline depth. Both paths share one frame encoder
//!    ([`crate::stream`]'s `encode_frame`), so identity holds by
//!    construction, not by luck.
//! 2. **Bounded in-flight frames.** At most `depth` row-groups may be
//!    queued or compressing at once; a full pipeline makes
//!    [`PipelinedColumnWriter::push`] block committing finished frames
//!    (back-pressure) rather than queueing without bound.
//! 3. **Quarantined panics.** A worker panic is contained at the morsel
//!    boundary and surfaces as [`IngestError::Poisoned`] from `push` or
//!    `finish` — the poisoned frame is never written, so the sink holds a
//!    committed-prefix-only torn tail, exactly the failure shape
//!    [`ColumnReader::next_rowgroup_salvaged`](crate::stream::ColumnReader::next_rowgroup_salvaged)
//!    already recovers.
//!
//! Transient sink faults are absorbed by the inner writer's
//! [`RetryPolicy`](crate::io::RetryPolicy) exactly as in the serial path:
//! all sink I/O stays on the caller thread.
//!
//! # Example
//! ```
//! use alp::pipeline::{PipelineConfig, PipelinedColumnWriter};
//!
//! let mut file = Vec::new();
//! let config = PipelineConfig { threads: 4, depth: 2, ..PipelineConfig::default() };
//! let mut writer = PipelinedColumnWriter::<f64, _>::new(&mut file, config);
//! for chunk in (0..400_000).map(|i| (i % 1000) as f64 / 10.0).collect::<Vec<_>>().chunks(37_000) {
//!     writer.push(chunk).unwrap();
//! }
//! let summary = writer.finish().unwrap();
//! assert_eq!(summary.values, 400_000);
//! assert_eq!(summary.total_bytes, file.len());
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::io::RetryPolicy;
use crate::par::{resolve_threads, run_morsels_contained, MorselFailure};
use crate::parity::ParityConfig;
use crate::rowgroup::Compressor;
use crate::sampler::{ConfigError, SamplerParams};
use crate::stream::{encode_frame, ColumnWriter, StreamSummary, StreamVersion};
use crate::traits::AlpFloat;

/// Environment variable consulted by [`resolve_pipeline_depth`] when no
/// explicit depth is requested.
pub const PIPELINE_DEPTH_ENV: &str = "ALP_PIPELINE_DEPTH";

/// Default bound on in-flight row-groups: one compressing, one queued —
/// enough to overlap fill with compression without hoarding buffers.
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// Resolves a pipeline depth: an explicit nonzero request wins, then a
/// nonzero `ALP_PIPELINE_DEPTH`, then [`DEFAULT_PIPELINE_DEPTH`].
pub fn resolve_pipeline_depth(requested: Option<usize>) -> usize {
    if let Some(d) = requested {
        if d > 0 {
            return d;
        }
    }
    if let Ok(v) = std::env::var(PIPELINE_DEPTH_ENV) {
        if let Ok(d) = v.trim().parse::<usize>() {
            if d > 0 {
                return d;
            }
        }
    }
    DEFAULT_PIPELINE_DEPTH
}

/// Shape of a [`PipelinedColumnWriter`]'s worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Total threads the ingest path may use, caller thread included.
    /// `<= 1` disables the pool: the writer degrades to the serial
    /// [`ColumnWriter`](crate::stream::ColumnWriter) inline path.
    pub threads: usize,
    /// Maximum row-groups in flight (queued or compressing). Clamped to at
    /// least 1; a full pipeline blocks `push` until a frame commits.
    pub depth: usize,
    /// Fault injection: the worker compressing this row-group sequence
    /// number panics instead, exercising the quarantine path (the pipelined
    /// analogue of [`crate::io::FaultPlan`]). `None` outside tests.
    pub panic_at: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::resolve(None, None)
    }
}

impl PipelineConfig {
    /// Resolves a config from optional explicit requests, falling back to
    /// `ALP_THREADS` / `ALP_PIPELINE_DEPTH` and then the built-in defaults
    /// (see [`resolve_threads`] and [`resolve_pipeline_depth`]).
    pub fn resolve(threads: Option<usize>, depth: Option<usize>) -> Self {
        Self {
            threads: resolve_threads(threads),
            depth: resolve_pipeline_depth(depth),
            panic_at: None,
        }
    }
}

/// Errors surfaced by the pipelined ingest path.
#[derive(Debug)]
pub enum IngestError {
    /// The sink failed under the inner writer's retry policy.
    Io(io::Error),
    /// A compression worker panicked; the morsel scheduler quarantined it
    /// ([`MorselFailure`] carries the row-group sequence number and the
    /// rendered panic message). The poisoned frame was never written: the
    /// sink ends at the last committed frame.
    Poisoned(MorselFailure),
}

impl core::fmt::Display for IngestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "pipelined ingest I/O error: {e}"),
            IngestError::Poisoned(m) => {
                write!(f, "pipelined ingest worker poisoned: {m}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// One compressed-and-framed row-group batch, ready for ordered commit.
struct EncodedFrames {
    /// Complete frames (length prefix, checksum, body), concatenated.
    bytes: Vec<u8>,
    /// Source values the batch covers.
    values: usize,
    /// Row-group frames in `bytes`.
    rowgroups: usize,
}

/// State shared between the caller thread and the worker pool.
struct PipeState<F> {
    /// Row-group buffers waiting for a worker, with their sequence numbers.
    pending: VecDeque<(u64, Vec<F>)>,
    /// Finished batches (or quarantined failures) keyed by sequence number.
    done: BTreeMap<u64, Result<EncodedFrames, MorselFailure>>,
    /// Set once by the pool's `Drop`: workers exit when they see it.
    shutdown: bool,
}

struct Shared<F> {
    state: Mutex<PipeState<F>>,
    /// Workers wait here for pending jobs (or shutdown).
    jobs_cv: Condvar,
    /// The caller thread waits here for the next in-order batch.
    done_cv: Condvar,
}

/// Locks the pipe state, recovering a poisoned mutex: the panic that
/// poisoned it was already quarantined into a `MorselFailure`, so the state
/// itself is consistent (every mutation is a single push/insert).
fn lock_state<F>(shared: &Shared<F>) -> MutexGuard<'_, PipeState<F>> {
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The compression worker pool plus the caller-side sequence bookkeeping.
struct Pool<F> {
    shared: Arc<Shared<F>>,
    workers: Vec<JoinHandle<()>>,
    depth: usize,
    /// Sequence number the next submitted row-group receives.
    next_seq: u64,
    /// Sequence number of the next frame to commit to the sink.
    next_commit: u64,
}

impl<F: AlpFloat> Pool<F> {
    fn spawn(
        compressor: Compressor,
        version: StreamVersion,
        threads: usize,
        depth: usize,
        panic_at: Option<u64>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PipeState {
                pending: VecDeque::new(),
                done: BTreeMap::new(),
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        // More workers than in-flight slots can never all be busy; the
        // caller thread is reserved for fill + commit.
        let workers = (threads - 1).clamp(1, depth);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let compressor = compressor.clone();
                std::thread::spawn(move || {
                    worker_loop::<F>(&shared, &compressor, version, panic_at)
                })
            })
            .collect();
        Self { shared, workers: handles, depth, next_seq: 0, next_commit: 0 }
    }

    /// Row-groups submitted but not yet committed.
    fn in_flight(&self) -> usize {
        (self.next_seq - self.next_commit) as usize
    }

    /// Hands a full row-group buffer to the pool.
    fn enqueue(&mut self, data: Vec<F>) {
        {
            let mut state = lock_state(&self.shared);
            state.pending.push_back((self.next_seq, data));
        }
        self.next_seq += 1;
        self.shared.jobs_cv.notify_one();
    }

    /// Blocks until the next in-order batch is finished and returns it.
    fn take_next_done(&mut self) -> Result<EncodedFrames, MorselFailure> {
        let seq = self.next_commit;
        let outcome = {
            let mut state = lock_state(&self.shared);
            loop {
                if let Some(outcome) = state.done.remove(&seq) {
                    break outcome;
                }
                state = match self.shared.done_cv.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        self.next_commit += 1;
        outcome
    }
}

impl<F> Drop for Pool<F> {
    fn drop(&mut self) {
        {
            let mut state = lock_state(&self.shared);
            state.shutdown = true;
            // Nobody will commit the still-pending batches: don't burn
            // cycles compressing them on the way out.
            state.pending.clear();
        }
        self.shared.jobs_cv.notify_all();
        for worker in self.workers.drain(..) {
            // A worker can only panic inside the containment seam; a join
            // error here means the unwind escaped it, which `worker_loop`
            // does not allow — but degrading beats aborting the caller.
            let _ = worker.join();
        }
    }
}

/// Body of one pool worker: claim the oldest pending row-group, compress and
/// frame it inside the containment seam, publish the outcome, repeat.
fn worker_loop<F: AlpFloat>(
    shared: &Shared<F>,
    compressor: &Compressor,
    version: StreamVersion,
    panic_at: Option<u64>,
) {
    loop {
        let job = {
            let mut state = lock_state(shared);
            loop {
                if let Some(job) = state.pending.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = match shared.jobs_cv.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some((seq, data)) = job else { return };
        let outcome = encode_contained::<F>(seq, &data, compressor, version, panic_at);
        {
            let mut state = lock_state(shared);
            state.done.insert(seq, outcome);
        }
        // The committer may be waiting for any sequence number: wake it.
        shared.done_cv.notify_all();
    }
}

/// Compresses one row-group buffer into ready-to-commit frames, inside the
/// morsel scheduler's panic containment seam: a panic (the compressor's or
/// the injected `panic_at`) becomes a [`MorselFailure`] carrying `seq`.
fn encode_contained<F: AlpFloat>(
    seq: u64,
    data: &[F],
    compressor: &Compressor,
    version: StreamVersion,
    panic_at: Option<u64>,
) -> Result<EncodedFrames, MorselFailure> {
    let (mut completed, mut failures) = run_morsels_contained(
        1,
        1,
        || (),
        |_, _| {
            if panic_at == Some(seq) {
                panic!("injected pipeline fault at row-group {seq}");
            }
            let compressed = compressor.compress(data);
            let mut bytes = Vec::new();
            for rg in &compressed.rowgroups {
                encode_frame::<F>(rg, version, &mut bytes);
            }
            EncodedFrames { bytes, values: data.len(), rowgroups: compressed.rowgroups.len() }
        },
    );
    if let Some((_, frames)) = completed.pop() {
        return Ok(frames);
    }
    let message = failures
        .pop()
        .map(|f| f.message)
        .unwrap_or_else(|| "worker produced neither result nor failure".to_string());
    Err(MorselFailure { morsel: seq as usize, message })
}

/// Double-buffered, pool-backed column writer: same stream bytes as
/// [`ColumnWriter`](crate::stream::ColumnWriter), with row-group N
/// compressing while row-group N+1 fills. See the module docs for the
/// ordering, back-pressure, and fault contract.
pub struct PipelinedColumnWriter<F: AlpFloat, W: Write> {
    inner: ColumnWriter<F, W>,
    buffer: Vec<F>,
    rowgroup_values: usize,
    /// `None` when `threads <= 1`: push/finish delegate straight to `inner`.
    pool: Option<Pool<F>>,
    /// The first quarantined failure; once set, every later call fails.
    poisoned: Option<MorselFailure>,
}

impl<F: AlpFloat, W: Write> PipelinedColumnWriter<F, W> {
    /// Pipelined writer with the paper's default sampling parameters.
    pub fn new(sink: W, config: PipelineConfig) -> Self {
        Self::build(ColumnWriter::new(sink), config)
    }

    /// Pipelined writer with custom sampling parameters. Returns
    /// [`ConfigError`] when any count in `params` is zero.
    pub fn with_params(
        sink: W,
        params: SamplerParams,
        config: PipelineConfig,
    ) -> Result<Self, ConfigError> {
        Ok(Self::build(ColumnWriter::with_params(sink, params)?, config))
    }

    /// Pipelined writer with erasure protection (see
    /// [`ColumnWriter::with_parity`](crate::stream::ColumnWriter::with_parity)).
    /// Workers only compress; parity is folded in on the caller thread from
    /// the already-encoded frame bytes inside the shared commit seam, so the
    /// stream stays byte-identical to the serial parity writer at every
    /// thread count and pipeline depth.
    pub fn with_parity(
        sink: W,
        config: PipelineConfig,
        parity: ParityConfig,
    ) -> Result<Self, ConfigError> {
        Ok(Self::build(ColumnWriter::with_parity(sink, parity)?, config))
    }

    /// Pipelined writer with custom sampling parameters *and* erasure
    /// protection. Returns [`ConfigError`] when any count in `params` is
    /// zero or the parity group size is out of range.
    pub fn with_params_and_parity(
        sink: W,
        params: SamplerParams,
        config: PipelineConfig,
        parity: ParityConfig,
    ) -> Result<Self, ConfigError> {
        Ok(Self::build(ColumnWriter::with_params_and_parity(sink, params, parity)?, config))
    }

    fn build(inner: ColumnWriter<F, W>, config: PipelineConfig) -> Self {
        let rowgroup_values = inner.flush_values();
        let pool = (config.threads > 1).then(|| {
            Pool::spawn(
                inner.compressor().clone(),
                inner.version(),
                config.threads,
                config.depth.max(1),
                config.panic_at,
            )
        });
        Self {
            inner,
            buffer: Vec::with_capacity(rowgroup_values),
            rowgroup_values,
            pool,
            poisoned: None,
        }
    }

    /// Replaces the sink's transient-fault retry policy; identical semantics
    /// to [`ColumnWriter::set_retry_policy`](crate::stream::ColumnWriter::set_retry_policy)
    /// (all sink I/O runs on the caller thread).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.inner.set_retry_policy(policy);
    }

    /// Appends values. Full row-groups are handed to the worker pool; when
    /// `depth` row-groups are already in flight, blocks committing finished
    /// frames until a slot frees (back-pressure). A previously quarantined
    /// worker panic resurfaces as [`IngestError::Poisoned`].
    pub fn push(&mut self, values: &[F]) -> Result<(), IngestError> {
        self.check_poisoned()?;
        if self.pool.is_none() {
            return self.inner.push(values).map_err(IngestError::Io);
        }
        let mut rest = values;
        while !rest.is_empty() {
            let room = self.rowgroup_values - self.buffer.len();
            let take = room.min(rest.len());
            self.buffer.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buffer.len() == self.rowgroup_values {
                let full =
                    core::mem::replace(&mut self.buffer, Vec::with_capacity(self.rowgroup_values));
                self.submit(full)?;
            }
        }
        Ok(())
    }

    /// Drains the pipeline (tail row-group included), then writes the
    /// terminator and commit footer through the inner writer. On error the
    /// stream is left uncommitted with only whole frames on the sink —
    /// salvage-readable, never torn mid-frame.
    pub fn finish(mut self) -> Result<StreamSummary, IngestError> {
        self.check_poisoned()?;
        if !self.buffer.is_empty() {
            let tail = core::mem::take(&mut self.buffer);
            self.submit(tail)?;
        }
        let Self { mut inner, pool, mut poisoned, .. } = self;
        if let Some(mut pool) = pool {
            while pool.next_commit < pool.next_seq {
                commit_next(&mut pool, &mut inner, &mut poisoned)?;
            }
            // Join the workers before committing: the footer must be the
            // last thing the stream sees.
            drop(pool);
        }
        inner.finish().map_err(IngestError::Io)
    }

    /// Enqueues one full row-group buffer, draining finished frames first
    /// when the pipeline is at depth.
    fn submit(&mut self, data: Vec<F>) -> Result<(), IngestError> {
        let Self { inner, pool, poisoned, .. } = self;
        let Some(pool) = pool.as_mut() else {
            return inner.push(&data).map_err(IngestError::Io);
        };
        while pool.in_flight() >= pool.depth {
            commit_next(pool, inner, poisoned)?;
        }
        pool.enqueue(data);
        Ok(())
    }

    fn check_poisoned(&self) -> Result<(), IngestError> {
        match &self.poisoned {
            Some(failure) => Err(IngestError::Poisoned(failure.clone())),
            None => Ok(()),
        }
    }
}

/// Commits the next in-order batch to the sink, or records and surfaces its
/// quarantined failure. Free function (not a method) so callers can hold
/// disjoint borrows of the pool, the inner writer, and the poison slot.
fn commit_next<F: AlpFloat, W: Write>(
    pool: &mut Pool<F>,
    inner: &mut ColumnWriter<F, W>,
    poisoned: &mut Option<MorselFailure>,
) -> Result<(), IngestError> {
    match pool.take_next_done() {
        Ok(frames) => inner
            .commit_encoded_frames(&frames.bytes, frames.values, frames.rowgroups)
            .map_err(IngestError::Io),
        Err(failure) => {
            *poisoned = Some(failure.clone());
            Err(IngestError::Poisoned(failure))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ColumnReader;
    use fastlanes::VECTOR_SIZE;

    fn small_params() -> SamplerParams {
        SamplerParams { vectors_per_rowgroup: 4, ..SamplerParams::default() }
    }

    fn serial_bytes(data: &[f64]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut writer =
            crate::stream::ColumnWriter::<f64, _>::with_params(&mut out, small_params()).unwrap();
        writer.push(data).unwrap();
        writer.finish().unwrap();
        out
    }

    #[test]
    fn pipelined_output_is_byte_identical_to_serial() {
        // 6.5 row-groups with the small config: exercises ordered commit
        // and a ragged tail.
        let data: Vec<f64> =
            (0..4 * VECTOR_SIZE * 6 + 2048).map(|i| (i % 333) as f64 / 8.0).collect();
        let serial = serial_bytes(&data);
        for threads in [1usize, 2, 7] {
            for depth in [1usize, 2, 4] {
                let config = PipelineConfig { threads, depth, panic_at: None };
                let mut out = Vec::new();
                let mut writer =
                    PipelinedColumnWriter::<f64, _>::with_params(&mut out, small_params(), config)
                        .unwrap();
                for chunk in data.chunks(1500) {
                    writer.push(chunk).unwrap();
                }
                let summary = writer.finish().unwrap();
                assert_eq!(out, serial, "threads={threads} depth={depth}");
                assert_eq!(summary.total_bytes, out.len());
            }
        }
    }

    #[test]
    fn injected_worker_panic_is_quarantined_as_typed_error() {
        let data: Vec<f64> = (0..4 * VECTOR_SIZE * 5).map(|i| i as f64).collect();
        let config = PipelineConfig { threads: 4, depth: 2, panic_at: Some(2) };
        let mut out = Vec::new();
        let mut writer =
            PipelinedColumnWriter::<f64, _>::with_params(&mut out, small_params(), config).unwrap();
        let mut poisoned = None;
        for chunk in data.chunks(1000) {
            if let Err(e) = writer.push(chunk) {
                poisoned = Some(e);
                break;
            }
        }
        let err = match poisoned {
            Some(e) => {
                drop(writer);
                e
            }
            None => match writer.finish() {
                Err(e) => e,
                Ok(_) => panic!("injected panic must surface from push or finish"),
            },
        };
        match err {
            IngestError::Poisoned(failure) => {
                assert_eq!(failure.morsel, 2);
                assert!(failure.message.contains("injected pipeline fault"));
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // The sink holds whole frames only: a salvage reader recovers the
        // committed prefix (row-groups 0 and 1 at most) without error.
        let mut reader = ColumnReader::<f64, _>::new(&out[..]).unwrap();
        let mut restored = Vec::new();
        while let Some(values) = reader.next_rowgroup_salvaged().unwrap() {
            restored.extend(values);
        }
        assert!(!reader.is_committed());
        assert!(restored.len() <= 2 * 4 * VECTOR_SIZE);
        for (a, b) in data.iter().zip(&restored) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn poisoned_pipeline_stays_poisoned() {
        let data: Vec<f64> = (0..4 * VECTOR_SIZE * 4).map(|i| i as f64).collect();
        let config = PipelineConfig { threads: 2, depth: 1, panic_at: Some(0) };
        let mut out = Vec::new();
        let mut writer =
            PipelinedColumnWriter::<f64, _>::with_params(&mut out, small_params(), config).unwrap();
        let mut first_error = None;
        for chunk in data.chunks(1000) {
            if let Err(e) = writer.push(chunk) {
                first_error = Some(e);
                break;
            }
        }
        assert!(
            matches!(first_error, Some(IngestError::Poisoned(_))),
            "depth-1 pipeline must surface the poisoned frame from push"
        );
        // Every later call reports the same quarantined failure.
        assert!(matches!(writer.push(&[1.0]), Err(IngestError::Poisoned(_))));
        assert!(matches!(writer.finish(), Err(IngestError::Poisoned(_))));
    }

    #[test]
    fn empty_pipelined_stream_commits() {
        let mut out = Vec::new();
        let config = PipelineConfig { threads: 3, depth: 2, panic_at: None };
        let writer = PipelinedColumnWriter::<f64, _>::new(&mut out, config);
        let summary = writer.finish().unwrap();
        assert_eq!(summary.values, 0);
        assert_eq!(summary.total_bytes, out.len());
        let mut reader = ColumnReader::<f64, _>::new(&out[..]).unwrap();
        assert!(reader.next_rowgroup().unwrap().is_none());
        assert!(reader.is_committed());
    }

    #[test]
    fn depth_resolution_order() {
        // Explicit request wins over everything.
        assert_eq!(resolve_pipeline_depth(Some(7)), 7);
        // Zero falls through to the env var and then the default.
        if std::env::var(PIPELINE_DEPTH_ENV).is_err() {
            assert_eq!(resolve_pipeline_depth(Some(0)), DEFAULT_PIPELINE_DEPTH);
            assert_eq!(resolve_pipeline_depth(None), DEFAULT_PIPELINE_DEPTH);
        }
    }
}
