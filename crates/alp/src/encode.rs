//! The `ALP_enc` / `ALP_dec` procedures (Formulas 1 and 2 of the paper) and
//! the per-vector encoder of Algorithm 1.
//!
//! A vector is encoded with a single (exponent `e`, factor `f`) pair:
//!
//! ```text
//! ALP_enc(n) = fast_round(n * 10^e * 10^-f)      // yields integer d
//! ALP_dec(d) = d * 10^f * 10^-e
//! ```
//!
//! Values for which `ALP_dec(ALP_enc(n))` is not bitwise-identical to `n`
//! become *exceptions*: they are stored verbatim and their slot in the encoded
//! integer vector is patched with the first successfully-encoded value so the
//! bit width of the packed vector is unaffected. The encoded integers then go
//! through FFOR (frame-of-reference + bit-packing, fused).

use fastlanes::ffor;
use fastlanes::VECTOR_SIZE;

use crate::traits::AlpFloat;

/// Rounds to the nearest integer using the add/subtract "sweet spot" trick
/// (§3.1 *Fast Rounding*): exact for |x| < 2^51 (f64) / 2^22 (f32); outside
/// that range the result is wrong, which the encoder detects via the decode
/// verification and turns into an exception.
#[inline(always)]
pub fn fast_round<F: AlpFloat>(x: F) -> i64 {
    ((x + F::SWEET) - F::SWEET).to_i64_cast()
}

/// `ALP_enc`: encodes one value with exponent `e` and factor `f`.
#[inline(always)]
pub fn encode_one<F: AlpFloat>(n: F, e: u8, f: u8) -> i64 {
    fast_round(n * F::f10(e) * F::if10(f))
}

/// `ALP_dec`: decodes one integer back to the float domain.
#[inline(always)]
pub fn decode_one<F: AlpFloat>(d: i64, e: u8, f: u8) -> F {
    F::from_i64(d) * F::f10(f) * F::if10(e)
}

/// Arena holding the exception streams of many [`AlpVector`]s (positions and
/// raw bit patterns in parallel).
///
/// Vectors do not own their exceptions: they record a `(start, count)` range
/// into the arena of the row-group (or [`OwnedAlpVector`]) that holds them.
/// The arena grows by amortized appends, so encoding a vector performs no
/// per-vector heap allocation — the `.to_vec()` the old layout paid on every
/// vector is gone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExcArena {
    pub(crate) positions: Vec<u16>,
    pub(crate) values: Vec<u64>,
}

impl ExcArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of exceptions stored across all vectors.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the arena holds no exceptions.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Drops all exceptions, keeping the capacity for reuse.
    pub fn clear(&mut self) {
        self.positions.clear();
        self.values.clear();
    }

    /// Appends one exception (used by the encoder and the wire reader).
    pub fn push(&mut self, position: u16, bits: u64) {
        self.positions.push(position);
        self.values.push(bits);
    }

    /// The exception range of `v`. Out-of-range or inconsistent `(start,
    /// count)` fields (possible only for corrupt wire data) yield an empty
    /// view rather than a panic.
    pub fn view(&self, v: &AlpVector) -> ExcView<'_> {
        let start = v.exc_start as usize;
        let end = start.saturating_add(v.exc_count as usize);
        ExcView {
            positions: self.positions.get(start..end).unwrap_or(&[]),
            values: self.values.get(start..end).unwrap_or(&[]),
        }
    }
}

/// Borrowed view of one vector's exceptions: parallel position/value slices.
#[derive(Debug, Clone, Copy)]
pub struct ExcView<'a> {
    /// Positions (within the vector) of values stored as exceptions.
    pub positions: &'a [u16],
    /// Raw bit patterns of the exception values (zero-extended to 64 bits).
    pub values: &'a [u64],
}

impl ExcView<'_> {
    /// A view with no exceptions (for synthetic vectors).
    pub const fn empty() -> Self {
        ExcView { positions: &[], values: &[] }
    }

    /// Number of exceptions in the view.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the view holds no exceptions.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// One ALP-encoded vector of up to 1024 values (§3.1).
///
/// `packed` stores the FFOR'd integers; exceptions live in an [`ExcArena`]
/// owned by the enclosing row-group, referenced here by `(exc_start,
/// exc_count)` (positions are `u16`, values raw bit patterns — 80 bits of
/// overhead per exception for doubles, as in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlpVector {
    /// Exponent `e` shared by the whole vector.
    pub exponent: u8,
    /// Factor `f` shared by the whole vector.
    pub factor: u8,
    /// Bits per packed residual.
    pub bit_width: u8,
    /// Frame-of-reference base subtracted before packing.
    pub for_base: i64,
    /// Bit-packed residuals, `fastlanes::packed_len(bit_width)` words.
    pub packed: Vec<u64>,
    /// Offset of this vector's exceptions in the owning arena.
    pub exc_start: u32,
    /// Number of exceptions in this vector.
    pub exc_count: u16,
    /// Number of live values in this vector (`<= 1024`; only the last vector
    /// of a column may be short).
    pub len: u16,
}

impl AlpVector {
    /// Exact compressed size in bits, counting everything a serialized format
    /// must store: parameters, base, packed payload, and exceptions.
    pub fn compressed_bits<F: AlpFloat>(&self) -> usize {
        // e + f + bit_width (u8 each) + base (64) + exception count (16)
        let header = 8 + 8 + 8 + 64 + 16;
        let payload = self.bit_width as usize * VECTOR_SIZE;
        let exceptions = self.exc_count as usize * (16 + F::BITS as usize);
        header + payload + exceptions
    }

    /// Number of exceptions in this vector.
    pub fn exception_count(&self) -> usize {
        self.exc_count as usize
    }
}

/// An [`AlpVector`] bundled with a private arena holding just its own
/// exceptions — the convenience form returned by [`encode_vector`] for
/// single-vector callers (benchmarks, tests, ablations). Hot paths encode
/// many vectors into one shared arena via [`encode_vector_into`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedAlpVector {
    /// The encoded vector (`exc_start` is 0 in the private arena).
    pub vector: AlpVector,
    /// The vector's exceptions.
    pub exceptions: ExcArena,
}

impl OwnedAlpVector {
    /// View of the vector's exceptions.
    pub fn view(&self) -> ExcView<'_> {
        self.exceptions.view(&self.vector)
    }

    /// Positions of the exception values.
    pub fn exc_positions(&self) -> &[u16] {
        self.view().positions
    }

    /// Raw bit patterns of the exception values.
    pub fn exc_values(&self) -> &[u64] {
        self.view().values
    }
}

impl core::ops::Deref for OwnedAlpVector {
    type Target = AlpVector;
    fn deref(&self) -> &AlpVector {
        &self.vector
    }
}

/// Encodes one vector (Algorithm 1) with the given `(e, f)` combination,
/// appending its exceptions to `exceptions`.
///
/// `input.len()` must be `1..=1024`. Shorter inputs are padded internally with
/// the patch value so the packed payload is always a full 1024-value vector.
/// Allocation-free once the arena is warm (the detection buffers live on the
/// stack).
pub fn encode_vector_into<F: AlpFloat>(
    input: &[F],
    e: u8,
    f: u8,
    exceptions: &mut ExcArena,
) -> AlpVector {
    let len = input.len();
    assert!(len > 0 && len <= VECTOR_SIZE, "vector length {len} out of range");

    let mut encoded = [0i64; VECTOR_SIZE];
    // Main encode loop — branch-free, auto-vectorizable.
    for i in 0..len {
        encoded[i] = encode_one(input[i], e, f);
    }

    // Exception detection, predicated as in Algorithm 1 (no if-then-else on
    // the value path).
    let mut exc_positions_buf = [0u16; VECTOR_SIZE];
    let mut exc_count = 0usize;
    for i in 0..len {
        let dec: F = decode_one(encoded[i], e, f);
        let neq = dec.to_bits_u64() != input[i].to_bits_u64();
        exc_positions_buf[exc_count] = i as u16;
        exc_count += neq as usize;
    }

    // FIND_FIRST_ENCODED: first position that is *not* an exception.
    let first_encoded = find_first_encoded(&encoded[..len], &exc_positions_buf[..exc_count]);

    // Fetch exceptions into the shared arena and patch their slots.
    let exc_start = u32::try_from(exceptions.len()).unwrap_or(u32::MAX);
    assert!(exc_start as usize == exceptions.len(), "exception arena exceeds u32 addressing");
    for &p in &exc_positions_buf[..exc_count] {
        exceptions.push(p, input[p as usize].to_bits_u64());
        encoded[p as usize] = first_encoded;
    }
    // Pad a short tail with the patch value (does not widen the frame).
    for slot in encoded[len..].iter_mut() {
        *slot = first_encoded;
    }

    let (for_base, bit_width) = ffor::frame_of(&encoded);
    let packed = ffor::ffor_pack(&encoded, for_base, bit_width);

    AlpVector {
        exponent: e,
        factor: f,
        bit_width: bit_width as u8,
        for_base,
        packed,
        exc_start,
        exc_count: exc_count as u16,
        len: len as u16,
    }
}

/// Encodes one vector into a fresh private arena — see [`encode_vector_into`]
/// for the shared-arena hot path.
pub fn encode_vector<F: AlpFloat>(input: &[F], e: u8, f: u8) -> OwnedAlpVector {
    let mut exceptions = ExcArena::new();
    let vector = encode_vector_into(input, e, f, &mut exceptions);
    OwnedAlpVector { vector, exceptions }
}

/// Returns the first encoded integer whose position is not in the (sorted)
/// exception list, or 0 if every value is an exception.
fn find_first_encoded(encoded: &[i64], exc_positions: &[u16]) -> i64 {
    let mut exc_iter = exc_positions.iter().peekable();
    for (i, &d) in encoded.iter().enumerate() {
        match exc_iter.peek() {
            Some(&&p) if p as usize == i => {
                exc_iter.next();
            }
            _ => return d,
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_round_is_round_half_to_even() {
        // The FP addition rounds ties to even (banker's rounding).
        let cases: &[(f64, i64)] = &[
            (0.0, 0),
            (0.4, 0),
            (0.6, 1),
            (1.5, 2),
            (2.5, 2),
            (3.5, 4),
            (-0.4, 0),
            (-0.6, -1),
            (-1.5, -2),
            (-2.5, -2),
            (12345.499, 12345),
            (-99999.51, -100000),
        ];
        for &(x, expected) in cases {
            assert_eq!(fast_round(x), expected, "x = {x}");
        }
    }

    #[test]
    fn fast_round_of_nan_and_inf_is_harmless() {
        // The values are garbage but must not panic; the decode-verify step
        // rejects them as exceptions.
        let _ = fast_round(f64::NAN);
        let _ = fast_round(f64::INFINITY);
        let _ = fast_round(f64::NEG_INFINITY);
    }

    #[test]
    fn paper_running_example() {
        // §2.6: n ≈ 8.0605, e = 14, f = 10 encodes to 80605.
        let n: f64 = 8.0605;
        let d = encode_one(n, 14, 10);
        assert_eq!(d, 80605);
        let back: f64 = decode_one(d, 14, 10);
        assert_eq!(back.to_bits(), n.to_bits());
    }

    #[test]
    fn paper_example_fails_with_naive_exponent() {
        // §2.5: using e = 4 (the visible precision) fails for 8.0605.
        let n: f64 = 8.0605;
        let d = encode_one(n, 4, 0);
        let back: f64 = decode_one(d, 4, 0);
        assert_ne!(back.to_bits(), n.to_bits());
    }

    #[test]
    fn encode_vector_roundtrips_decimals_without_exceptions() {
        // (314 + i) / 100: division by an exact power of ten is correctly
        // rounded, so these are genuine "decimals stored as doubles".
        let input: Vec<f64> = (0..1024).map(|i| (314 + i) as f64 / 100.0).collect();
        let v = encode_vector(&input, 14, 12);
        assert_eq!(v.exception_count(), 0);
        assert_eq!(v.len, 1024);
    }

    #[test]
    fn nan_inf_neg_zero_become_exceptions() {
        let mut input = vec![1.5f64; 1024];
        input[0] = f64::NAN;
        input[1] = f64::INFINITY;
        input[2] = f64::NEG_INFINITY;
        input[3] = -0.0;
        input[4] = f64::from_bits(0x7FF0_0000_0000_0001); // signaling-ish NaN
        let v = encode_vector(&input, 14, 13);
        assert_eq!(v.exception_count(), 5);
        assert_eq!(v.exc_positions(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn all_exception_vector_is_representable() {
        let input = vec![f64::NAN; 8];
        let v = encode_vector(&input, 10, 5);
        assert_eq!(v.exception_count(), 8);
        assert_eq!(v.bit_width, 0); // all slots patched with 0
    }

    #[test]
    fn short_vector_padding_does_not_widen_frame() {
        let input = vec![100.25f64, 100.50, 100.75];
        let v = encode_vector(&input, 14, 12);
        assert_eq!(v.len, 3);
        assert_eq!(v.exception_count(), 0);
        // Range of encoded values is 50 -> 6 bits.
        assert!(v.bit_width <= 7, "width {}", v.bit_width);
    }

    #[test]
    fn find_first_encoded_skips_leading_exceptions() {
        let encoded = [7i64, 8, 9];
        assert_eq!(find_first_encoded(&encoded, &[0, 1]), 9);
        assert_eq!(find_first_encoded(&encoded, &[]), 7);
        assert_eq!(find_first_encoded(&encoded, &[0, 1, 2]), 0);
    }

    #[test]
    fn f32_paper_style_roundtrip() {
        let n: f32 = 8.0605;
        let d = encode_one(n, 7, 3);
        let back: f32 = decode_one(d, 7, 3);
        assert_eq!(back.to_bits(), n.to_bits());
    }
}
