//! XOR erasure protection for framed row-groups — the repair half of the
//! durability story (checksums detect, salvage contains, parity *repairs*).
//!
//! A writer configured with [`ParityConfig`] emits, after every
//! `group_size` row-group frames, one **parity frame** whose body is:
//!
//! ```text
//! "ALPP" | group_size:u8 | count:u8 | max_len:u32 | xor[max_len]
//! ```
//!
//! `xor` is the byte-wise XOR of the `count` preceding frames — each taken
//! *whole*, length prefix and checksum included — zero-padded to the longest
//! (`max_len`). The parity frame itself is framed exactly like a row-group
//! (`len:u32 | xxh64:u64 | body`), so readers that predate parity resync
//! past it as an ordinary unparseable frame, and parity-aware readers
//! recognize it unambiguously: row-group bodies always start with a scheme
//! tag (`0` or `1`), never `'A'`.
//!
//! Because XOR is its own inverse, a group with exactly one damaged frame is
//! reconstructible: XOR the parity block with every *intact* frame and what
//! remains is the missing frame, byte for byte — its own length prefix and
//! stored checksum included, so the reconstruction is self-verifying. Two or
//! more damaged frames in one group are beyond the protection level and
//! degrade to the pre-parity loss report.

use crate::hash::{xxh64, CHECKSUM_SEED};
use crate::sampler::ConfigError;

/// Magic prefix of a parity frame body.
pub const PARITY_MAGIC: &[u8; 4] = b"ALPP";

/// Fixed bytes of a parity body before the XOR block:
/// magic + group_size + count + max_len.
pub(crate) const PARITY_BODY_HEADER: usize = 4 + 1 + 1 + 4;

/// Erasure-protection knob for the framed writers: emit one parity frame per
/// `group_size` row-group frames, making any single damaged frame per group
/// reconstructible at ~`1/group_size` storage overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityConfig {
    /// Row-group frames per parity group. Small groups repair more
    /// independent faults per stream; large groups cost less space.
    pub group_size: usize,
}

impl ParityConfig {
    /// Validates the group size: at least 1 (full replication) and at most
    /// 255 (the body's `count` field is a byte).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.group_size == 0 || self.group_size > 255 {
            return Err(ConfigError { param: "parity group_size" });
        }
        Ok(())
    }
}

/// Writer-side accumulator: absorbs whole frames, and every `group_size`
/// absorptions (or on demand, for a partial tail group) yields one encoded
/// parity frame ready to append to the stream.
#[derive(Debug)]
pub(crate) struct ParityAccumulator {
    group_size: usize,
    /// Running XOR of absorbed frames, sized to the longest seen this group.
    acc: Vec<u8>,
    /// Frames absorbed into the current group so far.
    count: usize,
}

impl ParityAccumulator {
    pub(crate) fn new(group_size: usize) -> Self {
        Self { group_size, acc: Vec::new(), count: 0 }
    }

    /// Folds one whole frame (length prefix and checksum included) into the
    /// running XOR.
    pub(crate) fn absorb(&mut self, frame: &[u8]) {
        if frame.len() > self.acc.len() {
            self.acc.resize(frame.len(), 0);
        }
        for (a, b) in self.acc.iter_mut().zip(frame) {
            *a ^= *b;
        }
        self.count += 1;
    }

    /// Whether the current group is full and a parity frame is due.
    pub(crate) fn is_full(&self) -> bool {
        self.count >= self.group_size
    }

    /// Encodes the pending group's parity frame — `len | xxh64 | body` —
    /// and resets the accumulator. `None` when no frames are pending (so
    /// callers can flush unconditionally at stream end).
    pub(crate) fn take_frame(&mut self) -> Option<Vec<u8>> {
        if self.count == 0 {
            return None;
        }
        let body_len = PARITY_BODY_HEADER + self.acc.len();
        let mut frame = Vec::with_capacity(4 + 8 + body_len);
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]); // checksum backfilled below
        frame.extend_from_slice(PARITY_MAGIC);
        frame.push(self.group_size as u8);
        frame.push(self.count as u8);
        frame.extend_from_slice(&(self.acc.len() as u32).to_le_bytes());
        frame.extend_from_slice(&self.acc);
        let checksum = xxh64(&frame[12..], CHECKSUM_SEED);
        frame[4..12].copy_from_slice(&checksum.to_le_bytes());
        self.acc.clear();
        self.count = 0;
        Some(frame)
    }
}

/// A parsed parity frame body.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParityBody<'a> {
    /// The writer's configured group size (data frames per parity frame).
    pub group_size: usize,
    /// Data frames this particular parity frame covers (`< group_size` only
    /// for the stream's final, partial group).
    pub count: usize,
    /// The XOR block, padded to the group's longest frame.
    pub xor: &'a [u8],
}

/// Whether a checksum-verified frame body is a parity frame. Row-group
/// bodies begin with a scheme tag (`0` or `1`), so the `"ALPP"` prefix is
/// unambiguous.
pub(crate) fn is_parity_body(body: &[u8]) -> bool {
    body.get(..4) == Some(PARITY_MAGIC.as_slice())
}

/// Parses a parity frame body; `None` when the layout is inconsistent
/// (wrong magic, counts out of range, or a truncated XOR block).
pub(crate) fn parse_parity_body(body: &[u8]) -> Option<ParityBody<'_>> {
    if !is_parity_body(body) {
        return None;
    }
    let group_size = *body.get(4)? as usize;
    let count = *body.get(5)? as usize;
    let max_len = u32::from_le_bytes(body.get(6..10)?.try_into().ok()?) as usize;
    let xor = body.get(PARITY_BODY_HEADER..)?;
    if group_size == 0 || count == 0 || count > group_size || xor.len() != max_len {
        return None;
    }
    Some(ParityBody { group_size, count, xor })
}

/// Reconstructs the single missing frame of a parity group: XORs the parity
/// block with every intact frame, then self-verifies the result against its
/// own reconstructed length prefix and stored checksum. `None` when the
/// reconstruction is inconsistent — more than one frame was actually
/// damaged, or the parity block itself lied.
pub(crate) fn try_repair_frame(xor: &[u8], intact: &[&[u8]]) -> Option<Vec<u8>> {
    let mut buf = xor.to_vec();
    for frame in intact {
        if frame.len() > buf.len() {
            // An intact frame longer than the parity block cannot have been
            // absorbed into it: the group is inconsistent.
            return None;
        }
        for (a, b) in buf.iter_mut().zip(*frame) {
            *a ^= *b;
        }
    }
    let body_len = u32::from_le_bytes(buf.get(..4)?.try_into().ok()?) as usize;
    let total = 4usize.checked_add(8)?.checked_add(body_len)?;
    if total > buf.len() {
        return None;
    }
    let stored = u64::from_le_bytes(buf.get(4..12)?.try_into().ok()?);
    let body = buf.get(12..total)?;
    if xxh64(body, CHECKSUM_SEED) != stored {
        return None;
    }
    // Bytes past the reconstructed frame are XORed padding and must cancel
    // to zero; a nonzero tail means the group's intact set was wrong.
    if buf.get(total..)?.iter().any(|&b| b != 0) {
        return None;
    }
    buf.truncate(total);
    Some(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a V2-framed pseudo-frame (`len | xxh64 | body`) from a body.
    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&(body.len() as u32).to_le_bytes());
        f.extend_from_slice(&xxh64(body, CHECKSUM_SEED).to_le_bytes());
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn config_bounds() {
        assert!(ParityConfig { group_size: 0 }.validate().is_err());
        assert!(ParityConfig { group_size: 256 }.validate().is_err());
        assert!(ParityConfig { group_size: 1 }.validate().is_ok());
        assert!(ParityConfig { group_size: 255 }.validate().is_ok());
    }

    #[test]
    fn parity_roundtrip_repairs_each_position() {
        let frames: Vec<Vec<u8>> =
            vec![frame(&[0u8, 1, 2, 3, 4, 5]), frame(&[1u8; 40]), frame(&[0u8, 9, 9])];
        let mut acc = ParityAccumulator::new(frames.len());
        for f in &frames {
            acc.absorb(f);
        }
        assert!(acc.is_full());
        let pframe = acc.take_frame().expect("group pending");
        let body = &pframe[12..];
        assert!(is_parity_body(body));
        let parsed = parse_parity_body(body).expect("well-formed parity body");
        assert_eq!(parsed.group_size, 3);
        assert_eq!(parsed.count, 3);

        for missing in 0..frames.len() {
            let intact: Vec<&[u8]> = frames
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, f)| f.as_slice())
                .collect();
            let repaired = try_repair_frame(parsed.xor, &intact).expect("single loss repairs");
            assert_eq!(repaired, frames[missing]);
        }
    }

    #[test]
    fn double_loss_is_detected() {
        let frames: Vec<Vec<u8>> = vec![frame(&[7u8; 16]), frame(&[8u8; 24]), frame(&[9u8; 8])];
        let mut acc = ParityAccumulator::new(3);
        for f in &frames {
            acc.absorb(f);
        }
        let pframe = acc.take_frame().unwrap();
        let parsed = parse_parity_body(&pframe[12..]).unwrap();
        // Only one intact frame of three: the "reconstruction" is the XOR of
        // two frames and must fail self-verification.
        assert!(try_repair_frame(parsed.xor, &[frames[0].as_slice()]).is_none());
    }

    #[test]
    fn partial_group_flushes_with_its_count() {
        let mut acc = ParityAccumulator::new(8);
        acc.absorb(&frame(&[1, 2, 3]));
        assert!(!acc.is_full());
        let pframe = acc.take_frame().unwrap();
        let parsed = parse_parity_body(&pframe[12..]).unwrap();
        assert_eq!(parsed.group_size, 8);
        assert_eq!(parsed.count, 1);
        // Flushing again with nothing pending yields nothing.
        assert!(acc.take_frame().is_none());
    }

    #[test]
    fn malformed_bodies_parse_to_none() {
        assert!(parse_parity_body(b"").is_none());
        assert!(parse_parity_body(b"ALPP").is_none());
        assert!(parse_parity_body(b"ALPX\x02\x01\x00\x00\x00\x00").is_none());
        // count > group_size
        assert!(parse_parity_body(b"ALPP\x02\x03\x00\x00\x00\x00").is_none());
        // max_len disagrees with the block
        assert!(parse_parity_body(b"ALPP\x02\x02\x05\x00\x00\x00abc").is_none());
    }
}
