//! XXH64 — the 64-bit xxHash used to checksum on-disk row-groups.
//!
//! Implemented from the public specification because the build environment is
//! offline; output is bit-identical to the reference `xxhash` library (see the
//! known-answer tests below). XXH64 is not cryptographic — it detects bit-rot
//! and truncation, not adversarial tampering, which matches the threat model
//! of a storage checksum.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Seed used for all row-group checksums in the `ALP2` format.
pub const CHECKSUM_SEED: u64 = 0;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    // Callers always pass >= 8 bytes; map_or keeps the helper panic-free.
    b.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    b.first_chunk::<4>().map_or(0, |c| u32::from_le_bytes(*c))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4)
}

/// Hashes `input` with the given `seed` (XXH64, one shot).
pub fn xxh64(input: &[u8], seed: u64) -> u64 {
    let mut rest = input;
    let mut h = if input.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..8]));
            v2 = round(v2, read_u64(&rest[8..16]));
            v3 = round(v3, read_u64(&rest[16..24]));
            v4 = round(v4, read_u64(&rest[24..32]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };

    h = h.wrapping_add(input.len() as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors from the reference xxHash implementation.
    #[test]
    fn reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"Nobody inspects the spammish repetition", 0), 0xFBCE_A83C_8A37_8BF1);
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise the 32-byte stripes plus all 0..=31 tail paths; values must
        // be stable and distinct from each other for a change in any byte.
        let base: Vec<u8> = (0..96u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(seen.insert(xxh64(&base[..len], 7)), "collision at len {len}");
        }
        // Single-bit sensitivity.
        let mut flipped = base.clone();
        flipped[40] ^= 0x10;
        assert_ne!(xxh64(&base, 7), xxh64(&flipped, 7));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(xxh64(b"payload", 0), xxh64(b"payload", 1));
    }
}
