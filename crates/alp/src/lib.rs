//! # ALP: Adaptive Lossless floating-Point compression
//!
//! A from-scratch Rust reproduction of *ALP: Adaptive Lossless floating-Point
//! Compression* (Afroozeh, Kuffó, Boncz — SIGMOD). ALP losslessly encodes
//! vectors of 1024 doubles (or floats) either as **decimals** — integers plus
//! a per-vector exponent/factor pair, bit-packed with fused
//! frame-of-reference — or, for truly high-precision "real doubles", with the
//! **ALP_rd** front-bits scheme (dictionary-compressed front bits + verbatim
//! tail bits).
//!
//! The encoding is *adaptive* (a two-level sampling scheme chooses the scheme
//! per row-group and the parameters per vector) and *vectorized* (all hot
//! loops are branch-free over 1024-value vectors and auto-vectorize).
//!
//! ## Quick start
//! ```
//! use alp::Compressor;
//!
//! let prices: Vec<f64> = (0..10_000).map(|i| (999 + i % 500) as f64 / 100.0).collect();
//! let compressed = Compressor::new().compress(&prices);
//! assert!(compressed.bits_per_value() < 16.0); // ~64 bits uncompressed
//! let restored = compressed.decompress();
//! assert_eq!(prices, restored); // bit-exact
//! ```
//!
//! ## Crate map
//! * [`encode`] / [`decode`] — the `ALP_enc`/`ALP_dec` kernels of Algorithms 1–2.
//! * [`sampler`] — the two-level adaptive sampling of §3.2.
//! * [`rd`] — ALP_rd for real doubles, §3.4.
//! * [`rowgroup`] — the column-level [`Compressor`] tying it together.
//! * [`mod@format`] — byte serialization of compressed columns.
//! * [`cascade`] — Dictionary/RLE cascades (the "LWC+ALP" column of Table 4).
//! * [`stream`] — incremental `std::io` writer/reader (one row-group in memory).
//! * [`mod@io`] — fault injection, bounded retry, and the fault taxonomy.
//! * [`parity`] — XOR erasure protection: parity frames and single-loss repair.
//! * [`par`] — the morsel-driven scheduler behind the `*_parallel` paths.
//! * [`analysis`] — the dataset statistics of Table 2.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod cascade;
pub mod decode;
pub mod encode;
pub mod format;
pub mod hash;
pub mod io;
pub mod par;
pub mod parity;
pub mod pipeline;
pub mod rd;
pub mod rowgroup;
pub mod sampler;
pub mod stream;
pub mod traits;
pub(crate) mod wire;

pub use decode::{scan_decoded, scan_vector, VectorScan, SCAN_WORDS};
pub use encode::{
    decode_one, encode_one, fast_round, AlpVector, ExcArena, ExcView, OwnedAlpVector,
};
pub use par::MorselFailure;
pub use parity::ParityConfig;
pub use pipeline::{IngestError, PipelineConfig, PipelinedColumnWriter};
pub use rowgroup::{
    AlpGroup, Compressed, Compressor, DecompressSalvage, RowGroup, Scheme, VectorIndexError,
};
pub use sampler::{Combination, ConfigError, SamplerParams, SamplerStats};
pub use traits::AlpFloat;

/// Values per vector — the unit of vectorized execution.
pub const VECTOR_SIZE: usize = fastlanes::VECTOR_SIZE;
