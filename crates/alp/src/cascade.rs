//! Cascading lightweight compression — the "LWC+ALP" column of Table 4.
//!
//! On repetitive data a floating-point encoding is the wrong first step: the
//! paper plugs a DICTIONARY (or RLE, when repeats are consecutive) *in front*
//! of ALP and then compresses the dictionary / run values with ALP itself.
//! [`CascadeCompressor`] tries plain ALP, DICT+ALP, and RLE+ALP and keeps the
//! smallest.

use fastlanes::dict::DictEncoded;
use fastlanes::rle::Rle;
use fastlanes::{bitpack, bits_needed, VECTOR_SIZE};

use crate::rowgroup::{Compressed, Compressor};
use crate::traits::AlpFloat;

/// Which cascade won for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeScheme {
    /// Plain ALP (no cascade).
    Plain,
    /// Dictionary of distinct values; codes bit-packed, dictionary
    /// ALP-compressed.
    Dict,
    /// Run-length encoding; run values ALP-compressed, run lengths
    /// bit-packed.
    Rle,
}

/// A cascade-compressed column.
#[derive(Debug, Clone)]
pub enum CascadeCompressed<F: AlpFloat> {
    /// Plain ALP column.
    Plain(Compressed<F>),
    /// Dictionary cascade: packed codes + ALP-compressed dictionary.
    Dict {
        /// Bit-packed codes, one full 1024-vector at a time.
        packed_codes: Vec<Vec<u64>>,
        /// Bits per code.
        code_width: u8,
        /// ALP-compressed distinct values.
        dict: Compressed<F>,
        /// Total number of values.
        len: usize,
    },
    /// RLE cascade: ALP-compressed run values + packed run lengths.
    Rle {
        /// ALP-compressed run values.
        values: Compressed<F>,
        /// Run lengths (kept unpacked in memory; accounted packed).
        lengths: Vec<u32>,
        /// Bits per packed run length.
        length_width: u8,
        /// Total number of values.
        len: usize,
    },
}

impl<F: AlpFloat> CascadeCompressed<F> {
    /// The winning scheme.
    pub fn scheme(&self) -> CascadeScheme {
        match self {
            CascadeCompressed::Plain(_) => CascadeScheme::Plain,
            CascadeCompressed::Dict { .. } => CascadeScheme::Dict,
            CascadeCompressed::Rle { .. } => CascadeScheme::Rle,
        }
    }

    /// Exact compressed size in bits.
    pub fn compressed_bits(&self) -> usize {
        match self {
            CascadeCompressed::Plain(c) => c.compressed_bits(),
            CascadeCompressed::Dict { packed_codes, code_width, dict, .. } => {
                let codes = packed_codes.len() * (*code_width as usize * VECTOR_SIZE + 16);
                codes + dict.compressed_bits() + 64
            }
            CascadeCompressed::Rle { values, lengths, length_width, .. } => {
                values.compressed_bits() + lengths.len() * *length_width as usize + 64
            }
        }
    }

    /// Bits per value, comparable to Table 4.
    pub fn bits_per_value(&self) -> f64 {
        let len = match self {
            CascadeCompressed::Plain(c) => c.len,
            CascadeCompressed::Dict { len, .. } | CascadeCompressed::Rle { len, .. } => *len,
        };
        if len == 0 {
            0.0
        } else {
            self.compressed_bits() as f64 / len as f64
        }
    }

    /// Decompresses the whole column, bit-exactly.
    pub fn decompress(&self) -> Vec<F> {
        match self {
            CascadeCompressed::Plain(c) => c.decompress(),
            CascadeCompressed::Dict { packed_codes, code_width, dict, len } => {
                let dict_values = dict.decompress();
                let mut out = Vec::with_capacity(*len);
                let mut buf = vec![0u64; VECTOR_SIZE];
                for packed in packed_codes {
                    bitpack::unpack(packed, *code_width as usize, &mut buf);
                    let remaining = *len - out.len();
                    for &code in buf.iter().take(remaining.min(VECTOR_SIZE)) {
                        // ANALYZER-ALLOW(no-panic): codes come from
                        // DictEncoded::encode and index its own dictionary.
                        out.push(dict_values[code as usize]);
                    }
                }
                out
            }
            CascadeCompressed::Rle { values, lengths, len, .. } => {
                let run_values = values.decompress();
                let mut out = Vec::with_capacity(*len);
                for (v, &l) in run_values.iter().zip(lengths) {
                    out.resize(out.len() + l as usize, *v);
                }
                out
            }
        }
    }
}

/// Compressor that tries the cascades and keeps the smallest result.
#[derive(Debug, Clone, Default)]
pub struct CascadeCompressor {
    inner: Compressor,
}

impl CascadeCompressor {
    /// Cascade compressor around a default ALP [`Compressor`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Compresses `data`, choosing among plain / DICT / RLE cascades.
    pub fn compress<F: AlpFloat>(&self, data: &[F]) -> CascadeCompressed<F> {
        let plain = CascadeCompressed::Plain(self.inner.compress(data));
        let mut best = plain;

        if let Some(dict) = self.try_dict(data) {
            if dict.compressed_bits() < best.compressed_bits() {
                best = dict;
            }
        }
        if let Some(rle) = self.try_rle(data) {
            if rle.compressed_bits() < best.compressed_bits() {
                best = rle;
            }
        }
        best
    }

    fn try_dict<F: AlpFloat>(&self, data: &[F]) -> Option<CascadeCompressed<F>> {
        if data.is_empty() {
            return None;
        }
        let bits: Vec<u64> = data.iter().map(|v| v.to_bits_u64()).collect();
        let encoded = DictEncoded::encode(&bits);
        // A dictionary only pays off on repetitive data; cap cardinality so the
        // build cost stays bounded on high-cardinality columns.
        if encoded.dict.len() > data.len() / 4 || encoded.dict.len() > (1 << 20) {
            return None;
        }
        let code_width = encoded.code_width();
        let mut packed_codes = Vec::with_capacity(encoded.codes.len().div_ceil(VECTOR_SIZE));
        let mut buf = [0u64; VECTOR_SIZE];
        for chunk in encoded.codes.chunks(VECTOR_SIZE) {
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = chunk.get(i).copied().unwrap_or(0) as u64;
            }
            packed_codes.push(bitpack::pack(&buf, code_width));
        }
        let dict_values: Vec<F> = encoded.dict.iter().map(|&b| F::from_bits_u64(b)).collect();
        let dict = self.inner.compress(&dict_values);
        Some(CascadeCompressed::Dict {
            packed_codes,
            // ANALYZER-ALLOW(no-panic): cardinality cap above bounds width at 20
            code_width: code_width as u8,
            dict,
            len: data.len(),
        })
    }

    fn try_rle<F: AlpFloat>(&self, data: &[F]) -> Option<CascadeCompressed<F>> {
        if data.is_empty() {
            return None;
        }
        let bits: Vec<u64> = data.iter().map(|v| v.to_bits_u64()).collect();
        let rle = Rle::encode(&bits);
        // RLE pays off only when runs are long on average.
        if rle.run_count() * 4 > data.len() {
            return None;
        }
        let run_values: Vec<F> = rle.values.iter().map(|&b| F::from_bits_u64(b)).collect();
        let values = self.inner.compress(&run_values);
        let length_width = bits_needed(rle.lengths.iter().copied().max().unwrap_or(0) as u64);
        Some(CascadeCompressed::Rle {
            values,
            lengths: rle.lengths,
            length_width: length_width as u8, // ANALYZER-ALLOW(no-panic): <= 64
            len: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_lossless(data: &[f64]) -> CascadeCompressed<f64> {
        let c = CascadeCompressor::new().compress(data);
        let back = c.decompress();
        assert_eq!(back.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        c
    }

    #[test]
    fn repetitive_data_picks_dict() {
        // 50 distinct high-precision values repeated many times.
        let pool: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.37).sin()).collect();
        let data: Vec<f64> = (0..200_000).map(|i| pool[(i * 7) % 50]).collect();
        let c = assert_lossless(&data);
        assert_eq!(c.scheme(), CascadeScheme::Dict);
        assert!(c.bits_per_value() < 10.0, "bpv {}", c.bits_per_value());
    }

    #[test]
    fn consecutive_repeats_pick_rle() {
        let mut data = Vec::new();
        for run in 0..200 {
            data.extend(std::iter::repeat_n((run as f64) * 0.5, 1000));
        }
        let c = assert_lossless(&data);
        assert_eq!(c.scheme(), CascadeScheme::Rle);
        assert!(c.bits_per_value() < 1.0, "bpv {}", c.bits_per_value());
    }

    #[test]
    fn decimal_data_stays_plain() {
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64) * 0.01).collect();
        let c = assert_lossless(&data);
        assert_eq!(c.scheme(), CascadeScheme::Plain);
    }

    #[test]
    fn cascade_never_worse_than_plain() {
        let cases: Vec<Vec<f64>> = vec![
            (0..50_000).map(|i| (i % 3) as f64).collect(),
            (0..50_000).map(|i| (i as f64) * 0.001).collect(),
            (0..50_000).map(|i| ((i as f64) * 0.1).sin()).collect(),
        ];
        for data in cases {
            let plain = Compressor::new().compress(&data);
            let cascade = CascadeCompressor::new().compress(&data);
            assert!(cascade.compressed_bits() <= plain.compressed_bits());
        }
    }

    #[test]
    fn empty_column() {
        let c = CascadeCompressor::new().compress::<f64>(&[]);
        assert_eq!(c.scheme(), CascadeScheme::Plain);
        assert!(c.decompress().is_empty());
    }
}
