//! **ALP_rd** — ALP for "Real Doubles" (§3.4).
//!
//! When the level-1 sample shows a row-group cannot be encoded as decimals,
//! each value's bit pattern is *cut* at a position chosen per row-group:
//!
//! * the **right** (low) part, `BITS - lw` bits wide, is stored bit-packed
//!   verbatim — it is essentially incompressible noise;
//! * the **left** (front) part, `lw ∈ 1..=16` bits holding the sign, exponent
//!   and top mantissa bits, exhibits low variance (§2.6) and is compressed
//!   with a *skewed dictionary*: at most 8 entries, values outside the
//!   dictionary stored as 16-bit exceptions with 16-bit positions.
//!
//! Decoding bit-unpacks both parts, maps codes through the dictionary and
//! `GLUE`s: `bits = (left << right_width) | right`, then patches exceptions.

use std::collections::HashMap;

use fastlanes::{bitpack, bits_needed, VECTOR_SIZE};

use crate::sampler::equidistant_indices;
use crate::traits::AlpFloat;

/// Maximum width of the left (front-bits) part.
pub const MAX_LEFT_WIDTH: usize = 16;
/// Maximum dictionary size: `2^3 = 8` entries (§3.4).
pub const MAX_DICT_SIZE: usize = 8;
/// Exception budget used when sizing the dictionary (§3.4: grow the
/// dictionary while exceptions exceed 10%, up to 8 entries).
pub const EXCEPTION_BUDGET: f64 = 0.10;

/// Per-row-group ALP_rd parameters, chosen once by [`choose_cut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdMeta {
    /// Width of the left (front) part in bits, `1..=16`.
    pub left_width: u8,
    /// Dictionary of the most frequent left patterns (≤ 8, 16-bit each).
    pub dict: Vec<u16>,
    /// Bits per packed dictionary code (`ceil(log2(dict.len()))`).
    pub code_width: u8,
}

impl RdMeta {
    /// Width of the right part for floats of `BITS` total bits.
    pub fn right_width<F: AlpFloat>(&self) -> usize {
        F::BITS as usize - self.left_width as usize
    }

    /// Serialized footprint of the row-group header in bits.
    pub fn header_bits(&self) -> usize {
        8 /*left_width*/ + 8 /*dict len*/ + self.dict.len() * 16
    }
}

/// One ALP_rd-encoded vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdVector {
    /// Bit-packed dictionary codes of the left parts.
    pub packed_codes: Vec<u64>,
    /// Bit-packed right parts.
    pub packed_right: Vec<u64>,
    /// Positions of left parts not found in the dictionary.
    pub exc_positions: Vec<u16>,
    /// The out-of-dictionary left parts themselves.
    pub exc_left: Vec<u16>,
    /// Live values in this vector.
    pub len: u16,
}

impl RdVector {
    /// Exact compressed size in bits given the row-group meta.
    pub fn compressed_bits<F: AlpFloat>(&self, meta: &RdMeta) -> usize {
        let header = 16; // exception count
        let payload = VECTOR_SIZE * (meta.right_width::<F>() + meta.code_width as usize);
        let exceptions = self.exc_positions.len() * (16 + 16);
        header + payload + exceptions
    }

    /// Number of left-part exceptions.
    pub fn exception_count(&self) -> usize {
        self.exc_positions.len()
    }
}

/// Chooses the cut position and dictionary for a row-group by scoring every
/// candidate left width on an equidistant sample (the RD branch of level-1
/// sampling, `ALP::RD::ADAPTIVE_SAMPLING` in Algorithm 3).
pub fn choose_cut<F: AlpFloat>(rowgroup: &[F], sample_size: usize) -> RdMeta {
    let sample = sample_bits(rowgroup, sample_size);
    let mut best: Option<(f64, RdMeta)> = None;
    for lw in 1..=MAX_LEFT_WIDTH.min(F::BITS as usize - 1) {
        let (est_bits_per_value, meta) = score_cut::<F>(&sample, lw);
        match &best {
            Some((b, _)) if *b <= est_bits_per_value => {}
            _ => best = Some((est_bits_per_value, meta)),
        }
    }
    best.expect("at least one cut candidate").1
}

/// Builds the dictionary and estimated footprint for one forced left width
/// (used by [`choose_cut`] and by the cut-position ablation bench).
pub fn meta_for_width<F: AlpFloat>(
    rowgroup: &[F],
    sample_size: usize,
    left_width: usize,
) -> RdMeta {
    assert!((1..=MAX_LEFT_WIDTH.min(F::BITS as usize - 1)).contains(&left_width));
    let sample = sample_bits(rowgroup, sample_size);
    score_cut::<F>(&sample, left_width).1
}

fn sample_bits<F: AlpFloat>(rowgroup: &[F], sample_size: usize) -> Vec<u64> {
    let mut sample: Vec<u64> = Vec::with_capacity(sample_size);
    for idx in equidistant_indices(rowgroup.len(), sample_size) {
        sample.push(rowgroup[idx].to_bits_u64());
    }
    assert!(!sample.is_empty(), "cannot sample an empty row-group");
    sample
}

fn score_cut<F: AlpFloat>(sample: &[u64], lw: usize) -> (f64, RdMeta) {
    let right_w = F::BITS as usize - lw;
    // Frequency count of left patterns in the sample.
    let mut counts: HashMap<u16, usize> = HashMap::new();
    for &bits in sample {
        *counts.entry((bits >> right_w) as u16).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(u16, usize)> = counts.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Smallest dictionary (1, 2, 4, 8) keeping exceptions within budget.
    let total = sample.len();
    let mut chosen_size = MAX_DICT_SIZE;
    for b in 0..=3usize {
        let size = 1usize << b;
        let covered: usize = by_freq.iter().take(size).map(|&(_, c)| c).sum();
        let exc_frac = 1.0 - covered as f64 / total as f64;
        if exc_frac <= EXCEPTION_BUDGET {
            chosen_size = size;
            break;
        }
    }
    let dict: Vec<u16> = by_freq.iter().take(chosen_size).map(|&(v, _)| v).collect();
    let code_width = bits_needed(dict.len().saturating_sub(1) as u64);
    let covered: usize = by_freq.iter().take(dict.len()).map(|&(_, c)| c).sum();
    let exc_frac = 1.0 - covered as f64 / total as f64;
    let est_bits_per_value = right_w as f64 + code_width as f64 + exc_frac * (16.0 + 16.0);
    (est_bits_per_value, RdMeta { left_width: lw as u8, dict, code_width: code_width as u8 })
}

/// Encodes one vector under the row-group's cut/dictionary (Algorithm 3).
pub fn encode_rd_vector<F: AlpFloat>(input: &[F], meta: &RdMeta) -> RdVector {
    let len = input.len();
    assert!(len > 0 && len <= VECTOR_SIZE);
    let right_w = meta.right_width::<F>();
    let right_mask = if right_w == 64 { u64::MAX } else { (1u64 << right_w) - 1 };

    let mut lefts = [0u64; VECTOR_SIZE];
    let mut rights = [0u64; VECTOR_SIZE];
    for i in 0..len {
        let bits = input[i].to_bits_u64();
        lefts[i] = bits >> right_w;
        rights[i] = bits & right_mask;
    }

    // Dictionary lookup by linear scan — at most 8 entries, faster and more
    // predictable than hashing.
    let mut codes = [0u64; VECTOR_SIZE];
    let mut exc_positions = Vec::new();
    let mut exc_left = Vec::new();
    for i in 0..len {
        match meta.dict.iter().position(|&d| d as u64 == lefts[i]) {
            Some(c) => codes[i] = c as u64,
            None => {
                exc_positions.push(i as u16);
                exc_left.push(lefts[i] as u16);
                codes[i] = 0;
            }
        }
    }
    // Pad short tails (keeps packed vectors full-size without widening).
    for i in len..VECTOR_SIZE {
        codes[i] = 0;
        rights[i] = 0;
    }

    RdVector {
        packed_codes: bitpack::pack(&codes, meta.code_width as usize),
        packed_right: bitpack::pack(&rights, right_w),
        exc_positions,
        exc_left,
        len: len as u16,
    }
}

/// Decodes one ALP_rd vector into `out[..v.len]` (Algorithm 3, decoding half).
// ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; out.len() is
// asserted at entry, code indices are masked to the padded LUT size, and the
// exception patch loop goes through checked accessors.
pub fn decode_rd_vector<F: AlpFloat>(v: &RdVector, meta: &RdMeta, out: &mut [F]) -> usize {
    assert!(out.len() >= VECTOR_SIZE);
    let right_w = meta.right_width::<F>();

    let mut codes = [0u64; VECTOR_SIZE];
    let mut rights = [0u64; VECTOR_SIZE];
    bitpack::unpack(&v.packed_codes, meta.code_width as usize, &mut codes);
    bitpack::unpack(&v.packed_right, right_w, &mut rights);

    // Fixed-size dictionary LUT: codes are < 2^code_width <= 8, so indexing
    // the padded array needs no bounds check in the hot loop (and stays safe
    // on corrupt inputs).
    debug_assert!(meta.code_width as usize <= 3 && !meta.dict.is_empty());
    let mut lut = [meta.dict[0]; MAX_DICT_SIZE];
    lut[..meta.dict.len()].copy_from_slice(&meta.dict);

    // GLUE: left-shift the dictionary-decoded front bits and OR the right part.
    for i in 0..VECTOR_SIZE {
        let left = lut[(codes[i] as usize) & (MAX_DICT_SIZE - 1)] as u64;
        out[i] = F::from_bits_u64((left << right_w) | rights[i]);
    }
    // Patch left-part exceptions. Positions come off the wire; a corrupt
    // position past the vector end is dropped rather than allowed to panic.
    for (&p, &left) in v.exc_positions.iter().zip(&v.exc_left) {
        let i = p as usize;
        if let (Some(slot), Some(&right)) = (out.get_mut(i), rights.get(i)) {
            *slot = F::from_bits_u64(((left as u64) << right_w) | right);
        }
    }
    v.len as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-precision doubles in a narrow range: classic ALP_rd data.
    fn real_doubles(count: usize) -> Vec<f64> {
        (0..count).map(|i| 0.5 + ((i as f64) * 0.7234).sin() * 1e-4).collect()
    }

    #[test]
    fn choose_cut_finds_low_variance_front() {
        let data = real_doubles(8192);
        let meta = choose_cut::<f64>(&data, 256);
        assert!((1..=16).contains(&(meta.left_width as usize)));
        assert!(!meta.dict.is_empty() && meta.dict.len() <= 8);
        // Values in [0.4999, 0.5001]: front bits nearly constant, so a small
        // dictionary must cover the sample.
        assert!(meta.dict.len() <= 4, "dict {:?}", meta.dict);
    }

    #[test]
    fn rd_roundtrip_narrow_range() {
        let data = real_doubles(1024);
        let meta = choose_cut::<f64>(&data, 256);
        let v = encode_rd_vector(&data, &meta);
        let mut out = vec![0.0f64; VECTOR_SIZE];
        let n = decode_rd_vector(&v, &meta, &mut out);
        assert_eq!(n, 1024);
        for i in 0..1024 {
            assert_eq!(out[i].to_bits(), data[i].to_bits(), "idx {i}");
        }
    }

    #[test]
    fn rd_roundtrip_with_outliers() {
        let mut data = real_doubles(1024);
        data[3] = f64::NAN;
        data[77] = -1e300;
        data[500] = f64::INFINITY;
        data[1023] = 0.0;
        let meta = choose_cut::<f64>(&data, 128);
        let v = encode_rd_vector(&data, &meta);
        assert!(v.exception_count() > 0);
        let mut out = vec![0.0f64; VECTOR_SIZE];
        decode_rd_vector(&v, &meta, &mut out);
        for i in 0..1024 {
            assert_eq!(out[i].to_bits(), data[i].to_bits(), "idx {i}");
        }
    }

    #[test]
    fn rd_roundtrip_short_vector() {
        let data = real_doubles(10);
        let meta = choose_cut::<f64>(&data, 10);
        let v = encode_rd_vector(&data, &meta);
        let mut out = vec![0.0f64; VECTOR_SIZE];
        let n = decode_rd_vector(&v, &meta, &mut out);
        assert_eq!(n, 10);
        for i in 0..10 {
            assert_eq!(out[i].to_bits(), data[i].to_bits());
        }
    }

    #[test]
    fn rd_f32_roundtrip() {
        let data: Vec<f32> = (0..1024).map(|i| ((i as f32) * 0.31).cos() * 0.01).collect();
        let meta = choose_cut::<f32>(&data, 256);
        assert!(meta.right_width::<f32>() >= 16);
        let v = encode_rd_vector(&data, &meta);
        let mut out = vec![0.0f32; VECTOR_SIZE];
        decode_rd_vector(&v, &meta, &mut out);
        for i in 0..1024 {
            assert_eq!(out[i].to_bits(), data[i].to_bits(), "idx {i}");
        }
    }

    #[test]
    fn rd_achieves_some_compression_on_narrow_data() {
        let data = real_doubles(1024);
        let meta = choose_cut::<f64>(&data, 256);
        let v = encode_rd_vector(&data, &meta);
        let bits = v.compressed_bits::<f64>(&meta) as f64 / 1024.0;
        assert!(bits < 64.0, "bits/value = {bits}");
    }
}
