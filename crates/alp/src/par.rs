//! Morsel-driven parallelism primitives shared by the whole workspace.
//!
//! A *morsel* is one index in `0..total` — a row-group, a vector, or a block,
//! depending on the caller. Workers are scoped `std::thread`s that claim
//! morsels from a single shared atomic counter ([`MorselQueue`]): whichever
//! worker finishes first grabs the next index, so skew in per-morsel cost
//! balances itself without any work-splitting heuristics. This is the
//! Tectorwise/morsel-driven design `vectorq` originally carried privately;
//! it now lives here so the compressor ([`crate::Compressor::compress_parallel`]),
//! the codec registry (`alp_core::par`), and the query engine all share one
//! scheduler.
//!
//! Ownership rules (DESIGN.md §10):
//!
//! * each worker owns exactly one scratch state, built by the caller's `init`
//!   closure before the claim loop starts — nothing hot is shared mutably;
//! * results are merged only after every worker has joined, so the reduction
//!   runs single-threaded on the caller's thread;
//! * `threads <= 1` (or a single morsel) short-circuits to a plain serial
//!   loop on the calling thread — no threads are spawned, which keeps
//!   single-threaded callers allocation- and syscall-free.
//!
//! No external dependencies: only `std::thread::scope` and atomics.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable consulted by [`resolve_threads`] when the caller does
/// not pin a thread count explicitly.
pub const THREADS_ENV: &str = "ALP_THREADS";

/// Resolves a worker count: an explicit nonzero request wins, then a nonzero
/// `ALP_THREADS`, then [`std::thread::available_parallelism`], then 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(t) = requested {
        if t > 0 {
            return t;
        }
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 {
                return t;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A shared claim counter over `total` morsels. `claim` hands out each index
/// in `0..total` exactly once across all workers.
#[derive(Debug)]
pub struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

impl MorselQueue {
    /// Queue over morsels `0..total`.
    pub fn new(total: usize) -> Self {
        Self { next: AtomicUsize::new(0), total }
    }

    /// Claims the next unclaimed morsel, or `None` when the queue is drained.
    pub fn claim(&self) -> Option<usize> {
        let m = self.next.fetch_add(1, Ordering::Relaxed);
        (m < self.total).then_some(m)
    }

    /// Number of morsels the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `work` over every morsel in `0..morsels` on up to `threads` workers
/// and returns the results in morsel order, stopping at the first error.
///
/// `init` builds one per-worker scratch state (e.g. a decode buffer pool)
/// before that worker's claim loop starts; `work` receives the worker's
/// scratch and the claimed morsel index. When any morsel fails, remaining
/// workers stop claiming and the first error (in claim order, not morsel
/// order) is returned. A panicking worker is resumed on the calling thread.
pub fn try_map_morsels<T, E, S>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> Result<T, E> + Sync,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
{
    if threads <= 1 || morsels <= 1 {
        let mut scratch = init();
        let mut out = Vec::with_capacity(morsels);
        for m in 0..morsels {
            out.push(work(&mut scratch, m)?);
        }
        return Ok(out);
    }

    let queue = MorselQueue::new(morsels);
    let stop = AtomicBool::new(false);
    let workers = threads.min(morsels);
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let Some(m) = queue.claim() else { break };
                        match work(&mut scratch, m) {
                            Ok(v) => done.push((m, v)),
                            Err(e) => {
                                stop.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                    }
                    Ok(done)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    });

    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(morsels);
    for r in joined {
        pairs.extend(r?);
    }
    pairs.sort_by_key(|&(m, _)| m);
    Ok(pairs.into_iter().map(|(_, v)| v).collect())
}

/// Infallible [`try_map_morsels`]: maps every morsel, results in order.
pub fn map_morsels<T, S>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    T: Send,
{
    let mapped =
        try_map_morsels::<T, core::convert::Infallible, S>(threads, morsels, init, |scratch, m| {
            Ok(work(scratch, m))
        });
    match mapped {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Folds every morsel into per-worker accumulators, then reduces the
/// accumulators on the calling thread. This is the aggregation shape of
/// `vectorq`'s `par_scan`/`par_sum`: order-insensitive, no per-morsel
/// allocation.
pub fn fold_morsels<A>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> A + Sync,
    work: impl Fn(&mut A, usize) + Sync,
    reduce: impl Fn(A, A) -> A,
) -> A
where
    A: Send,
{
    if threads <= 1 || morsels <= 1 {
        let mut acc = init();
        for m in 0..morsels {
            work(&mut acc, m);
        }
        return acc;
    }

    let queue = MorselQueue::new(morsels);
    let workers = threads.min(morsels);
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    while let Some(m) = queue.claim() {
                        work(&mut acc, m);
                    }
                    acc
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(a) => results.push(a),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    });
    partials.into_iter().reduce(reduce).unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_out_each_morsel_once() {
        let q = MorselQueue::new(5);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn map_preserves_morsel_order() {
        for threads in [1, 2, 7] {
            let out = map_morsels(threads, 100, || (), |(), m| m * 3);
            assert_eq!(out, (0..100).map(|m| m * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(map_morsels(4, 0, || (), |(), m| m), Vec::<usize>::new());
        assert_eq!(map_morsels(4, 1, || (), |(), m| m + 10), vec![10]);
    }

    #[test]
    fn try_map_surfaces_first_error() {
        for threads in [1, 3] {
            let r = try_map_morsels(
                threads,
                50,
                || (),
                |(), m| {
                    if m == 17 {
                        Err("boom")
                    } else {
                        Ok(m)
                    }
                },
            );
            assert_eq!(r, Err("boom"));
        }
    }

    #[test]
    fn fold_matches_serial_sum() {
        for threads in [1, 2, 7] {
            let total = fold_morsels(threads, 1000, || 0usize, |acc, m| *acc += m, |a, b| a + b);
            assert_eq!(total, 1000 * 999 / 2);
        }
    }

    #[test]
    fn workers_build_independent_scratch() {
        // Each worker must see its own scratch: the counter per scratch can
        // never exceed the total morsel count, and sums across workers to it.
        let out = map_morsels(
            4,
            64,
            || 0usize,
            |local, _m| {
                *local += 1;
                *local
            },
        );
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&c| (1..=64).contains(&c)));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }
}
