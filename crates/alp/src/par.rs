//! Morsel-driven parallelism primitives shared by the whole workspace.
//!
//! A *morsel* is one index in `0..total` — a row-group, a vector, or a block,
//! depending on the caller. Workers are scoped `std::thread`s that claim
//! morsels from a single shared atomic counter ([`MorselQueue`]): whichever
//! worker finishes first grabs the next index, so skew in per-morsel cost
//! balances itself without any work-splitting heuristics. This is the
//! Tectorwise/morsel-driven design `vectorq` originally carried privately;
//! it now lives here so the compressor ([`crate::Compressor::compress_parallel`]),
//! the codec registry (`alp_core::par`), and the query engine all share one
//! scheduler.
//!
//! Ownership rules (DESIGN.md §10):
//!
//! * each worker owns exactly one scratch state, built by the caller's `init`
//!   closure before the claim loop starts — nothing hot is shared mutably;
//! * results are merged only after every worker has joined, so the reduction
//!   runs single-threaded on the caller's thread;
//! * `threads <= 1` (or a single morsel) short-circuits to a plain serial
//!   loop on the calling thread — no threads are spawned, which keeps
//!   single-threaded callers allocation- and syscall-free.
//!
//! Panics inside `work` are handled by the *containment* seam (DESIGN.md
//! §11): the strict entry points ([`try_map_morsels`], [`map_morsels`],
//! [`fold_morsels`]) re-raise the panic on the calling thread with the
//! poisoned morsel's index attached, while [`run_morsels_contained`]
//! quarantines it into a [`MorselFailure`] report and keeps going — the
//! degraded path behind `decompress_parallel_salvage`, and the seam the
//! pipelined ingest workers ([`crate::pipeline`]) compress inside so a
//! poisoned row-group surfaces as a typed error instead of a torn frame.
//!
//! No external dependencies: only `std::thread::scope` and atomics.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The one place in the workspace where unwinding is caught (enforced by the
/// analyzer's `contained-unwind` rule): every `catch_unwind` goes through
/// here so panic policy — what is caught, how payloads are rendered, how
/// strict paths re-raise — lives in a single seam.
mod containment {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f`, turning a panic into its boxed payload. `AssertUnwindSafe`
    /// is sound here because callers either re-raise (strict paths — the
    /// possibly-torn state is abandoned with the unwind) or rebuild the
    /// worker scratch from `init` before touching it again (contained path).
    pub(super) fn run<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send>> {
        catch_unwind(AssertUnwindSafe(f))
    }

    /// Renders a panic payload's message — panics carry `&str` or `String`
    /// payloads in practice; anything else gets a placeholder.
    pub(super) fn payload_message(payload: &(dyn Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Re-raises a contained panic on the calling thread with the morsel
    /// index prepended, so the abort says *which* work unit died instead of
    /// the bare payload the scheduler used to forward.
    pub(super) fn resume_with_morsel(morsel: usize, payload: Box<dyn Any + Send>) -> ! {
        std::panic::resume_unwind(Box::new(format!(
            "morsel {morsel} panicked: {}",
            payload_message(&*payload)
        )))
    }
}

/// Cooperative cancellation for morsel runs: an explicit `cancel()` flag
/// and/or a wall-clock deadline, checked by workers **at morsel boundaries**
/// (between claims, never mid-kernel). Cloning shares the same underlying
/// state, so a service can hand one token to a query and cancel it from any
/// thread — the query's workers stop claiming and release themselves at the
/// next boundary.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

#[derive(Debug)]
struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self { inner: Arc::new(TokenState { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that auto-cancels once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Requests cancellation. Idempotent; takes effect at the next morsel
    /// boundary of any run observing this token.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired — explicitly or by deadline expiry.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A morsel whose `work` panicked, quarantined by [`run_morsels_contained`]
/// instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MorselFailure {
    /// Index of the poisoned morsel.
    pub morsel: usize,
    /// Rendered panic message.
    pub message: String,
}

impl core::fmt::Display for MorselFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "morsel {} panicked: {}", self.morsel, self.message)
    }
}

/// Environment variable consulted by [`resolve_threads`] when the caller does
/// not pin a thread count explicitly.
pub const THREADS_ENV: &str = "ALP_THREADS";

/// Resolves a worker count: an explicit nonzero request wins, then a nonzero
/// `ALP_THREADS`, then [`std::thread::available_parallelism`], then 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(t) = requested {
        if t > 0 {
            return t;
        }
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 {
                return t;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A shared claim counter over `total` morsels. `claim` hands out each index
/// in `0..total` exactly once across all workers.
#[derive(Debug)]
pub struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

impl MorselQueue {
    /// Queue over morsels `0..total`.
    pub fn new(total: usize) -> Self {
        Self { next: AtomicUsize::new(0), total }
    }

    /// Claims the next unclaimed morsel, or `None` when the queue is drained.
    pub fn claim(&self) -> Option<usize> {
        let m = self.next.fetch_add(1, Ordering::Relaxed);
        (m < self.total).then_some(m)
    }

    /// Number of morsels the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `work` over every morsel in `0..morsels` on up to `threads` workers
/// and returns the results in morsel order, stopping at the first error.
///
/// `init` builds one per-worker scratch state (e.g. a decode buffer pool)
/// before that worker's claim loop starts; `work` receives the worker's
/// scratch and the claimed morsel index. When any morsel fails, remaining
/// workers stop claiming and the first error (in claim order, not morsel
/// order) is returned. A panicking morsel is re-raised on the calling thread
/// with its index attached; see [`run_morsels_contained`] for the variant
/// that quarantines it instead.
pub fn try_map_morsels<T, E, S>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> Result<T, E> + Sync,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
{
    if threads <= 1 || morsels <= 1 {
        let mut scratch = init();
        let mut out = Vec::with_capacity(morsels);
        for m in 0..morsels {
            out.push(work(&mut scratch, m)?);
        }
        return Ok(out);
    }

    /// How one strict worker's claim loop ended.
    enum StrictEnd<T, E> {
        /// Queue drained (or another worker raised `stop`).
        Done(Vec<(usize, T)>),
        /// A morsel returned `Err`.
        Failed(E),
        /// A morsel panicked; re-raised with context after the join.
        Panicked(usize, Box<dyn Any + Send>),
    }

    let queue = MorselQueue::new(morsels);
    let stop = AtomicBool::new(false);
    let workers = threads.min(morsels);
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let Some(m) = queue.claim() else { break };
                        match containment::run(|| work(&mut scratch, m)) {
                            Ok(Ok(v)) => done.push((m, v)),
                            Ok(Err(e)) => {
                                stop.store(true, Ordering::Relaxed);
                                return StrictEnd::Failed(e);
                            }
                            Err(payload) => {
                                stop.store(true, Ordering::Relaxed);
                                return StrictEnd::Panicked(m, payload);
                            }
                        }
                    }
                    StrictEnd::Done(done)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(end) => results.push(end),
                // Only `init` runs outside containment; nothing is known
                // about the payload, so forward it untouched.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    });

    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(morsels);
    let mut first_err: Option<E> = None;
    for end in joined {
        match end {
            StrictEnd::Done(r) => pairs.extend(r),
            StrictEnd::Failed(e) => {
                first_err.get_or_insert(e);
            }
            // A panic outranks any `Err`: it must never be swallowed.
            StrictEnd::Panicked(m, payload) => containment::resume_with_morsel(m, payload),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    pairs.sort_by_key(|&(m, _)| m);
    Ok(pairs.into_iter().map(|(_, v)| v).collect())
}

/// Like [`map_morsels`], but a panicking morsel is *contained* instead of
/// aborting the run: the panic is caught at the morsel boundary, the morsel
/// is quarantined into a [`MorselFailure`] (index + rendered payload), the
/// worker rebuilds its scratch from `init` (the panic may have torn it
/// mid-mutation), and every other morsel still completes.
///
/// Returns the surviving `(morsel, result)` pairs and the failure reports,
/// both sorted by morsel index. This is the engine behind
/// `Compressed::decompress_parallel_salvage`, where one poisoned row-group
/// degrades to a lost-row-group report rather than a process abort.
pub fn run_morsels_contained<T, S>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> (Vec<(usize, T)>, Vec<MorselFailure>)
where
    T: Send,
{
    let run = run_morsels_governed(threads, morsels, &CancelToken::new(), init, work);
    (run.completed, run.failures)
}

/// Outcome of [`run_morsels_governed`]: surviving results, quarantined
/// failures, and whether the run was cut short by its [`CancelToken`].
#[derive(Debug)]
pub struct GovernedRun<T> {
    /// Surviving `(morsel, result)` pairs, sorted by morsel index.
    pub completed: Vec<(usize, T)>,
    /// One report per morsel whose `work` panicked, sorted by index.
    pub failures: Vec<MorselFailure>,
    /// True when the token fired before every morsel was claimed: the
    /// results above cover only the morsels processed before the boundary
    /// check observed cancellation.
    pub cancelled: bool,
}

/// The full-policy morsel runner: panic containment *and* cooperative
/// cancellation. Workers consult `token` before every claim, so a cancelled
/// or deadline-expired run stops at the next morsel boundary — in-flight
/// morsels finish (a kernel is never interrupted mid-decode), unclaimed ones
/// are abandoned, and the workers release themselves back to the caller.
/// Panic handling is identical to [`run_morsels_contained`]: the poisoned
/// morsel is quarantined into a [`MorselFailure`] and the worker rebuilds
/// its scratch from `init`.
///
/// This is the execution seam for `vectorq::service` queries: one query =
/// one governed run, whose token carries the query's deadline.
pub fn run_morsels_governed<T, S>(
    threads: usize,
    morsels: usize,
    token: &CancelToken,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> GovernedRun<T>
where
    T: Send,
{
    if threads <= 1 || morsels <= 1 {
        let mut scratch = init();
        let mut completed = Vec::with_capacity(morsels);
        let mut failures = Vec::new();
        for m in 0..morsels {
            if token.is_cancelled() {
                return GovernedRun { completed, failures, cancelled: true };
            }
            match containment::run(|| work(&mut scratch, m)) {
                Ok(v) => completed.push((m, v)),
                Err(payload) => {
                    failures.push(MorselFailure {
                        morsel: m,
                        message: containment::payload_message(&*payload),
                    });
                    scratch = init();
                }
            }
        }
        return GovernedRun { completed, failures, cancelled: false };
    }

    let queue = MorselQueue::new(morsels);
    let workers = threads.min(morsels);
    let cut_short = AtomicBool::new(false);
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut ok: Vec<(usize, T)> = Vec::new();
                    let mut failed: Vec<MorselFailure> = Vec::new();
                    loop {
                        if token.is_cancelled() {
                            cut_short.store(true, Ordering::Relaxed);
                            break;
                        }
                        let Some(m) = queue.claim() else { break };
                        match containment::run(|| work(&mut scratch, m)) {
                            Ok(v) => ok.push((m, v)),
                            Err(payload) => {
                                failed.push(MorselFailure {
                                    morsel: m,
                                    message: containment::payload_message(&*payload),
                                });
                                scratch = init();
                            }
                        }
                    }
                    (ok, failed)
                })
            })
            .collect();
        let mut parts = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(p) => parts.push(p),
                // Only `init` runs outside containment.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        parts
    });

    let mut completed = Vec::with_capacity(morsels);
    let mut failures = Vec::new();
    for (o, f) in joined {
        completed.extend(o);
        failures.extend(f);
    }
    completed.sort_by_key(|&(m, _)| m);
    failures.sort_by_key(|f| f.morsel);
    // "Cancelled" means morsels were actually abandoned: a token that fires
    // after the queue drained (but before a worker's final boundary check)
    // cut nothing short.
    let abandoned = completed.len() + failures.len() < morsels;
    GovernedRun { completed, failures, cancelled: cut_short.load(Ordering::Relaxed) && abandoned }
}

/// Infallible [`try_map_morsels`]: maps every morsel, results in order.
pub fn map_morsels<T, S>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    T: Send,
{
    let mapped =
        try_map_morsels::<T, core::convert::Infallible, S>(threads, morsels, init, |scratch, m| {
            Ok(work(scratch, m))
        });
    match mapped {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Folds every morsel into per-worker accumulators, then reduces the
/// accumulators on the calling thread. This is the aggregation shape of
/// `vectorq`'s `par_scan`/`par_sum`: order-insensitive, no per-morsel
/// allocation.
pub fn fold_morsels<A>(
    threads: usize,
    morsels: usize,
    init: impl Fn() -> A + Sync,
    work: impl Fn(&mut A, usize) + Sync,
    reduce: impl Fn(A, A) -> A,
) -> A
where
    A: Send,
{
    if threads <= 1 || morsels <= 1 {
        let mut acc = init();
        for m in 0..morsels {
            work(&mut acc, m);
        }
        return acc;
    }

    let queue = MorselQueue::new(morsels);
    let workers = threads.min(morsels);
    // One worker hitting a panic stops the whole fold: siblings poll the
    // stop flag before each claim so they quit draining the queue instead of
    // folding morsels whose result will be thrown away by the re-raise.
    let stop = AtomicBool::new(false);
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    while !stop.load(Ordering::Relaxed) {
                        let Some(m) = queue.claim() else { break };
                        if let Err(payload) = containment::run(|| work(&mut acc, m)) {
                            stop.store(true, Ordering::Relaxed);
                            return Err((m, payload));
                        }
                    }
                    Ok(acc)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(Ok(a)) => results.push(a),
                // Re-raise with the poisoned morsel's index attached.
                Ok(Err((m, payload))) => containment::resume_with_morsel(m, payload),
                // Only `init` runs outside containment.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        results
    });
    partials.into_iter().reduce(reduce).unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_out_each_morsel_once() {
        let q = MorselQueue::new(5);
        let mut seen: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn map_preserves_morsel_order() {
        for threads in [1, 2, 7] {
            let out = map_morsels(threads, 100, || (), |(), m| m * 3);
            assert_eq!(out, (0..100).map(|m| m * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(map_morsels(4, 0, || (), |(), m| m), Vec::<usize>::new());
        assert_eq!(map_morsels(4, 1, || (), |(), m| m + 10), vec![10]);
    }

    #[test]
    fn try_map_surfaces_first_error() {
        for threads in [1, 3] {
            let r = try_map_morsels(
                threads,
                50,
                || (),
                |(), m| {
                    if m == 17 {
                        Err("boom")
                    } else {
                        Ok(m)
                    }
                },
            );
            assert_eq!(r, Err("boom"));
        }
    }

    #[test]
    fn fold_matches_serial_sum() {
        for threads in [1, 2, 7] {
            let total = fold_morsels(threads, 1000, || 0usize, |acc, m| *acc += m, |a, b| a + b);
            assert_eq!(total, 1000 * 999 / 2);
        }
    }

    #[test]
    fn workers_build_independent_scratch() {
        // Each worker must see its own scratch: the counter per scratch can
        // never exceed the total morsel count, and sums across workers to it.
        let out = map_morsels(
            4,
            64,
            || 0usize,
            |local, _m| {
                *local += 1;
                *local
            },
        );
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&c| (1..=64).contains(&c)));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn contained_run_quarantines_poisoned_morsels() {
        for threads in [1, 4] {
            let (ok, failed) = run_morsels_contained(
                threads,
                40,
                || (),
                |(), m| {
                    if m == 7 || m == 23 {
                        panic!("poisoned morsel {m}");
                    }
                    m * 2
                },
            );
            assert_eq!(ok.len(), 38);
            assert!(ok.iter().all(|&(m, v)| v == m * 2));
            let lost: Vec<usize> = failed.iter().map(|f| f.morsel).collect();
            assert_eq!(lost, vec![7, 23]);
            assert!(failed[0].message.contains("poisoned morsel 7"), "got: {}", failed[0].message);
        }
    }

    #[test]
    fn contained_run_rebuilds_scratch_after_panic() {
        // The scratch is re-initialized after a contained panic, so torn
        // mutations from the poisoned morsel never leak into later ones.
        let (ok, failed) = run_morsels_contained(
            1,
            3,
            || 0usize,
            |scratch, m| {
                *scratch += 100;
                if m == 1 {
                    panic!("die");
                }
                *scratch
            },
        );
        assert_eq!(ok, vec![(0, 100), (2, 100)]);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].morsel, 1);
    }

    #[test]
    fn governed_run_without_cancellation_matches_contained() {
        for threads in [1, 4] {
            let run = run_morsels_governed(
                threads,
                40,
                &CancelToken::new(),
                || (),
                |(), m| {
                    if m == 7 {
                        panic!("poisoned morsel {m}");
                    }
                    m * 2
                },
            );
            assert!(!run.cancelled);
            assert_eq!(run.completed.len(), 39);
            assert_eq!(run.failures.len(), 1);
            assert_eq!(run.failures[0].morsel, 7);
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_claim() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let hits = AtomicUsize::new(0);
            let run = run_morsels_governed(
                threads,
                64,
                &token,
                || (),
                |(), m| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    m
                },
            );
            assert!(run.cancelled);
            assert!(run.completed.is_empty());
            assert_eq!(hits.load(Ordering::Relaxed), 0, "t={threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_abandons_remaining_morsels() {
        // Serial path: cancel from inside morsel 4's work; the boundary check
        // before morsel 5 must observe it.
        let token = CancelToken::new();
        let run = run_morsels_governed(
            1,
            100,
            &token,
            || (),
            |(), m| {
                if m == 4 {
                    token.cancel();
                }
                m
            },
        );
        assert!(run.cancelled);
        assert_eq!(run.completed.len(), 5);
        assert!(run.failures.is_empty());
    }

    #[test]
    fn expired_deadline_cancels_the_token() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        let run = run_morsels_governed(2, 16, &token, || (), |(), m| m);
        assert!(run.cancelled);
        assert!(run.completed.is_empty());
    }

    #[test]
    fn token_without_deadline_never_self_cancels() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.deadline(), None);
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "clones share cancellation state");
    }

    #[test]
    fn strict_map_panic_carries_morsel_context() {
        let caught = std::panic::catch_unwind(|| {
            map_morsels(
                4,
                32,
                || (),
                |(), m| {
                    if m == 17 {
                        panic!("kaboom");
                    }
                    m
                },
            )
        });
        let payload = caught.expect_err("the poisoned morsel must abort the strict path");
        let msg = payload.downcast_ref::<String>().expect("context payload is a String");
        assert!(msg.contains("morsel 17"), "got: {msg}");
        assert!(msg.contains("kaboom"), "got: {msg}");
    }

    #[test]
    fn strict_fold_panic_carries_morsel_context() {
        let caught = std::panic::catch_unwind(|| {
            fold_morsels(
                3,
                64,
                || 0usize,
                |acc, m| {
                    if m == 9 {
                        panic!("fold-bomb");
                    }
                    *acc += m;
                },
                |a, b| a + b,
            )
        });
        let payload = caught.expect_err("the poisoned morsel must abort the fold");
        let msg = payload.downcast_ref::<String>().expect("context payload is a String");
        assert!(msg.contains("morsel 9"), "got: {msg}");
        assert!(msg.contains("fold-bomb"), "got: {msg}");
    }
}
