//! Column-level compression: splits data into row-groups of `w × 1024` values,
//! runs level-1 sampling once per row-group to pick the scheme (ALP vs ALP_rd)
//! and the candidate combinations, then encodes vector by vector.

use fastlanes::VECTOR_SIZE;

use crate::decode::{decode_vector, decode_vector_unfused};
use crate::encode::{encode_vector_into, AlpVector, ExcArena, ExcView, OwnedAlpVector};
use crate::rd::{choose_cut, decode_rd_vector, encode_rd_vector, RdMeta, RdVector};
use crate::sampler::{first_level, second_level, SamplerParams, SamplerStats};
use crate::traits::AlpFloat;

/// Which encoding a row-group uses (§3.4: the decision is per row-group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Decimal encoding (`ALP_enc`/`ALP_dec` + FFOR).
    Alp,
    /// Front-bits encoding for real doubles.
    AlpRd,
}

/// An ALP row-group's vectors plus the shared arena holding all their
/// exceptions — one pair of allocations per row-group instead of two per
/// vector.
#[derive(Debug, Clone, Default)]
pub struct AlpGroup {
    /// Encoded vectors; each indexes `exceptions` by `(exc_start, exc_count)`.
    pub vectors: Vec<AlpVector>,
    /// The exception streams of all vectors, concatenated.
    pub exceptions: ExcArena,
}

impl AlpGroup {
    /// Exception view of one vector.
    pub fn view(&self, v: &AlpVector) -> ExcView<'_> {
        self.exceptions.view(v)
    }

    /// Clones vector `i` out together with its exceptions (convenience for
    /// single-vector consumers — ablations, figure benches).
    pub fn owned_vector(&self, i: usize) -> Option<OwnedAlpVector> {
        let v = self.vectors.get(i)?;
        let view = self.view(v);
        let mut exceptions = ExcArena::new();
        for (&p, &bits) in view.positions.iter().zip(view.values) {
            exceptions.push(p, bits);
        }
        let mut vector = v.clone();
        vector.exc_start = 0;
        Some(OwnedAlpVector { vector, exceptions })
    }
}

/// One compressed row-group.
#[derive(Debug, Clone)]
pub enum RowGroup {
    /// Plain ALP vectors sharing one exception arena.
    Alp(AlpGroup),
    /// ALP_rd vectors plus the shared cut/dictionary metadata.
    Rd(RdMeta, Vec<RdVector>),
}

impl RowGroup {
    /// Scheme tag for reporting.
    pub fn scheme(&self) -> Scheme {
        match self {
            RowGroup::Alp(_) => Scheme::Alp,
            RowGroup::Rd(..) => Scheme::AlpRd,
        }
    }

    /// Number of vectors in this row-group.
    pub fn vector_count(&self) -> usize {
        match self {
            RowGroup::Alp(g) => g.vectors.len(),
            RowGroup::Rd(_, v) => v.len(),
        }
    }

    /// Number of live values in this row-group.
    pub fn len(&self) -> usize {
        match self {
            RowGroup::Alp(g) => g.vectors.iter().map(|x| x.len as usize).sum(),
            RowGroup::Rd(_, v) => v.iter().map(|x| x.len as usize).sum(),
        }
    }

    /// Whether the row-group holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact compressed size in bits (header + payload + exceptions).
    pub fn compressed_bits<F: AlpFloat>(&self) -> usize {
        let scheme_tag = 8;
        match self {
            RowGroup::Alp(g) => {
                scheme_tag + g.vectors.iter().map(|v| v.compressed_bits::<F>()).sum::<usize>()
            }
            RowGroup::Rd(meta, vs) => {
                scheme_tag
                    + meta.header_bits()
                    + vs.iter().map(|v| v.compressed_bits::<F>(meta)).sum::<usize>()
            }
        }
    }
}

/// A fully compressed column.
#[derive(Debug, Clone)]
pub struct Compressed<F: AlpFloat> {
    /// Row-groups in order.
    pub rowgroups: Vec<RowGroup>,
    /// Total number of values.
    pub len: usize,
    /// Sampling statistics accumulated during compression.
    pub stats: SamplerStats,
    _marker: core::marker::PhantomData<F>,
}

impl<F: AlpFloat> Compressed<F> {
    /// Assembles a column from already-encoded row-groups (used by the
    /// deserializer and by cascade encodings that build row-groups directly).
    pub fn from_rowgroups(rowgroups: Vec<RowGroup>, len: usize) -> Self {
        Self { rowgroups, len, stats: SamplerStats::default(), _marker: core::marker::PhantomData }
    }

    /// Exact compressed size in bits.
    pub fn compressed_bits(&self) -> usize {
        self.rowgroups.iter().map(|rg| rg.compressed_bits::<F>()).sum()
    }

    /// Compression ratio in bits per value — the metric of Table 4.
    pub fn bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.compressed_bits() as f64 / self.len as f64
        }
    }

    /// Decompresses the whole column.
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of the reused scratch buffer being sliced.
    pub fn decompress(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = vec![F::from_bits_u64(0); VECTOR_SIZE];
        for rg in &self.rowgroups {
            match rg {
                RowGroup::Alp(g) => {
                    for v in &g.vectors {
                        let n = decode_vector(v, g.view(v), &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
                RowGroup::Rd(meta, vs) => {
                    for v in vs {
                        let n = decode_rd_vector(v, meta, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        out
    }

    /// Decompresses a single vector (`rowgroup`, `vector`) into `out`
    /// (≥ 1024 elements); returns the live count. This is the skip-friendly
    /// access path that block-based compressors cannot offer.
    ///
    /// # Panics
    /// Panics if `rowgroup`/`vector` are out of range, like slice indexing.
    // ANALYZER-ALLOW(no-panic): positional panic is this accessor's documented
    // contract; counts are available via rowgroups() for callers that check.
    pub fn decompress_vector(&self, rowgroup: usize, vector: usize, out: &mut [F]) -> usize {
        match &self.rowgroups[rowgroup] {
            RowGroup::Alp(g) => {
                let v = &g.vectors[vector];
                decode_vector(v, g.view(v), out)
            }
            RowGroup::Rd(meta, vs) => decode_rd_vector(&vs[vector], meta, out),
        }
    }

    /// Same as [`Compressed::decompress`] but through the *unfused* decode
    /// kernels — the Figure 5 baseline.
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of the reused scratch buffer being sliced.
    pub fn decompress_unfused(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = vec![F::from_bits_u64(0); VECTOR_SIZE];
        let mut scratch = vec![0i64; VECTOR_SIZE];
        for rg in &self.rowgroups {
            match rg {
                RowGroup::Alp(g) => {
                    for v in &g.vectors {
                        let n = decode_vector_unfused(v, g.view(v), &mut scratch, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
                RowGroup::Rd(meta, vs) => {
                    for v in vs {
                        let n = decode_rd_vector(v, meta, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        out
    }
}

/// The ALP compressor. Construct once (optionally with custom
/// [`SamplerParams`]) and reuse across columns.
#[derive(Debug, Clone, Default)]
pub struct Compressor {
    params: SamplerParams,
}

impl Compressor {
    /// Compressor with the paper's default sampling parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compressor with custom sampling parameters.
    pub fn with_params(params: SamplerParams) -> Self {
        Self { params }
    }

    /// The active sampling parameters.
    pub fn params(&self) -> &SamplerParams {
        &self.params
    }

    /// Compresses a column of floats.
    pub fn compress<F: AlpFloat>(&self, data: &[F]) -> Compressed<F> {
        let rg_values = self.params.vectors_per_rowgroup * VECTOR_SIZE;
        let mut stats = SamplerStats::default();
        let mut rowgroups = Vec::with_capacity(data.len().div_ceil(rg_values.max(1)));

        for rg_data in data.chunks(rg_values.max(1)) {
            let outcome = first_level(rg_data, &self.params);
            if outcome.should_use_rd::<F>() {
                stats.rowgroups_rd += 1;
                let meta = choose_cut::<F>(
                    rg_data,
                    self.params.sample_vectors * self.params.sample_values,
                );
                let vectors = rg_data
                    .chunks(VECTOR_SIZE)
                    .map(|chunk| encode_rd_vector(chunk, &meta))
                    .collect();
                rowgroups.push(RowGroup::Rd(meta, vectors));
            } else {
                stats.rowgroups_alp += 1;
                let mut group = AlpGroup {
                    vectors: Vec::with_capacity(rg_data.len().div_ceil(VECTOR_SIZE)),
                    exceptions: ExcArena::new(),
                };
                for chunk in rg_data.chunks(VECTOR_SIZE) {
                    let combo =
                        second_level(chunk, &outcome.combinations, &self.params, &mut stats);
                    group
                        .vectors
                        .push(encode_vector_into(chunk, combo.e, combo.f, &mut group.exceptions));
                }
                rowgroups.push(RowGroup::Alp(group));
            }
        }

        Compressed { rowgroups, len: data.len(), stats, _marker: core::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_lossless(data: &[f64]) -> Compressed<f64> {
        let c = Compressor::new().compress(data);
        let back = c.decompress();
        assert_eq!(back.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        c
    }

    #[test]
    fn empty_column() {
        let c = Compressor::new().compress::<f64>(&[]);
        assert_eq!(c.len, 0);
        assert!(c.decompress().is_empty());
        assert_eq!(c.bits_per_value(), 0.0);
    }

    #[test]
    fn decimal_column_compresses_well() {
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 9973) as f64) / 100.0).collect();
        let c = assert_lossless(&data);
        assert_eq!(c.stats.rowgroups_rd, 0);
        assert!(c.bits_per_value() < 22.0, "bpv {}", c.bits_per_value());
    }

    #[test]
    fn real_double_column_switches_to_rd() {
        let data: Vec<f64> = (0..120_000).map(|i| (i as f64 * 0.577).sin() * 0.001).collect();
        let c = assert_lossless(&data);
        assert!(c.stats.rowgroups_rd > 0, "{:?}", c.stats);
        // ALP_rd achieves at most modest compression on real doubles.
        assert!(c.bits_per_value() <= 64.0 + 1.0);
    }

    #[test]
    fn mixed_rowgroups_pick_schemes_independently() {
        let mut data: Vec<f64> = (0..102_400).map(|i| (i % 1000) as f64 * 0.25).collect();
        data.extend((0..102_400).map(|i| ((i as f64) * 0.31).cos() * 1e-5));
        let c = assert_lossless(&data);
        assert_eq!(c.rowgroups.len(), 2);
        assert_eq!(c.rowgroups[0].scheme(), Scheme::Alp);
        assert_eq!(c.rowgroups[1].scheme(), Scheme::AlpRd);
    }

    #[test]
    fn vector_random_access_matches_full_decode() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let full = c.decompress();
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        let n = c.decompress_vector(0, 2, &mut buf);
        assert_eq!(n, 1024);
        assert_eq!(&full[2048..2048 + n], &buf[..n]);
        // Last, short vector.
        let n_last = c.decompress_vector(0, 4, &mut buf);
        assert_eq!(n_last, 5000 - 4096);
        assert_eq!(&full[4096..], &buf[..n_last]);
    }

    #[test]
    fn special_values_roundtrip_anywhere() {
        let mut data: Vec<f64> = (0..8000).map(|i| (i as f64) / 8.0).collect();
        data[0] = f64::NAN;
        data[1] = -0.0;
        data[4000] = f64::INFINITY;
        data[7999] = f64::MIN_POSITIVE / 2.0; // subnormal
        assert_lossless(&data);
    }

    #[test]
    fn unfused_decode_is_identical() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i * 7) % 99991) as f64 / 1000.0).collect();
        let c = Compressor::new().compress(&data);
        assert_eq!(c.decompress(), c.decompress_unfused());
    }

    #[test]
    fn f32_column_roundtrips() {
        let data: Vec<f32> = (0..30_000).map(|i| ((i % 2048) as f32) / 4.0).collect();
        let c = Compressor::new().compress(&data);
        let back = c.decompress();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(c.bits_per_value() < 32.0);
    }

    #[test]
    fn f32_real_floats_use_rd() {
        let data: Vec<f32> = (0..120_000).map(|i| ((i as f32) * 0.113).sin() * 0.02).collect();
        let c = Compressor::new().compress(&data);
        assert!(c.stats.rowgroups_rd > 0);
        let back = c.decompress();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
