//! Column-level compression: splits data into row-groups of `w × 1024` values,
//! runs level-1 sampling once per row-group to pick the scheme (ALP vs ALP_rd)
//! and the candidate combinations, then encodes vector by vector.

use fastlanes::VECTOR_SIZE;

use crate::decode::{decode_vector, decode_vector_unfused, scan_decoded, scan_vector, VectorScan};
use crate::encode::{encode_vector_into, AlpVector, ExcArena, ExcView, OwnedAlpVector};
use crate::rd::{choose_cut, decode_rd_vector, encode_rd_vector, RdMeta, RdVector};
use crate::sampler::{first_level, second_level, ConfigError, SamplerParams, SamplerStats};
use crate::traits::AlpFloat;

/// An out-of-range `(rowgroup, vector)` coordinate passed to
/// [`Compressed::try_decompress_vector`], naming the failing axis and the
/// live count on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorIndexError {
    /// The row-group index was `index` but the column has `count` row-groups.
    RowGroup {
        /// Requested row-group index.
        index: usize,
        /// Number of row-groups in the column.
        count: usize,
    },
    /// The vector index was `index` but the row-group has `count` vectors.
    Vector {
        /// Requested vector index.
        index: usize,
        /// Number of vectors in the addressed row-group.
        count: usize,
    },
}

impl core::fmt::Display for VectorIndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::RowGroup { index, count } => {
                write!(f, "row-group index {index} out of range (column has {count} row-groups)")
            }
            Self::Vector { index, count } => {
                write!(f, "vector index {index} out of range (row-group has {count} vectors)")
            }
        }
    }
}

impl std::error::Error for VectorIndexError {}

/// Which encoding a row-group uses (§3.4: the decision is per row-group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Decimal encoding (`ALP_enc`/`ALP_dec` + FFOR).
    Alp,
    /// Front-bits encoding for real doubles.
    AlpRd,
}

/// An ALP row-group's vectors plus the shared arena holding all their
/// exceptions — one pair of allocations per row-group instead of two per
/// vector.
#[derive(Debug, Clone, Default)]
pub struct AlpGroup {
    /// Encoded vectors; each indexes `exceptions` by `(exc_start, exc_count)`.
    pub vectors: Vec<AlpVector>,
    /// The exception streams of all vectors, concatenated.
    pub exceptions: ExcArena,
}

impl AlpGroup {
    /// Exception view of one vector.
    pub fn view(&self, v: &AlpVector) -> ExcView<'_> {
        self.exceptions.view(v)
    }

    /// Clones vector `i` out together with its exceptions (convenience for
    /// single-vector consumers — ablations, figure benches).
    pub fn owned_vector(&self, i: usize) -> Option<OwnedAlpVector> {
        let v = self.vectors.get(i)?;
        let view = self.view(v);
        let mut exceptions = ExcArena::new();
        for (&p, &bits) in view.positions.iter().zip(view.values) {
            exceptions.push(p, bits);
        }
        let mut vector = v.clone();
        vector.exc_start = 0;
        Some(OwnedAlpVector { vector, exceptions })
    }
}

/// One compressed row-group.
#[derive(Debug, Clone)]
pub enum RowGroup {
    /// Plain ALP vectors sharing one exception arena.
    Alp(AlpGroup),
    /// ALP_rd vectors plus the shared cut/dictionary metadata.
    Rd(RdMeta, Vec<RdVector>),
}

impl RowGroup {
    /// Scheme tag for reporting.
    pub fn scheme(&self) -> Scheme {
        match self {
            RowGroup::Alp(_) => Scheme::Alp,
            RowGroup::Rd(..) => Scheme::AlpRd,
        }
    }

    /// Number of vectors in this row-group.
    pub fn vector_count(&self) -> usize {
        match self {
            RowGroup::Alp(g) => g.vectors.len(),
            RowGroup::Rd(_, v) => v.len(),
        }
    }

    /// Number of live values in this row-group.
    pub fn len(&self) -> usize {
        match self {
            RowGroup::Alp(g) => g.vectors.iter().map(|x| x.len as usize).sum(),
            RowGroup::Rd(_, v) => v.iter().map(|x| x.len as usize).sum(),
        }
    }

    /// Whether the row-group holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact compressed size in bits (header + payload + exceptions).
    pub fn compressed_bits<F: AlpFloat>(&self) -> usize {
        let scheme_tag = 8;
        match self {
            RowGroup::Alp(g) => {
                scheme_tag + g.vectors.iter().map(|v| v.compressed_bits::<F>()).sum::<usize>()
            }
            RowGroup::Rd(meta, vs) => {
                scheme_tag
                    + meta.header_bits()
                    + vs.iter().map(|v| v.compressed_bits::<F>(meta)).sum::<usize>()
            }
        }
    }
}

/// Result of [`Compressed::decompress_parallel_salvage`]: the values of
/// every row-group that decoded cleanly, plus quarantine reports for the
/// poisoned ones.
#[derive(Debug)]
pub struct DecompressSalvage<F> {
    /// Decoded values of surviving row-groups, concatenated in row-group
    /// order (lost row-groups simply leave a gap).
    pub values: Vec<F>,
    /// One report per row-group whose decode panicked, sorted by index.
    pub lost_rowgroups: Vec<crate::par::MorselFailure>,
    /// Row-groups the column held in total.
    pub total_rowgroups: usize,
}

impl<F> DecompressSalvage<F> {
    /// Whether every row-group decoded (no losses).
    pub fn is_complete(&self) -> bool {
        self.lost_rowgroups.is_empty()
    }
}

/// A fully compressed column.
#[derive(Debug, Clone)]
pub struct Compressed<F: AlpFloat> {
    /// Row-groups in order.
    pub rowgroups: Vec<RowGroup>,
    /// Total number of values.
    pub len: usize,
    /// Sampling statistics accumulated during compression.
    pub stats: SamplerStats,
    _marker: core::marker::PhantomData<F>,
}

impl<F: AlpFloat> Compressed<F> {
    /// Assembles a column from already-encoded row-groups (used by the
    /// deserializer and by cascade encodings that build row-groups directly).
    pub fn from_rowgroups(rowgroups: Vec<RowGroup>, len: usize) -> Self {
        Self { rowgroups, len, stats: SamplerStats::default(), _marker: core::marker::PhantomData }
    }

    /// Exact compressed size in bits.
    pub fn compressed_bits(&self) -> usize {
        self.rowgroups.iter().map(|rg| rg.compressed_bits::<F>()).sum()
    }

    /// Compression ratio in bits per value — the metric of Table 4.
    pub fn bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.compressed_bits() as f64 / self.len as f64
        }
    }

    /// Decompresses the whole column.
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of the reused scratch buffer being sliced.
    pub fn decompress(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = vec![F::from_bits_u64(0); VECTOR_SIZE];
        for rg in &self.rowgroups {
            match rg {
                RowGroup::Alp(g) => {
                    for v in &g.vectors {
                        let n = decode_vector(v, g.view(v), &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
                RowGroup::Rd(meta, vs) => {
                    for v in vs {
                        let n = decode_rd_vector(v, meta, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        out
    }

    /// Decompresses the whole column on up to `threads` morsel-claiming
    /// workers (one row-group per morsel), each with its own vector-sized
    /// scratch buffer. Values are identical to [`Compressed::decompress`].
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of each worker's reused scratch buffer being sliced; the
    // morsel index is < rowgroups.len() by MorselQueue construction.
    pub fn decompress_parallel(&self, threads: usize) -> Vec<F> {
        let parts = crate::par::map_morsels(
            threads,
            self.rowgroups.len(),
            || vec![F::from_bits_u64(0); VECTOR_SIZE],
            |buf, m| {
                let rg = &self.rowgroups[m];
                let mut part = Vec::with_capacity(rg.len());
                match rg {
                    RowGroup::Alp(g) => {
                        for v in &g.vectors {
                            let n = decode_vector(v, g.view(v), buf);
                            part.extend_from_slice(&buf[..n]);
                        }
                    }
                    RowGroup::Rd(meta, vs) => {
                        for v in vs {
                            let n = decode_rd_vector(v, meta, buf);
                            part.extend_from_slice(&buf[..n]);
                        }
                    }
                }
                part
            },
        );
        let mut out = Vec::with_capacity(self.len);
        for p in &parts {
            out.extend_from_slice(p);
        }
        out
    }

    /// Like [`Compressed::decompress_parallel`], but a row-group whose
    /// decode *panics* — poisoned in-memory data that slipped past the
    /// serialization checksums — is quarantined instead of aborting the
    /// process: the panic is contained at the morsel boundary
    /// ([`crate::par::run_morsels_contained`]), the row-group is reported in
    /// [`DecompressSalvage::lost_rowgroups`], and every surviving row-group
    /// decodes byte-identically to the serial path.
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of each worker's reused scratch buffer being sliced; the
    // morsel index is < rowgroups.len() by MorselQueue construction. Panics
    // from poisoned row-group *data* are the contained failure mode this
    // method exists to absorb.
    pub fn decompress_parallel_salvage(&self, threads: usize) -> DecompressSalvage<F> {
        let total = self.rowgroups.len();
        let (parts, lost_rowgroups) = crate::par::run_morsels_contained(
            threads,
            total,
            || vec![F::from_bits_u64(0); VECTOR_SIZE],
            |buf, m| {
                let rg = &self.rowgroups[m];
                let mut part = Vec::with_capacity(rg.len());
                match rg {
                    RowGroup::Alp(g) => {
                        for v in &g.vectors {
                            let n = decode_vector(v, g.view(v), buf);
                            part.extend_from_slice(&buf[..n]);
                        }
                    }
                    RowGroup::Rd(meta, vs) => {
                        for v in vs {
                            let n = decode_rd_vector(v, meta, buf);
                            part.extend_from_slice(&buf[..n]);
                        }
                    }
                }
                part
            },
        );
        let mut values = Vec::with_capacity(self.len);
        for (_, p) in &parts {
            values.extend_from_slice(p);
        }
        DecompressSalvage { values, lost_rowgroups, total_rowgroups: total }
    }

    /// Decompresses a single vector (`rowgroup`, `vector`) into `out`
    /// (≥ 1024 elements); returns the live count, or a typed
    /// [`VectorIndexError`] naming the out-of-range axis. This is the
    /// skip-friendly access path that block-based compressors cannot offer.
    pub fn try_decompress_vector(
        &self,
        rowgroup: usize,
        vector: usize,
        out: &mut [F],
    ) -> Result<usize, VectorIndexError> {
        let rg = self
            .rowgroups
            .get(rowgroup)
            .ok_or(VectorIndexError::RowGroup { index: rowgroup, count: self.rowgroups.len() })?;
        match rg {
            RowGroup::Alp(g) => {
                let v = g
                    .vectors
                    .get(vector)
                    .ok_or(VectorIndexError::Vector { index: vector, count: g.vectors.len() })?;
                Ok(decode_vector(v, g.view(v), out))
            }
            RowGroup::Rd(meta, vs) => {
                let v = vs
                    .get(vector)
                    .ok_or(VectorIndexError::Vector { index: vector, count: vs.len() })?;
                Ok(decode_rd_vector(v, meta, out))
            }
        }
    }

    /// Fused scan of a single vector (`rowgroup`, `vector`): aggregates the
    /// values matching `lo..=hi` plus validity/selection bitmaps without
    /// materializing the decoded vector. ALP vectors run the fused
    /// unpack→FOR→patch→predicate→aggregate kernel; ALP_rd vectors (no
    /// decimal fast path) decode into `buf` (≥ 1024 elements) and scan that.
    /// Either way the result is bit-identical to
    /// [`Compressed::try_decompress_vector`] followed by the same
    /// accumulation chain.
    pub fn try_scan_vector(
        &self,
        rowgroup: usize,
        vector: usize,
        lo: F,
        hi: F,
        with_minmax: bool,
        buf: &mut [F],
    ) -> Result<VectorScan<F>, VectorIndexError> {
        let rg = self
            .rowgroups
            .get(rowgroup)
            .ok_or(VectorIndexError::RowGroup { index: rowgroup, count: self.rowgroups.len() })?;
        match rg {
            RowGroup::Alp(g) => {
                let v = g
                    .vectors
                    .get(vector)
                    .ok_or(VectorIndexError::Vector { index: vector, count: g.vectors.len() })?;
                Ok(scan_vector(v, g.view(v), lo, hi, with_minmax))
            }
            RowGroup::Rd(meta, vs) => {
                let v = vs
                    .get(vector)
                    .ok_or(VectorIndexError::Vector { index: vector, count: vs.len() })?;
                let n = decode_rd_vector(v, meta, buf);
                let mut scan = VectorScan::empty(n);
                scan_decoded(buf.get(..n).unwrap_or(&[]), lo, hi, with_minmax, &mut scan);
                Ok(scan)
            }
        }
    }

    /// Panicking convenience over [`Compressed::try_decompress_vector`].
    ///
    /// # Panics
    /// Panics if `rowgroup`/`vector` are out of range, like slice indexing.
    // ANALYZER-ALLOW(no-panic): positional panic is this accessor's documented
    // contract; try_decompress_vector is the checked twin.
    pub fn decompress_vector(&self, rowgroup: usize, vector: usize, out: &mut [F]) -> usize {
        match self.try_decompress_vector(rowgroup, vector, out) {
            Ok(n) => n,
            Err(e) => panic!("decompress_vector: {e}"),
        }
    }

    /// Same as [`Compressed::decompress`] but through the *unfused* decode
    /// kernels — the Figure 5 baseline.
    // ANALYZER-ALLOW(no-panic): decode kernels return n <= VECTOR_SIZE, the
    // exact length of the reused scratch buffer being sliced.
    pub fn decompress_unfused(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.len);
        let mut buf = vec![F::from_bits_u64(0); VECTOR_SIZE];
        let mut scratch = vec![0i64; VECTOR_SIZE];
        for rg in &self.rowgroups {
            match rg {
                RowGroup::Alp(g) => {
                    for v in &g.vectors {
                        let n = decode_vector_unfused(v, g.view(v), &mut scratch, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
                RowGroup::Rd(meta, vs) => {
                    for v in vs {
                        let n = decode_rd_vector(v, meta, &mut buf);
                        out.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        out
    }
}

/// The ALP compressor. Construct once (optionally with custom
/// [`SamplerParams`]) and reuse across columns.
#[derive(Debug, Clone, Default)]
pub struct Compressor {
    params: SamplerParams,
}

impl Compressor {
    /// Compressor with the paper's default sampling parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compressor with custom sampling parameters.
    ///
    /// Returns [`ConfigError`] when any count in `params` is zero — a zero
    /// `vectors_per_rowgroup` used to be silently clamped to one vector per
    /// row-group, which hid misconfiguration behind a 100× size change.
    pub fn with_params(params: SamplerParams) -> Result<Self, ConfigError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The active sampling parameters.
    pub fn params(&self) -> &SamplerParams {
        &self.params
    }

    /// Values per row-group under the active parameters (`w × 1024`).
    fn rowgroup_values(&self) -> usize {
        // Nonzero by construction: every constructor validates the params.
        self.params.vectors_per_rowgroup * VECTOR_SIZE
    }

    /// Compresses one row-group's worth of values. Sampling state is strictly
    /// row-group-local (level 1 runs on `rg_data` alone; level 2 only ever
    /// *adds* to `stats`), which is what makes the parallel path byte-exact:
    /// each worker produces the same `RowGroup` the serial loop would.
    fn compress_rowgroup<F: AlpFloat>(&self, rg_data: &[F], stats: &mut SamplerStats) -> RowGroup {
        let outcome = first_level(rg_data, &self.params);
        if outcome.should_use_rd::<F>() {
            stats.rowgroups_rd += 1;
            let meta =
                choose_cut::<F>(rg_data, self.params.sample_vectors * self.params.sample_values);
            let vectors =
                rg_data.chunks(VECTOR_SIZE).map(|chunk| encode_rd_vector(chunk, &meta)).collect();
            RowGroup::Rd(meta, vectors)
        } else {
            stats.rowgroups_alp += 1;
            let mut group = AlpGroup {
                vectors: Vec::with_capacity(rg_data.len().div_ceil(VECTOR_SIZE)),
                exceptions: ExcArena::new(),
            };
            for chunk in rg_data.chunks(VECTOR_SIZE) {
                let combo = second_level(chunk, &outcome.combinations, &self.params, stats);
                group.vectors.push(encode_vector_into(
                    chunk,
                    combo.e,
                    combo.f,
                    &mut group.exceptions,
                ));
            }
            RowGroup::Alp(group)
        }
    }

    /// Compresses a column of floats.
    pub fn compress<F: AlpFloat>(&self, data: &[F]) -> Compressed<F> {
        let rg_values = self.rowgroup_values();
        let mut stats = SamplerStats::default();
        let mut rowgroups = Vec::with_capacity(data.len().div_ceil(rg_values));
        for rg_data in data.chunks(rg_values) {
            let rg = self.compress_rowgroup(rg_data, &mut stats);
            rowgroups.push(rg);
        }
        Compressed { rowgroups, len: data.len(), stats, _marker: core::marker::PhantomData }
    }

    /// Compresses a column on up to `threads` morsel-claiming workers, one
    /// row-group per morsel. The output — row-groups, exception arenas, and
    /// sampling statistics — is byte-identical to [`Compressor::compress`]:
    /// sampling is row-group-local and the per-worker [`SamplerStats`]
    /// partials are pure sums (see [`SamplerStats::merge`]).
    pub fn compress_parallel<F: AlpFloat>(&self, data: &[F], threads: usize) -> Compressed<F> {
        let rg_values = self.rowgroup_values();
        let morsels = data.len().div_ceil(rg_values);
        let pieces = crate::par::map_morsels(
            threads,
            morsels,
            || (),
            |(), m| {
                let start = m * rg_values;
                let end = (start + rg_values).min(data.len());
                let mut stats = SamplerStats::default();
                let rg = self.compress_rowgroup(&data[start..end], &mut stats);
                (rg, stats)
            },
        );
        let mut stats = SamplerStats::default();
        let mut rowgroups = Vec::with_capacity(pieces.len());
        for (rg, partial) in pieces {
            stats.merge(&partial);
            rowgroups.push(rg);
        }
        Compressed { rowgroups, len: data.len(), stats, _marker: core::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_lossless(data: &[f64]) -> Compressed<f64> {
        let c = Compressor::new().compress(data);
        let back = c.decompress();
        assert_eq!(back.len(), data.len());
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "idx {i}");
        }
        c
    }

    #[test]
    fn empty_column() {
        let c = Compressor::new().compress::<f64>(&[]);
        assert_eq!(c.len, 0);
        assert!(c.decompress().is_empty());
        assert_eq!(c.bits_per_value(), 0.0);
    }

    #[test]
    fn decimal_column_compresses_well() {
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 9973) as f64) / 100.0).collect();
        let c = assert_lossless(&data);
        assert_eq!(c.stats.rowgroups_rd, 0);
        assert!(c.bits_per_value() < 22.0, "bpv {}", c.bits_per_value());
    }

    #[test]
    fn real_double_column_switches_to_rd() {
        let data: Vec<f64> = (0..120_000).map(|i| (i as f64 * 0.577).sin() * 0.001).collect();
        let c = assert_lossless(&data);
        assert!(c.stats.rowgroups_rd > 0, "{:?}", c.stats);
        // ALP_rd achieves at most modest compression on real doubles.
        assert!(c.bits_per_value() <= 64.0 + 1.0);
    }

    #[test]
    fn mixed_rowgroups_pick_schemes_independently() {
        let mut data: Vec<f64> = (0..102_400).map(|i| (i % 1000) as f64 * 0.25).collect();
        data.extend((0..102_400).map(|i| ((i as f64) * 0.31).cos() * 1e-5));
        let c = assert_lossless(&data);
        assert_eq!(c.rowgroups.len(), 2);
        assert_eq!(c.rowgroups[0].scheme(), Scheme::Alp);
        assert_eq!(c.rowgroups[1].scheme(), Scheme::AlpRd);
    }

    #[test]
    fn vector_random_access_matches_full_decode() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let full = c.decompress();
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        let n = c.decompress_vector(0, 2, &mut buf);
        assert_eq!(n, 1024);
        assert_eq!(&full[2048..2048 + n], &buf[..n]);
        // Last, short vector.
        let n_last = c.decompress_vector(0, 4, &mut buf);
        assert_eq!(n_last, 5000 - 4096);
        assert_eq!(&full[4096..], &buf[..n_last]);
    }

    #[test]
    fn with_params_rejects_zero_counts() {
        let p = SamplerParams { vectors_per_rowgroup: 0, ..SamplerParams::default() };
        let err = Compressor::with_params(p).unwrap_err();
        assert_eq!(err.param, "vectors_per_rowgroup");

        let p = SamplerParams { sample_values: 0, ..SamplerParams::default() };
        assert_eq!(Compressor::with_params(p).unwrap_err().param, "sample_values");

        assert!(Compressor::with_params(SamplerParams::default()).is_ok());
    }

    #[test]
    fn parallel_compress_is_identical_to_serial() {
        // Mixed schemes across three row-groups plus a tail row-group.
        let mut data: Vec<f64> = (0..102_400).map(|i| (i % 1000) as f64 * 0.25).collect();
        data.extend((0..102_400).map(|i| ((i as f64) * 0.31).cos() * 1e-5));
        data.extend((0..5_000).map(|i| (i as f64) / 64.0));
        let comp = Compressor::new();
        let serial = comp.compress(&data);
        for threads in [1, 2, 7] {
            let par = comp.compress_parallel(&data, threads);
            assert_eq!(par.len, serial.len);
            assert_eq!(par.rowgroups.len(), serial.rowgroups.len());
            assert_eq!(par.compressed_bits(), serial.compressed_bits(), "t={threads}");
            assert_eq!(par.decompress(), serial.decompress(), "t={threads}");
            assert_eq!(par.stats, serial.stats, "t={threads}");
        }
    }

    #[test]
    fn parallel_decompress_matches_serial() {
        let mut data: Vec<f64> = (0..150_000).map(|i| ((i * 13) % 9973) as f64 / 100.0).collect();
        data.extend((0..50_000).map(|i| (i as f64 * 0.577).sin() * 0.001));
        let c = Compressor::new().compress(&data);
        let serial = c.decompress();
        for threads in [1, 2, 7] {
            let par = c.decompress_parallel(threads);
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "t={threads} idx {i}");
            }
        }
    }

    #[test]
    fn parallel_paths_handle_empty_and_single_value() {
        let comp = Compressor::new();
        for threads in [1, 2, 7] {
            let empty = comp.compress_parallel::<f64>(&[], threads);
            assert_eq!(empty.len, 0);
            assert!(empty.decompress_parallel(threads).is_empty());

            let one = comp.compress_parallel(&[42.5f64], threads);
            assert_eq!(one.decompress_parallel(threads), vec![42.5]);
        }
    }

    #[test]
    fn decompress_parallel_salvage_clean_matches_serial() {
        let mut data: Vec<f64> = (0..150_000).map(|i| ((i * 13) % 9973) as f64 / 100.0).collect();
        data.extend((0..50_000).map(|i| (i as f64 * 0.577).sin() * 0.001));
        let c = Compressor::new().compress(&data);
        let serial = c.decompress();
        for threads in [1, 4] {
            let salvage = c.decompress_parallel_salvage(threads);
            assert!(salvage.is_complete());
            assert_eq!(salvage.total_rowgroups, c.rowgroups.len());
            assert_eq!(salvage.values, serial, "t={threads}");
        }
    }

    #[test]
    fn decompress_parallel_salvage_quarantines_poisoned_rowgroup() {
        let rowgroup_len = 102_400; // default vectors_per_rowgroup * VECTOR_SIZE
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 901) as f64) / 8.0).collect();
        let mut c = Compressor::new().compress(&data);
        assert_eq!(c.rowgroups.len(), 3);
        // Poison row-group 1 in memory (past the serialization checksums):
        // truncating a packed buffer makes the unpack kernel index out of
        // bounds, the panic the containment seam must absorb.
        match &mut c.rowgroups[1] {
            RowGroup::Alp(g) => {
                assert!(g.vectors[0].bit_width > 0);
                g.vectors[0].packed.truncate(1);
            }
            RowGroup::Rd(..) => panic!("decimal data must pick the ALP scheme"),
        }
        for threads in [1, 4] {
            let salvage = c.decompress_parallel_salvage(threads);
            assert!(!salvage.is_complete());
            assert_eq!(salvage.total_rowgroups, 3);
            assert_eq!(salvage.lost_rowgroups.len(), 1, "t={threads}");
            assert_eq!(salvage.lost_rowgroups[0].morsel, 1);
            // Survivors decode byte-identically to the original data.
            let expected: Vec<f64> =
                data[..rowgroup_len].iter().chain(&data[2 * rowgroup_len..]).copied().collect();
            assert_eq!(salvage.values.len(), expected.len());
            for (a, b) in expected.iter().zip(&salvage.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn try_decompress_vector_reports_out_of_range_axes() {
        let data: Vec<f64> = (0..5000).map(|i| (i as f64) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        assert_eq!(c.try_decompress_vector(0, 2, &mut buf), Ok(1024));
        assert_eq!(
            c.try_decompress_vector(3, 0, &mut buf),
            Err(VectorIndexError::RowGroup { index: 3, count: 1 })
        );
        assert_eq!(
            c.try_decompress_vector(0, 5, &mut buf),
            Err(VectorIndexError::Vector { index: 5, count: 5 })
        );
    }

    #[test]
    #[should_panic(expected = "decompress_vector")]
    fn decompress_vector_panics_out_of_range() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = Compressor::new().compress(&data);
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        c.decompress_vector(7, 0, &mut buf);
    }

    #[test]
    fn special_values_roundtrip_anywhere() {
        let mut data: Vec<f64> = (0..8000).map(|i| (i as f64) / 8.0).collect();
        data[0] = f64::NAN;
        data[1] = -0.0;
        data[4000] = f64::INFINITY;
        data[7999] = f64::MIN_POSITIVE / 2.0; // subnormal
        assert_lossless(&data);
    }

    #[test]
    fn unfused_decode_is_identical() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i * 7) % 99991) as f64 / 1000.0).collect();
        let c = Compressor::new().compress(&data);
        assert_eq!(c.decompress(), c.decompress_unfused());
    }

    #[test]
    fn f32_column_roundtrips() {
        let data: Vec<f32> = (0..30_000).map(|i| ((i % 2048) as f32) / 4.0).collect();
        let c = Compressor::new().compress(&data);
        let back = c.decompress();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(c.bits_per_value() < 32.0);
    }

    #[test]
    fn f32_real_floats_use_rd() {
        let data: Vec<f32> = (0..120_000).map(|i| ((i as f32) * 0.113).sin() * 0.02).collect();
        let c = Compressor::new().compress(&data);
        assert!(c.stats.rowgroups_rd > 0);
        let back = c.decompress();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
