//! Byte serialization of compressed columns.
//!
//! The format is self-describing and vector-addressable: each vector's
//! parameters precede its payload, so a reader can skip whole vectors without
//! touching their packed words — the predicate-pushdown property the paper
//! contrasts with block-based compressors.
//!
//! Layout (all integers little-endian):
//! ```text
//! "ALP2" | bits:u8 | len:u64 | rowgroups:u32
//! per row-group: rg_len:u32 | checksum:u64 (XXH64 of the rg_len body bytes)
//!   body: scheme:u8 (0=ALP, 1=ALP_rd) | vectors:u32 | ...
//!   ALP vector : e:u8 f:u8 width:u8 len:u16 base:i64 exc:u16
//!                packed[16*width] exc_pos[exc] exc_val[exc]
//!   RD header  : left_width:u8 code_width:u8 dict_len:u8 dict[dict_len]:u16
//!   RD vector  : len:u16 exc:u16 packed_codes packed_right exc_pos exc_left
//! ```
//!
//! The legacy `ALP1` layout — identical except row-group bodies follow each
//! other directly, with no length/checksum frame — is still accepted by
//! [`from_bytes`]. The per-row-group frame serves two purposes: bit-rot in a
//! payload is *detected* (a flipped packed bit otherwise decodes to plausible
//! garbage), and [`from_bytes_salvage`] can resync past a damaged row-group
//! using the length prefix and recover the rest of the column.

use crate::encode::{AlpVector, ExcArena, ExcView};
use crate::hash::{xxh64, CHECKSUM_SEED};
use crate::rd::{RdMeta, RdVector};
use crate::rowgroup::{AlpGroup, Compressed, RowGroup};
use crate::traits::AlpFloat;
use crate::wire::{GetExt, PutExt};

/// Magic bytes identifying a checksummed (current) serialized ALP column.
pub const MAGIC: &[u8; 4] = b"ALP2";

/// Magic bytes of the legacy, checksum-less column layout (still readable).
pub const MAGIC_V1: &[u8; 4] = b"ALP1";

/// Row-group scheme tag: the body holds plain ALP vectors.
pub const SCHEME_TAG_ALP: u8 = 0;

/// Row-group scheme tag: the body holds ALP_rd metadata plus vectors.
pub const SCHEME_TAG_RD: u8 = 1;

/// Errors produced when decoding a serialized column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The float width in the header does not match the requested type.
    WidthMismatch {
        /// Width recorded in the file.
        found: u8,
        /// Width of the type the caller asked for.
        expected: u8,
    },
    /// A structural field held an impossible value.
    Corrupt(&'static str),
    /// A row-group's stored checksum does not match its bytes (bit-rot).
    ChecksumMismatch {
        /// Index of the damaged row-group within the column.
        rowgroup: usize,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the bytes actually present.
        computed: u64,
    },
}

impl core::fmt::Display for FormatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an ALP column (bad magic)"),
            FormatError::Truncated => write!(f, "buffer truncated"),
            FormatError::WidthMismatch { found, expected } => {
                write!(f, "column stores {found}-bit floats, caller expected {expected}-bit")
            }
            FormatError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            FormatError::ChecksumMismatch { rowgroup, stored, computed } => write!(
                f,
                "row-group {rowgroup} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serializes a compressed column to bytes (current `ALP2` layout: every
/// row-group body is length-prefixed and XXH64-checksummed).
pub fn to_bytes<F: AlpFloat>(c: &Compressed<F>) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    let mut body = Vec::new();
    for rg in &c.rowgroups {
        body.clear();
        write_rowgroup::<F>(&mut body, rg);
        out.put_u32_le(body.len() as u32);
        out.put_u64_le(xxh64(&body, CHECKSUM_SEED));
        out.put_slice(&body);
    }
    out
}

/// Serializes a compressed column in the legacy `ALP1` layout (no per-row-group
/// checksums). Kept for interoperability tests and old readers.
pub fn to_bytes_v1<F: AlpFloat>(c: &Compressed<F>) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC_V1);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    for rg in &c.rowgroups {
        write_rowgroup::<F>(&mut out, rg);
    }
    out
}

/// Serializes one row-group (the framing unit of the streaming API).
pub fn write_rowgroup<F: AlpFloat>(out: &mut Vec<u8>, rg: &RowGroup) {
    match rg {
        RowGroup::Alp(group) => {
            out.put_u8(SCHEME_TAG_ALP);
            out.put_u32_le(group.vectors.len() as u32);
            for v in &group.vectors {
                write_alp_vector(out, v, group.view(v));
            }
        }
        RowGroup::Rd(meta, vectors) => {
            out.put_u8(SCHEME_TAG_RD);
            out.put_u32_le(vectors.len() as u32);
            out.put_u8(meta.left_width);
            out.put_u8(meta.code_width);
            out.put_u8(meta.dict.len() as u8);
            for &d in &meta.dict {
                out.put_u16_le(d);
            }
            for v in vectors {
                write_rd_vector(out, v, meta.right_width::<F>());
            }
        }
    }
}

fn write_alp_vector(out: &mut Vec<u8>, v: &AlpVector, exc: ExcView<'_>) {
    out.put_u8(v.exponent);
    out.put_u8(v.factor);
    out.put_u8(v.bit_width);
    out.put_u16_le(v.len);
    out.put_i64_le(v.for_base);
    out.put_u16_le(exc.positions.len() as u16);
    // Stored without the trailing pad word — it is reconstructed on read.
    let words = v.bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed[..words] {
        out.put_u64_le(w);
    }
    for &p in exc.positions {
        out.put_u16_le(p);
    }
    for &x in exc.values {
        out.put_u64_le(x);
    }
}

fn write_rd_vector(out: &mut Vec<u8>, v: &RdVector, right_width: usize) {
    out.put_u16_le(v.len);
    out.put_u16_le(v.exc_positions.len() as u16);
    let code_words = v.packed_codes.len() - 1;
    for &w in &v.packed_codes[..code_words] {
        out.put_u64_le(w);
    }
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed_right[..right_words] {
        out.put_u64_le(w);
    }
    for &p in &v.exc_positions {
        out.put_u16_le(p);
    }
    for &l in &v.exc_left {
        out.put_u16_le(l);
    }
}

/// On-disk layout version, decided by the magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    /// Legacy: bare row-group bodies, no integrity frames.
    V1,
    /// Current: each row-group body is `rg_len:u32 | checksum:u64 | body`.
    V2,
}

/// Parsed column header (shared by strict and salvage readers).
struct Header {
    version: Version,
    len: usize,
    rg_count: usize,
}

fn read_header<F: AlpFloat>(buf: &mut &[u8]) -> Result<Header, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    // ANALYZER-ALLOW(no-panic): length checked above
    let version = match &buf[..4] {
        m if m == MAGIC => Version::V2,
        m if m == MAGIC_V1 => Version::V1,
        _ => return Err(FormatError::BadMagic),
    };
    buf.advance(4);
    if buf.len() < 1 + 8 + 4 {
        return Err(FormatError::Truncated);
    }
    let bits = buf.get_u8();
    if u32::from(bits) != F::BITS {
        // ANALYZER-ALLOW(no-panic): F::BITS is 32 or 64, always fits in u8.
        return Err(FormatError::WidthMismatch { found: bits, expected: F::BITS as u8 });
    }
    let len = buf.get_u64_le() as usize;
    let rg_count = buf.get_u32_le() as usize;
    Ok(Header { version, len, rg_count })
}

/// Verifies and parses one already-delimited `ALP2` frame body: checksum
/// first, then a full-body parse. This is the per-morsel work unit of
/// [`from_bytes_salvage_parallel`] — it touches nothing outside `body`, so
/// frames verify and decode independently.
fn decode_frame<F: AlpFloat>(
    body: &[u8],
    stored: u64,
    index: usize,
) -> Result<RowGroup, FormatError> {
    let computed = xxh64(body, CHECKSUM_SEED);
    if computed != stored {
        return Err(FormatError::ChecksumMismatch { rowgroup: index, stored, computed });
    }
    let mut cursor = body;
    let rg = read_rowgroup::<F>(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(FormatError::Corrupt("row-group frame length"));
    }
    Ok(rg)
}

/// Reads one `ALP2` integrity frame: verifies the checksum, parses the body,
/// and requires the body length to match the frame exactly. On success the
/// cursor sits on the next frame.
fn read_framed_rowgroup<F: AlpFloat>(
    buf: &mut &[u8],
    index: usize,
) -> Result<RowGroup, FormatError> {
    if buf.len() < 4 + 8 {
        return Err(FormatError::Truncated);
    }
    let rg_len = buf.get_u32_le() as usize;
    let stored = buf.get_u64_le();
    let Some(body) = buf.get(..rg_len) else {
        return Err(FormatError::Truncated);
    };
    let rg = decode_frame::<F>(body, stored, index)?;
    buf.advance(rg_len);
    Ok(rg)
}

/// One discovered `ALP2` integrity frame: its stored checksum and body slice.
struct FrameBounds<'a> {
    stored: u64,
    body: &'a [u8],
}

/// Serial frame-boundary scan over an `ALP2` payload: walks the length
/// prefixes (cheap — no checksumming, no parsing) and records each frame's
/// body slice. Stops at the first frame whose length field runs past the
/// buffer — from there on, byte alignment cannot be trusted.
fn scan_frames(mut buf: &[u8], rg_count: usize) -> Vec<FrameBounds<'_>> {
    let mut frames = Vec::with_capacity(rg_count.min(1 << 20));
    while frames.len() < rg_count {
        if buf.len() < 4 + 8 {
            break; // truncated mid-frame-header: the rest is lost
        }
        let rg_len = buf.get_u32_le() as usize;
        let stored = buf.get_u64_le();
        let Some(body) = buf.get(..rg_len) else {
            break; // implausible length: resync impossible
        };
        frames.push(FrameBounds { stored, body });
        buf.advance(rg_len);
    }
    frames
}

/// Deserializes a column previously produced by [`to_bytes`] (or the legacy
/// [`to_bytes_v1`]). Strict: any damage — structural or checksum — is an error.
pub fn from_bytes<F: AlpFloat>(mut buf: &[u8]) -> Result<Compressed<F>, FormatError> {
    let header = read_header::<F>(&mut buf)?;
    let mut rowgroups = Vec::with_capacity(header.rg_count.min(1 << 20));
    for i in 0..header.rg_count {
        let rg = match header.version {
            Version::V2 => read_framed_rowgroup::<F>(&mut buf, i)?,
            Version::V1 => read_rowgroup::<F>(&mut buf)?,
        };
        rowgroups.push(rg);
    }

    // The recorded length must equal the vectors' actual content — a lying
    // header would otherwise drive a giant allocation in `decompress`.
    let actual: usize = rowgroups.iter().map(|rg| rg.len()).sum();
    if actual != header.len {
        return Err(FormatError::Corrupt("column length"));
    }
    Ok(Compressed::from_rowgroups(rowgroups, header.len))
}

/// Result of a salvage read: whatever survived, plus a damage report.
#[derive(Debug)]
pub struct Salvage<F: AlpFloat> {
    /// The recoverable column — surviving row-groups in file order. Its `len`
    /// is the surviving value count, not the original header length.
    pub column: Compressed<F>,
    /// Indices (in file order) of row-groups that were lost to corruption.
    pub lost_rowgroups: Vec<usize>,
    /// Row-group count the header promised.
    pub total_rowgroups: usize,
    /// Value count the header promised (what `len` would be undamaged).
    pub expected_len: usize,
}

impl<F: AlpFloat> Salvage<F> {
    /// True when every row-group survived.
    pub fn is_complete(&self) -> bool {
        self.lost_rowgroups.is_empty() && self.column.len == self.expected_len
    }
}

/// Best-effort deserialization: skips damaged row-groups instead of failing,
/// returning the survivors and exactly which row-groups were lost.
///
/// With the `ALP2` layout the length prefix of each integrity frame allows
/// resyncing past a damaged body, so one flipped bit costs one row-group. A
/// frame whose *length field itself* is implausible (runs past the buffer)
/// ends recovery — everything from that frame on is reported lost. Legacy
/// `ALP1` columns have no frames, so the first damaged row-group ends
/// recovery the same way. A damaged header is unrecoverable and returns
/// `Err` like [`from_bytes`].
///
/// Single-threaded shorthand for [`from_bytes_salvage_parallel`].
pub fn from_bytes_salvage<F: AlpFloat>(buf: &[u8]) -> Result<Salvage<F>, FormatError> {
    from_bytes_salvage_parallel(buf, 1)
}

/// [`from_bytes_salvage`] on up to `threads` morsel-claiming workers: a
/// serial scan walks the `ALP2` length prefixes to find frame boundaries
/// (cheap — no checksums, no parsing), then checksum verification and body
/// decoding of the discovered frames fan out over the morsel scheduler, one
/// frame per morsel. `threads <= 1` never spawns. The salvage report is
/// identical to the serial path's for any input; legacy `ALP1` columns have
/// no frame boundaries to scan, so they always walk serially.
pub fn from_bytes_salvage_parallel<F: AlpFloat>(
    mut buf: &[u8],
    threads: usize,
) -> Result<Salvage<F>, FormatError> {
    let header = read_header::<F>(&mut buf)?;
    // A corrupt header can claim billions of row-groups; clamp the loss report
    // to what the buffer could physically hold (smallest body is 5 bytes).
    let min_frame = match header.version {
        Version::V2 => 4 + 8 + 5,
        Version::V1 => 5,
    };
    let rg_count = header.rg_count.min(buf.len() / min_frame + 1);
    let mut rowgroups = Vec::new();
    let mut lost = Vec::new();
    match header.version {
        Version::V2 => {
            let frames = scan_frames(buf, rg_count);
            // Phase 2: verify + decode every discovered frame independently.
            let decoded = crate::par::map_morsels(
                threads,
                frames.len(),
                || (),
                |(), m| {
                    let frame = frames.get(m)?;
                    decode_frame::<F>(frame.body, frame.stored, m).ok()
                },
            );
            for (i, rg) in decoded.into_iter().enumerate() {
                match rg {
                    Some(rg) => rowgroups.push(rg),
                    // Frame was delimited but damaged inside: one lost
                    // row-group, the scan already resynced past it.
                    None => lost.push(i),
                }
            }
            lost.extend(frames.len()..rg_count);
        }
        Version::V1 => {
            let mut i = 0;
            while i < rg_count {
                match read_rowgroup::<F>(&mut buf) {
                    Ok(rg) => rowgroups.push(rg),
                    // No framing: a parse failure loses byte alignment for good.
                    Err(_) => break,
                }
                i += 1;
            }
            lost.extend(i..rg_count);
        }
    }

    let salvaged_len: usize = rowgroups.iter().map(|rg| rg.len()).sum();
    Ok(Salvage {
        column: Compressed::from_rowgroups(rowgroups, salvaged_len),
        lost_rowgroups: lost,
        total_rowgroups: rg_count,
        expected_len: header.len,
    })
}

/// Deserializes one row-group (inverse of [`write_rowgroup`]).
pub fn read_rowgroup<F: AlpFloat>(buf: &mut &[u8]) -> Result<RowGroup, FormatError> {
    if buf.len() < 5 {
        return Err(FormatError::Truncated);
    }
    let scheme = buf.get_u8();
    let vec_count = buf.get_u32_le() as usize;
    match scheme {
        SCHEME_TAG_ALP => {
            let mut group = AlpGroup {
                vectors: Vec::with_capacity(vec_count.min(1 << 16)),
                exceptions: ExcArena::new(),
            };
            for _ in 0..vec_count {
                let v = read_alp_vector(buf, &mut group.exceptions)?;
                group.vectors.push(v);
            }
            Ok(RowGroup::Alp(group))
        }
        SCHEME_TAG_RD => {
            if buf.len() < 3 {
                return Err(FormatError::Truncated);
            }
            let left_width = buf.get_u8();
            let code_width = buf.get_u8();
            let dict_len = buf.get_u8() as usize;
            if left_width == 0 || left_width as usize > crate::rd::MAX_LEFT_WIDTH {
                return Err(FormatError::Corrupt("rd left_width"));
            }
            if dict_len == 0 || dict_len > crate::rd::MAX_DICT_SIZE {
                return Err(FormatError::Corrupt("rd dict size"));
            }
            if code_width > 3 {
                return Err(FormatError::Corrupt("rd code width"));
            }
            if buf.len() < dict_len * 2 {
                return Err(FormatError::Truncated);
            }
            let dict: Vec<u16> = (0..dict_len).map(|_| buf.get_u16_le()).collect();
            let meta = RdMeta { left_width, code_width, dict };
            let right_width = meta.right_width::<F>();
            let mut vectors = Vec::with_capacity(vec_count.min(1 << 16));
            for _ in 0..vec_count {
                vectors.push(read_rd_vector(buf, code_width as usize, right_width)?);
            }
            Ok(RowGroup::Rd(meta, vectors))
        }
        _ => Err(FormatError::Corrupt("scheme tag")),
    }
}

fn read_alp_vector(buf: &mut &[u8], arena: &mut ExcArena) -> Result<AlpVector, FormatError> {
    if buf.len() < 3 + 2 + 8 + 2 {
        return Err(FormatError::Truncated);
    }
    let exponent = buf.get_u8();
    let factor = buf.get_u8();
    let bit_width = buf.get_u8();
    let len = buf.get_u16_le();
    let for_base = buf.get_i64_le();
    let exc_count = buf.get_u16_le();
    let exc = exc_count as usize;
    if bit_width > 64 {
        return Err(FormatError::Corrupt("alp bit_width"));
    }
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("alp vector len/exceptions"));
    }
    let words = bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < words * 8 + exc * (2 + 8) {
        return Err(FormatError::Truncated);
    }
    let mut packed = Vec::with_capacity(words + 1);
    for _ in 0..words {
        packed.push(buf.get_u64_le());
    }
    packed.push(0); // reconstruct the pad word
    let Ok(exc_start) = u32::try_from(arena.len()) else {
        return Err(FormatError::Corrupt("exception arena overflow"));
    };
    // Positions precede values on the wire; stage positions so both streams
    // land in the arena in parallel order.
    for _ in 0..exc {
        arena.positions.push(buf.get_u16_le());
    }
    for _ in 0..exc {
        arena.values.push(buf.get_u64_le());
    }
    let start = exc_start as usize;
    if arena.positions.get(start..).is_some_and(|ps| ps.iter().any(|&p| p >= len)) {
        return Err(FormatError::Corrupt("alp exception position"));
    }
    Ok(AlpVector { exponent, factor, bit_width, for_base, packed, exc_start, exc_count, len })
}

fn read_rd_vector(
    buf: &mut &[u8],
    code_width: usize,
    right_width: usize,
) -> Result<RdVector, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    let len = buf.get_u16_le();
    let exc = buf.get_u16_le() as usize;
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("rd vector len/exceptions"));
    }
    let code_words = code_width * (fastlanes::VECTOR_SIZE / 64);
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < (code_words + right_words) * 8 + exc * 4 {
        return Err(FormatError::Truncated);
    }
    let mut packed_codes = Vec::with_capacity(code_words + 1);
    for _ in 0..code_words {
        packed_codes.push(buf.get_u64_le());
    }
    packed_codes.push(0);
    let mut packed_right = Vec::with_capacity(right_words + 1);
    for _ in 0..right_words {
        packed_right.push(buf.get_u64_le());
    }
    packed_right.push(0);
    let exc_positions: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    let exc_left: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    if exc_positions.iter().any(|&p| p >= len) {
        return Err(FormatError::Corrupt("rd exception position"));
    }
    Ok(RdVector { packed_codes, packed_right, exc_positions, exc_left, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::Compressor;

    fn roundtrip(data: &[f64]) {
        let c = Compressor::new().compress(data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).expect("deserialize");
        assert_eq!(back.len, data.len());
        let decoded = back.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serde_roundtrip_decimal_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i % 777) as f64) * 0.125).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_rd_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i as f64) * 0.271).sin() * 2e-5).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_with_specials() {
        let mut data: Vec<f64> = (0..4000).map(|i| (i as f64) * 0.2).collect();
        data[13] = f64::NAN;
        data[200] = -0.0;
        data[3999] = f64::NEG_INFINITY;
        roundtrip(&data);
    }

    #[test]
    fn serde_f32_roundtrip() {
        let data: Vec<f32> = (0..9000).map(|i| ((i % 300) as f32) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f32>(&bytes).unwrap();
        assert_eq!(back.decompress(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_bytes::<f64>(b"NOPE....."), Err(FormatError::BadMagic)));
    }

    #[test]
    fn rejects_width_mismatch() {
        let data: Vec<f32> = vec![1.0; 100];
        let bytes = to_bytes(&Compressor::new().compress(&data));
        assert!(matches!(
            from_bytes::<f64>(&bytes),
            Err(FormatError::WidthMismatch { found: 32, expected: 64 })
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.1).collect();
        let bytes = to_bytes(&Compressor::new().compress(&data));
        // Every strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 4, 10, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes::<f64>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_column_serializes() {
        let c = Compressor::new().compress::<f64>(&[]);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).unwrap();
        assert_eq!(back.len, 0);
        assert!(back.decompress().is_empty());
    }

    /// Three-row-group column (default row-group is 100 × 1024 values).
    fn multi_rowgroup_bytes() -> (Vec<f64>, Vec<u8>) {
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 901) as f64) * 0.05).collect();
        let bytes = to_bytes(&Compressor::new().compress(&data));
        (data, bytes)
    }

    #[test]
    fn current_magic_is_alp2() {
        let (_, bytes) = multi_rowgroup_bytes();
        assert_eq!(&bytes[..4], MAGIC);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        // Flip one bit deep inside the second row-group's packed payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        match from_bytes::<f64>(&bytes) {
            Err(FormatError::ChecksumMismatch { stored, computed, .. }) => {
                assert_ne!(stored, computed)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn salvage_recovers_all_but_damaged_rowgroup() {
        let (data, mut bytes) = multi_rowgroup_bytes();
        let clean = from_bytes::<f64>(&bytes).unwrap();
        let rg_count = clean.rowgroups.len();
        assert!(rg_count >= 2, "need multiple row-groups, got {rg_count}");
        let rg_len: usize = clean.rowgroups[0].len();

        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert_eq!(salvage.lost_rowgroups.len(), 1);
        assert_eq!(salvage.total_rowgroups, rg_count);
        assert_eq!(salvage.expected_len, data.len());
        assert!(!salvage.is_complete());

        // Surviving row-groups decode bit-exactly to the data outside the
        // damaged row-group.
        let lost = salvage.lost_rowgroups[0];
        let decoded = salvage.column.decompress();
        let expected: Vec<f64> = data
            .chunks(rg_len)
            .enumerate()
            .filter(|(i, _)| *i != lost)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        assert_eq!(salvage.column.len, expected.len());
        assert_eq!(decoded.len(), expected.len());
        for (a, b) in decoded.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn salvage_on_clean_column_is_complete() {
        let (data, bytes) = multi_rowgroup_bytes();
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(salvage.is_complete());
        assert!(salvage.lost_rowgroups.is_empty());
        assert_eq!(salvage.column.len, data.len());
    }

    #[test]
    fn legacy_v1_columns_still_roundtrip() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i % 511) as f64) * 0.25).collect();
        let c = Compressor::new().compress(&data);
        let v1 = to_bytes_v1(&c);
        assert_eq!(&v1[..4], MAGIC_V1);
        let back = from_bytes::<f64>(&v1).unwrap();
        let decoded = back.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Salvage accepts v1 too, but without frames damage ends recovery.
        let mut damaged = v1.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        let salvage = from_bytes_salvage::<f64>(&damaged).unwrap();
        assert!(salvage.column.len <= data.len());
    }

    #[test]
    fn salvage_of_truncated_column_reports_tail_lost() {
        let (_, bytes) = multi_rowgroup_bytes();
        let clean = from_bytes::<f64>(&bytes).unwrap();
        let cut = bytes.len() - bytes.len() / 3;
        let salvage = from_bytes_salvage::<f64>(&bytes[..cut]).unwrap();
        assert!(!salvage.lost_rowgroups.is_empty());
        assert!(salvage.column.rowgroups.len() < clean.rowgroups.len());
    }

    #[test]
    fn parallel_salvage_matches_serial_on_damage() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        let serial = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(!serial.is_complete());
        for threads in [2, 4] {
            let par = from_bytes_salvage_parallel::<f64>(&bytes, threads).unwrap();
            assert_eq!(par.lost_rowgroups, serial.lost_rowgroups, "t={threads}");
            assert_eq!(par.total_rowgroups, serial.total_rowgroups);
            assert_eq!(par.expected_len, serial.expected_len);
            assert_eq!(par.column.len, serial.column.len);
            assert_eq!(par.column.decompress(), serial.column.decompress());
        }
    }

    #[test]
    fn parallel_salvage_matches_serial_on_truncation() {
        let (_, bytes) = multi_rowgroup_bytes();
        for cut in [bytes.len() - 1, bytes.len() * 2 / 3, bytes.len() / 3, 20, 17] {
            let serial = from_bytes_salvage::<f64>(&bytes[..cut]).unwrap();
            let par = from_bytes_salvage_parallel::<f64>(&bytes[..cut], 4).unwrap();
            assert_eq!(par.lost_rowgroups, serial.lost_rowgroups, "cut {cut}");
            assert_eq!(par.total_rowgroups, serial.total_rowgroups, "cut {cut}");
            assert_eq!(par.column.decompress(), serial.column.decompress(), "cut {cut}");
        }
    }

    #[test]
    fn parallel_salvage_on_clean_column_is_complete() {
        let (data, bytes) = multi_rowgroup_bytes();
        let salvage = from_bytes_salvage_parallel::<f64>(&bytes, 4).unwrap();
        assert!(salvage.is_complete());
        assert_eq!(salvage.column.len, data.len());
        let decoded = salvage.column.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn salvage_rejects_damaged_header() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        bytes[0] = b'X';
        assert!(matches!(from_bytes_salvage::<f64>(&bytes), Err(FormatError::BadMagic)));
    }
}
