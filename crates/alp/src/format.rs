//! Byte serialization of compressed columns.
//!
//! The format is self-describing and vector-addressable: each vector's
//! parameters precede its payload, so a reader can skip whole vectors without
//! touching their packed words — the predicate-pushdown property the paper
//! contrasts with block-based compressors.
//!
//! Layout (all integers little-endian):
//! ```text
//! "ALP2" | bits:u8 | len:u64 | rowgroups:u32
//! per row-group: rg_len:u32 | checksum:u64 (XXH64 of the rg_len body bytes)
//!   body: scheme:u8 (0=ALP, 1=ALP_rd) | vectors:u32 | ...
//!   ALP vector : e:u8 f:u8 width:u8 len:u16 base:i64 exc:u16
//!                packed[16*width] exc_pos[exc] exc_val[exc]
//!   RD header  : left_width:u8 code_width:u8 dict_len:u8 dict[dict_len]:u16
//!   RD vector  : len:u16 exc:u16 packed_codes packed_right exc_pos exc_left
//! ```
//!
//! The legacy `ALP1` layout — identical except row-group bodies follow each
//! other directly, with no length/checksum frame — is still accepted by
//! [`from_bytes`]. The per-row-group frame serves two purposes: bit-rot in a
//! payload is *detected* (a flipped packed bit otherwise decodes to plausible
//! garbage), and [`from_bytes_salvage`] can resync past a damaged row-group
//! using the length prefix and recover the rest of the column.

use crate::encode::{AlpVector, ExcArena, ExcView};
use crate::hash::{xxh64, CHECKSUM_SEED};
use crate::parity::{self, ParityAccumulator, ParityConfig};
use crate::rd::{RdMeta, RdVector};
use crate::rowgroup::{AlpGroup, Compressed, RowGroup};
use crate::sampler::ConfigError;
use crate::traits::AlpFloat;
use crate::wire::{GetExt, PutExt};

/// Magic bytes identifying a checksummed (current) serialized ALP column.
pub const MAGIC: &[u8; 4] = b"ALP2";

/// Magic bytes of the legacy, checksum-less column layout (still readable).
pub const MAGIC_V1: &[u8; 4] = b"ALP1";

/// Row-group scheme tag: the body holds plain ALP vectors.
pub const SCHEME_TAG_ALP: u8 = 0;

/// Row-group scheme tag: the body holds ALP_rd metadata plus vectors.
pub const SCHEME_TAG_RD: u8 = 1;

/// Errors produced when decoding a serialized column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The float width in the header does not match the requested type.
    WidthMismatch {
        /// Width recorded in the file.
        found: u8,
        /// Width of the type the caller asked for.
        expected: u8,
    },
    /// A structural field held an impossible value.
    Corrupt(&'static str),
    /// A row-group's stored checksum does not match its bytes (bit-rot).
    ChecksumMismatch {
        /// Index of the damaged row-group within the column.
        rowgroup: usize,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the bytes actually present.
        computed: u64,
    },
}

impl core::fmt::Display for FormatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an ALP column (bad magic)"),
            FormatError::Truncated => write!(f, "buffer truncated"),
            FormatError::WidthMismatch { found, expected } => {
                write!(f, "column stores {found}-bit floats, caller expected {expected}-bit")
            }
            FormatError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            FormatError::ChecksumMismatch { rowgroup, stored, computed } => write!(
                f,
                "row-group {rowgroup} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serializes a compressed column to bytes (current `ALP2` layout: every
/// row-group body is length-prefixed and XXH64-checksummed).
pub fn to_bytes<F: AlpFloat>(c: &Compressed<F>) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    let mut body = Vec::new();
    for rg in &c.rowgroups {
        body.clear();
        write_rowgroup::<F>(&mut body, rg);
        out.put_u32_le(body.len() as u32);
        out.put_u64_le(xxh64(&body, CHECKSUM_SEED));
        out.put_slice(&body);
    }
    out
}

/// Serializes a compressed column like [`to_bytes`], then appends an XOR
/// parity section: one checksummed `"ALPP"` parity frame (see
/// [`crate::parity`]) per `parity.group_size` data frames, the last group
/// possibly partial. The section trails the payload, so readers that predate
/// parity — strict and salvage alike — never look at it; parity-aware
/// salvage ([`from_bytes_salvage`]) uses it to reconstruct any *single*
/// damaged row-group per group byte-identically.
///
/// Returns [`ConfigError`] when the group size is out of range.
pub fn to_bytes_with_parity<F: AlpFloat>(
    c: &Compressed<F>,
    parity: ParityConfig,
) -> Result<Vec<u8>, ConfigError> {
    parity.validate()?;
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    let mut acc = ParityAccumulator::new(parity.group_size);
    let mut pframes = Vec::new();
    let mut body = Vec::new();
    for rg in &c.rowgroups {
        body.clear();
        write_rowgroup::<F>(&mut body, rg);
        let frame_start = out.len();
        out.put_u32_le(body.len() as u32);
        out.put_u64_le(xxh64(&body, CHECKSUM_SEED));
        out.put_slice(&body);
        if let Some(frame) = out.get(frame_start..) {
            acc.absorb(frame);
        }
        if acc.is_full() {
            if let Some(pf) = acc.take_frame() {
                pframes.extend_from_slice(&pf);
            }
        }
    }
    if let Some(pf) = acc.take_frame() {
        pframes.extend_from_slice(&pf);
    }
    out.extend_from_slice(&pframes);
    Ok(out)
}

/// Serializes a compressed column in the legacy `ALP1` layout (no per-row-group
/// checksums). Kept for interoperability tests and old readers.
pub fn to_bytes_v1<F: AlpFloat>(c: &Compressed<F>) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC_V1);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    for rg in &c.rowgroups {
        write_rowgroup::<F>(&mut out, rg);
    }
    out
}

/// Serializes one row-group (the framing unit of the streaming API).
pub fn write_rowgroup<F: AlpFloat>(out: &mut Vec<u8>, rg: &RowGroup) {
    match rg {
        RowGroup::Alp(group) => {
            out.put_u8(SCHEME_TAG_ALP);
            out.put_u32_le(group.vectors.len() as u32);
            for v in &group.vectors {
                write_alp_vector(out, v, group.view(v));
            }
        }
        RowGroup::Rd(meta, vectors) => {
            out.put_u8(SCHEME_TAG_RD);
            out.put_u32_le(vectors.len() as u32);
            out.put_u8(meta.left_width);
            out.put_u8(meta.code_width);
            out.put_u8(meta.dict.len() as u8);
            for &d in &meta.dict {
                out.put_u16_le(d);
            }
            for v in vectors {
                write_rd_vector(out, v, meta.right_width::<F>());
            }
        }
    }
}

fn write_alp_vector(out: &mut Vec<u8>, v: &AlpVector, exc: ExcView<'_>) {
    out.put_u8(v.exponent);
    out.put_u8(v.factor);
    out.put_u8(v.bit_width);
    out.put_u16_le(v.len);
    out.put_i64_le(v.for_base);
    out.put_u16_le(exc.positions.len() as u16);
    // Stored without the trailing pad word — it is reconstructed on read.
    let words = v.bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed[..words] {
        out.put_u64_le(w);
    }
    for &p in exc.positions {
        out.put_u16_le(p);
    }
    for &x in exc.values {
        out.put_u64_le(x);
    }
}

fn write_rd_vector(out: &mut Vec<u8>, v: &RdVector, right_width: usize) {
    out.put_u16_le(v.len);
    out.put_u16_le(v.exc_positions.len() as u16);
    let code_words = v.packed_codes.len() - 1;
    for &w in &v.packed_codes[..code_words] {
        out.put_u64_le(w);
    }
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed_right[..right_words] {
        out.put_u64_le(w);
    }
    for &p in &v.exc_positions {
        out.put_u16_le(p);
    }
    for &l in &v.exc_left {
        out.put_u16_le(l);
    }
}

/// On-disk layout version, decided by the magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    /// Legacy: bare row-group bodies, no integrity frames.
    V1,
    /// Current: each row-group body is `rg_len:u32 | checksum:u64 | body`.
    V2,
}

/// Parsed column header (shared by strict and salvage readers).
struct Header {
    version: Version,
    len: usize,
    rg_count: usize,
}

fn read_header<F: AlpFloat>(buf: &mut &[u8]) -> Result<Header, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    // ANALYZER-ALLOW(no-panic): length checked above
    let version = match &buf[..4] {
        m if m == MAGIC => Version::V2,
        m if m == MAGIC_V1 => Version::V1,
        _ => return Err(FormatError::BadMagic),
    };
    buf.advance(4);
    if buf.len() < 1 + 8 + 4 {
        return Err(FormatError::Truncated);
    }
    let bits = buf.get_u8();
    if u32::from(bits) != F::BITS {
        // ANALYZER-ALLOW(no-panic): F::BITS is 32 or 64, always fits in u8.
        return Err(FormatError::WidthMismatch { found: bits, expected: F::BITS as u8 });
    }
    let len = buf.get_u64_le() as usize;
    let rg_count = buf.get_u32_le() as usize;
    Ok(Header { version, len, rg_count })
}

/// Verifies and parses one already-delimited `ALP2` frame body: checksum
/// first, then a full-body parse. This is the per-morsel work unit of
/// [`from_bytes_salvage_parallel`] — it touches nothing outside `body`, so
/// frames verify and decode independently.
fn decode_frame<F: AlpFloat>(
    body: &[u8],
    stored: u64,
    index: usize,
) -> Result<RowGroup, FormatError> {
    let computed = xxh64(body, CHECKSUM_SEED);
    if computed != stored {
        return Err(FormatError::ChecksumMismatch { rowgroup: index, stored, computed });
    }
    let mut cursor = body;
    let rg = read_rowgroup::<F>(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(FormatError::Corrupt("row-group frame length"));
    }
    Ok(rg)
}

/// Reads one `ALP2` integrity frame: verifies the checksum, parses the body,
/// and requires the body length to match the frame exactly. On success the
/// cursor sits on the next frame.
fn read_framed_rowgroup<F: AlpFloat>(
    buf: &mut &[u8],
    index: usize,
) -> Result<RowGroup, FormatError> {
    if buf.len() < 4 + 8 {
        return Err(FormatError::Truncated);
    }
    let rg_len = buf.get_u32_le() as usize;
    let stored = buf.get_u64_le();
    let Some(body) = buf.get(..rg_len) else {
        return Err(FormatError::Truncated);
    };
    let rg = decode_frame::<F>(body, stored, index)?;
    buf.advance(rg_len);
    Ok(rg)
}

/// One delimited `ALP2` frame: the whole frame bytes (the XOR unit of parity
/// repair) plus its parsed pieces. For a frame whose *length prefix* was
/// corrupted, `whole` is the opaque damaged region up to the next trustworthy
/// boundary and `stored`/`body` are best-effort views into it.
struct LocatedFrame<'a> {
    /// `rg_len:u32 | checksum:u64 | body`, exactly as written.
    whole: &'a [u8],
    stored: u64,
    body: &'a [u8],
}

/// Delimits the frame starting at `off`, bounded by `end`: `Some` when the
/// 12-byte prefix is present and the recorded length lands inside the region.
fn frame_at(buf: &[u8], off: usize, end: usize) -> Option<LocatedFrame<'_>> {
    let region = buf.get(off..end)?;
    let rg_len = u32::from_le_bytes(region.get(..4)?.try_into().ok()?) as usize;
    let stored = u64::from_le_bytes(region.get(4..12)?.try_into().ok()?);
    let total = 12usize.checked_add(rg_len)?;
    let whole = region.get(..total)?;
    let body = whole.get(12..)?;
    Some(LocatedFrame { whole, stored, body })
}

/// Whether a checksum-verified frame starts at `off` — the resync probe for
/// re-finding byte alignment after a corrupted length prefix.
fn verified_frame_at(buf: &[u8], off: usize, end: usize) -> bool {
    frame_at(buf, off, end).is_some_and(|f| xxh64(f.body, CHECKSUM_SEED) == f.stored)
}

/// Locates the parity section: the first offset where a checksum-verified
/// `"ALPP"` parity frame begins. The magic sits at body position (12 bytes
/// into the frame); the checksum plus the body-layout parse make a false
/// positive inside packed float data vanishingly unlikely.
fn find_parity_section(buf: &[u8]) -> Option<usize> {
    let mut search = 0usize;
    while let Some(rel) =
        buf.get(search..)?.windows(4).position(|w| w == parity::PARITY_MAGIC.as_slice())
    {
        let pos = search + rel;
        if let Some(start) = pos.checked_sub(12) {
            if let Some(f) = frame_at(buf, start, buf.len()) {
                if xxh64(f.body, CHECKSUM_SEED) == f.stored
                    && parity::parse_parity_body(f.body).is_some()
                {
                    return Some(start);
                }
            }
        }
        search = pos + 1;
    }
    None
}

/// Walks the parity section starting at `off`: one entry per parity group,
/// in group order. A damaged parity frame with a plausible length becomes
/// `None` (its group is simply unprotected); an implausible length ends the
/// walk, since group order past it cannot be trusted. Returns the parsed
/// sections and the writer's group size (0 when none parsed).
fn parse_parity_frames(buf: &[u8], mut off: usize) -> (Vec<Option<parity::ParityBody<'_>>>, usize) {
    let mut sections = Vec::new();
    let mut group_size = 0usize;
    while off < buf.len() {
        let Some(f) = frame_at(buf, off, buf.len()) else { break };
        off += f.whole.len();
        if xxh64(f.body, CHECKSUM_SEED) == f.stored {
            if let Some(pb) = parity::parse_parity_body(f.body) {
                group_size = group_size.max(pb.group_size);
                sections.push(Some(pb));
                continue;
            }
        }
        sections.push(None);
    }
    (sections, group_size)
}

/// The parity group size advertised by `buf`'s trailing parity section, when
/// the column carries one (located by magic scan and checksum-verified).
/// `None` for unprotected or unrecognizable buffers — callers use this to
/// re-encode a repaired column with the same protection it had.
pub fn parity_group_size(buf: &[u8]) -> Option<usize> {
    let start = find_parity_section(buf)?;
    let (sections, group_size) = parse_parity_frames(buf, start);
    if sections.is_empty() || group_size == 0 {
        return None;
    }
    Some(group_size)
}

/// Serial frame-boundary walk over the `ALP2` data region `[0, data_end)`,
/// delimiting up to `rg_count` frames by their length prefixes (cheap — no
/// checksumming, no parsing).
///
/// Without a parity section (`can_resync == false`) this matches the
/// historical scan: the walk ends at the first implausible length, and
/// everything past it is lost. With one, the walk *resyncs* instead: the
/// damaged stretch up to the next checksum-verified frame start (or the
/// section itself) is recorded as one opaque damaged frame — parity can
/// reconstruct it — and the walk continues on the re-found alignment.
fn locate_data_frames(
    buf: &[u8],
    data_end: usize,
    rg_count: usize,
    can_resync: bool,
) -> Vec<LocatedFrame<'_>> {
    let mut frames: Vec<LocatedFrame<'_>> = Vec::with_capacity(rg_count.min(1 << 20));
    let mut off = 0usize;
    while frames.len() < rg_count && off < data_end {
        if let Some(f) = frame_at(buf, off, data_end) {
            off += f.whole.len();
            frames.push(f);
            continue;
        }
        if !can_resync {
            break;
        }
        // Corrupted length prefix. The smallest real frame is 12 + 1 bytes,
        // so the next boundary is at least 13 bytes on.
        let resync = (off + 13..data_end).find(|&s| verified_frame_at(buf, s, data_end));
        let span_end = resync.unwrap_or(data_end);
        let whole = buf.get(off..span_end).unwrap_or(&[]);
        let stored =
            whole.get(4..12).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes).unwrap_or(0);
        let body = whole.get(12..).unwrap_or(&[]);
        frames.push(LocatedFrame { whole, stored, body });
        off = span_end;
    }
    frames
}

/// Reconstructs, per parity group, the single damaged data frame (if any)
/// from the group's intact frame bytes and its XOR block, decoding the
/// repaired bytes through the same checksum-verified path as an on-disk
/// frame. Successfully repaired indices land in `decoded` and `repaired`.
fn repair_groups<F: AlpFloat>(
    frames: &[LocatedFrame<'_>],
    decoded: &mut [Option<RowGroup>],
    repaired: &mut Vec<usize>,
    sections: &[Option<parity::ParityBody<'_>>],
    group_size: usize,
    rg_count: usize,
) {
    if group_size == 0 {
        return;
    }
    for (g, section) in sections.iter().enumerate() {
        let Some(pb) = section else { continue };
        let Some(start) = g.checked_mul(group_size) else { break };
        let Some(group_end) = start.checked_add(pb.count) else { break };
        let members = start..group_end.min(rg_count);
        let damaged: Vec<usize> =
            members.clone().filter(|&i| decoded.get(i).is_none_or(|d| d.is_none())).collect();
        let Some(&victim) = damaged.first() else { continue };
        if damaged.len() != 1 {
            continue; // >= 2 faults in one group: beyond the protection level
        }
        let intact: Vec<&[u8]> = members
            .clone()
            .filter(|&i| i != victim)
            .filter_map(|i| frames.get(i).map(|f| f.whole))
            .collect();
        if intact.len() + 1 != pb.count {
            continue; // a member is missing entirely: cannot trust the XOR
        }
        let Some(rebuilt) = parity::try_repair_frame(pb.xor, &intact) else { continue };
        let Some(stored) =
            rebuilt.get(4..12).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes)
        else {
            continue;
        };
        let Some(body) = rebuilt.get(12..) else { continue };
        if let Ok(rg) = decode_frame::<F>(body, stored, victim) {
            if let Some(slot) = decoded.get_mut(victim) {
                *slot = Some(rg);
                repaired.push(victim);
            }
        }
    }
    repaired.sort_unstable();
}

/// Deserializes a column previously produced by [`to_bytes`] (or the legacy
/// [`to_bytes_v1`]). Strict: any damage — structural or checksum — is an error.
pub fn from_bytes<F: AlpFloat>(mut buf: &[u8]) -> Result<Compressed<F>, FormatError> {
    let header = read_header::<F>(&mut buf)?;
    let mut rowgroups = Vec::with_capacity(header.rg_count.min(1 << 20));
    for i in 0..header.rg_count {
        let rg = match header.version {
            Version::V2 => read_framed_rowgroup::<F>(&mut buf, i)?,
            Version::V1 => read_rowgroup::<F>(&mut buf)?,
        };
        rowgroups.push(rg);
    }

    // The recorded length must equal the vectors' actual content — a lying
    // header would otherwise drive a giant allocation in `decompress`.
    let actual: usize = rowgroups.iter().map(|rg| rg.len()).sum();
    if actual != header.len {
        return Err(FormatError::Corrupt("column length"));
    }
    Ok(Compressed::from_rowgroups(rowgroups, header.len))
}

/// Result of a salvage read: whatever survived, plus a damage report.
#[derive(Debug)]
pub struct Salvage<F: AlpFloat> {
    /// The recoverable column — surviving row-groups in file order. Its `len`
    /// is the surviving value count, not the original header length.
    pub column: Compressed<F>,
    /// Indices (in file order) of row-groups that were lost to corruption.
    pub lost_rowgroups: Vec<usize>,
    /// Indices (in file order) of row-groups that were damaged on disk but
    /// reconstructed byte-identically from the column's parity section.
    /// Repaired row-groups are present in `column` and never in
    /// `lost_rowgroups`.
    pub repaired_rowgroups: Vec<usize>,
    /// Row-group count the header promised.
    pub total_rowgroups: usize,
    /// Value count the header promised (what `len` would be undamaged).
    pub expected_len: usize,
}

impl<F: AlpFloat> Salvage<F> {
    /// True when every row-group survived.
    pub fn is_complete(&self) -> bool {
        self.lost_rowgroups.is_empty() && self.column.len == self.expected_len
    }
}

/// Best-effort deserialization: skips damaged row-groups instead of failing,
/// returning the survivors and exactly which row-groups were lost.
///
/// With the `ALP2` layout the length prefix of each integrity frame allows
/// resyncing past a damaged body, so one flipped bit costs *at most* one
/// row-group — and when the column carries a parity section
/// ([`to_bytes_with_parity`]), a group's single damaged row-group is
/// XOR-reconstructed byte-identically and reported in
/// [`Salvage::repaired_rowgroups`] instead of lost. Two or more damaged
/// row-groups in one parity group are beyond the protection level and
/// degrade to the loss report. A frame whose *length field itself* is
/// implausible ends recovery on parity-less columns; with parity, the reader
/// rescans for the next checksum-verified frame boundary and continues.
/// Legacy `ALP1` columns have no frames, so the first damaged row-group ends
/// recovery outright. A damaged header is unrecoverable and returns `Err`
/// like [`from_bytes`].
///
/// Single-threaded shorthand for [`from_bytes_salvage_parallel`].
pub fn from_bytes_salvage<F: AlpFloat>(buf: &[u8]) -> Result<Salvage<F>, FormatError> {
    from_bytes_salvage_parallel(buf, 1)
}

/// [`from_bytes_salvage`] on up to `threads` morsel-claiming workers: a
/// serial scan walks the `ALP2` length prefixes to find frame boundaries
/// (cheap — no checksums, no parsing), then checksum verification and body
/// decoding of the discovered frames fan out over the morsel scheduler, one
/// frame per morsel. `threads <= 1` never spawns. The salvage report is
/// identical to the serial path's for any input; legacy `ALP1` columns have
/// no frame boundaries to scan, so they always walk serially.
pub fn from_bytes_salvage_parallel<F: AlpFloat>(
    mut buf: &[u8],
    threads: usize,
) -> Result<Salvage<F>, FormatError> {
    let header = read_header::<F>(&mut buf)?;
    // A corrupt header can claim billions of row-groups; clamp the loss report
    // to what the buffer could physically hold (smallest body is 5 bytes).
    let min_frame = match header.version {
        Version::V2 => 4 + 8 + 5,
        Version::V1 => 5,
    };
    let rg_count = header.rg_count.min(buf.len() / min_frame + 1);
    let mut rowgroups = Vec::new();
    let mut lost = Vec::new();
    let mut repaired = Vec::new();
    match header.version {
        Version::V2 => {
            // Phase 1 (serial): find the trailing parity section, if any,
            // then delimit the data frames — resyncing past corrupted length
            // prefixes only when parity bounds the data region.
            let pstart = find_parity_section(buf);
            let data_end = pstart.unwrap_or(buf.len());
            let frames = locate_data_frames(buf, data_end, rg_count, pstart.is_some());
            // Phase 2: verify + decode every delimited frame independently.
            let mut decoded = crate::par::map_morsels(
                threads,
                frames.len(),
                || (),
                |(), m| {
                    let frame = frames.get(m)?;
                    decode_frame::<F>(frame.body, frame.stored, m).ok()
                },
            );
            decoded.resize_with(rg_count, || None);
            // Phase 3 (serial): XOR-reconstruct the single damaged frame of
            // any group whose parity frame survived.
            if let Some(pstart) = pstart {
                let (sections, group_size) = parse_parity_frames(buf, pstart);
                repair_groups::<F>(
                    &frames,
                    &mut decoded,
                    &mut repaired,
                    &sections,
                    group_size,
                    rg_count,
                );
            }
            for (i, rg) in decoded.into_iter().enumerate() {
                match rg {
                    Some(rg) => rowgroups.push(rg),
                    // Damaged beyond repair (or beyond the scan): lost.
                    None => lost.push(i),
                }
            }
        }
        Version::V1 => {
            let mut i = 0;
            while i < rg_count {
                match read_rowgroup::<F>(&mut buf) {
                    Ok(rg) => rowgroups.push(rg),
                    // No framing: a parse failure loses byte alignment for good.
                    Err(_) => break,
                }
                i += 1;
            }
            lost.extend(i..rg_count);
        }
    }

    let salvaged_len: usize = rowgroups.iter().map(|rg| rg.len()).sum();
    Ok(Salvage {
        column: Compressed::from_rowgroups(rowgroups, salvaged_len),
        lost_rowgroups: lost,
        repaired_rowgroups: repaired,
        total_rowgroups: rg_count,
        expected_len: header.len,
    })
}

/// Deserializes one row-group (inverse of [`write_rowgroup`]).
pub fn read_rowgroup<F: AlpFloat>(buf: &mut &[u8]) -> Result<RowGroup, FormatError> {
    if buf.len() < 5 {
        return Err(FormatError::Truncated);
    }
    let scheme = buf.get_u8();
    let vec_count = buf.get_u32_le() as usize;
    match scheme {
        SCHEME_TAG_ALP => {
            let mut group = AlpGroup {
                vectors: Vec::with_capacity(vec_count.min(1 << 16)),
                exceptions: ExcArena::new(),
            };
            for _ in 0..vec_count {
                let v = read_alp_vector(buf, &mut group.exceptions)?;
                group.vectors.push(v);
            }
            Ok(RowGroup::Alp(group))
        }
        SCHEME_TAG_RD => {
            if buf.len() < 3 {
                return Err(FormatError::Truncated);
            }
            let left_width = buf.get_u8();
            let code_width = buf.get_u8();
            let dict_len = buf.get_u8() as usize;
            if left_width == 0 || left_width as usize > crate::rd::MAX_LEFT_WIDTH {
                return Err(FormatError::Corrupt("rd left_width"));
            }
            if dict_len == 0 || dict_len > crate::rd::MAX_DICT_SIZE {
                return Err(FormatError::Corrupt("rd dict size"));
            }
            if code_width > 3 {
                return Err(FormatError::Corrupt("rd code width"));
            }
            if buf.len() < dict_len * 2 {
                return Err(FormatError::Truncated);
            }
            let dict: Vec<u16> = (0..dict_len).map(|_| buf.get_u16_le()).collect();
            let meta = RdMeta { left_width, code_width, dict };
            let right_width = meta.right_width::<F>();
            let mut vectors = Vec::with_capacity(vec_count.min(1 << 16));
            for _ in 0..vec_count {
                vectors.push(read_rd_vector(buf, code_width as usize, right_width)?);
            }
            Ok(RowGroup::Rd(meta, vectors))
        }
        _ => Err(FormatError::Corrupt("scheme tag")),
    }
}

fn read_alp_vector(buf: &mut &[u8], arena: &mut ExcArena) -> Result<AlpVector, FormatError> {
    if buf.len() < 3 + 2 + 8 + 2 {
        return Err(FormatError::Truncated);
    }
    let exponent = buf.get_u8();
    let factor = buf.get_u8();
    let bit_width = buf.get_u8();
    let len = buf.get_u16_le();
    let for_base = buf.get_i64_le();
    let exc_count = buf.get_u16_le();
    let exc = exc_count as usize;
    if bit_width > 64 {
        return Err(FormatError::Corrupt("alp bit_width"));
    }
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("alp vector len/exceptions"));
    }
    let words = bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < words * 8 + exc * (2 + 8) {
        return Err(FormatError::Truncated);
    }
    let mut packed = Vec::with_capacity(words + 1);
    for _ in 0..words {
        packed.push(buf.get_u64_le());
    }
    packed.push(0); // reconstruct the pad word
    let Ok(exc_start) = u32::try_from(arena.len()) else {
        return Err(FormatError::Corrupt("exception arena overflow"));
    };
    // Positions precede values on the wire; stage positions so both streams
    // land in the arena in parallel order.
    for _ in 0..exc {
        arena.positions.push(buf.get_u16_le());
    }
    for _ in 0..exc {
        arena.values.push(buf.get_u64_le());
    }
    let start = exc_start as usize;
    if arena.positions.get(start..).is_some_and(|ps| ps.iter().any(|&p| p >= len)) {
        return Err(FormatError::Corrupt("alp exception position"));
    }
    Ok(AlpVector { exponent, factor, bit_width, for_base, packed, exc_start, exc_count, len })
}

fn read_rd_vector(
    buf: &mut &[u8],
    code_width: usize,
    right_width: usize,
) -> Result<RdVector, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    let len = buf.get_u16_le();
    let exc = buf.get_u16_le() as usize;
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("rd vector len/exceptions"));
    }
    let code_words = code_width * (fastlanes::VECTOR_SIZE / 64);
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < (code_words + right_words) * 8 + exc * 4 {
        return Err(FormatError::Truncated);
    }
    let mut packed_codes = Vec::with_capacity(code_words + 1);
    for _ in 0..code_words {
        packed_codes.push(buf.get_u64_le());
    }
    packed_codes.push(0);
    let mut packed_right = Vec::with_capacity(right_words + 1);
    for _ in 0..right_words {
        packed_right.push(buf.get_u64_le());
    }
    packed_right.push(0);
    let exc_positions: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    let exc_left: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    if exc_positions.iter().any(|&p| p >= len) {
        return Err(FormatError::Corrupt("rd exception position"));
    }
    Ok(RdVector { packed_codes, packed_right, exc_positions, exc_left, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::Compressor;

    fn roundtrip(data: &[f64]) {
        let c = Compressor::new().compress(data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).expect("deserialize");
        assert_eq!(back.len, data.len());
        let decoded = back.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serde_roundtrip_decimal_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i % 777) as f64) * 0.125).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_rd_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i as f64) * 0.271).sin() * 2e-5).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_with_specials() {
        let mut data: Vec<f64> = (0..4000).map(|i| (i as f64) * 0.2).collect();
        data[13] = f64::NAN;
        data[200] = -0.0;
        data[3999] = f64::NEG_INFINITY;
        roundtrip(&data);
    }

    #[test]
    fn serde_f32_roundtrip() {
        let data: Vec<f32> = (0..9000).map(|i| ((i % 300) as f32) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f32>(&bytes).unwrap();
        assert_eq!(back.decompress(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_bytes::<f64>(b"NOPE....."), Err(FormatError::BadMagic)));
    }

    #[test]
    fn rejects_width_mismatch() {
        let data: Vec<f32> = vec![1.0; 100];
        let bytes = to_bytes(&Compressor::new().compress(&data));
        assert!(matches!(
            from_bytes::<f64>(&bytes),
            Err(FormatError::WidthMismatch { found: 32, expected: 64 })
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.1).collect();
        let bytes = to_bytes(&Compressor::new().compress(&data));
        // Every strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 4, 10, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes::<f64>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_column_serializes() {
        let c = Compressor::new().compress::<f64>(&[]);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).unwrap();
        assert_eq!(back.len, 0);
        assert!(back.decompress().is_empty());
    }

    /// Three-row-group column (default row-group is 100 × 1024 values).
    fn multi_rowgroup_bytes() -> (Vec<f64>, Vec<u8>) {
        let data: Vec<f64> = (0..250_000).map(|i| ((i % 901) as f64) * 0.05).collect();
        let bytes = to_bytes(&Compressor::new().compress(&data));
        (data, bytes)
    }

    #[test]
    fn current_magic_is_alp2() {
        let (_, bytes) = multi_rowgroup_bytes();
        assert_eq!(&bytes[..4], MAGIC);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        // Flip one bit deep inside the second row-group's packed payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        match from_bytes::<f64>(&bytes) {
            Err(FormatError::ChecksumMismatch { stored, computed, .. }) => {
                assert_ne!(stored, computed)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn salvage_recovers_all_but_damaged_rowgroup() {
        let (data, mut bytes) = multi_rowgroup_bytes();
        let clean = from_bytes::<f64>(&bytes).unwrap();
        let rg_count = clean.rowgroups.len();
        assert!(rg_count >= 2, "need multiple row-groups, got {rg_count}");
        let rg_len: usize = clean.rowgroups[0].len();

        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert_eq!(salvage.lost_rowgroups.len(), 1);
        assert_eq!(salvage.total_rowgroups, rg_count);
        assert_eq!(salvage.expected_len, data.len());
        assert!(!salvage.is_complete());

        // Surviving row-groups decode bit-exactly to the data outside the
        // damaged row-group.
        let lost = salvage.lost_rowgroups[0];
        let decoded = salvage.column.decompress();
        let expected: Vec<f64> = data
            .chunks(rg_len)
            .enumerate()
            .filter(|(i, _)| *i != lost)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        assert_eq!(salvage.column.len, expected.len());
        assert_eq!(decoded.len(), expected.len());
        for (a, b) in decoded.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn salvage_on_clean_column_is_complete() {
        let (data, bytes) = multi_rowgroup_bytes();
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(salvage.is_complete());
        assert!(salvage.lost_rowgroups.is_empty());
        assert_eq!(salvage.column.len, data.len());
    }

    #[test]
    fn legacy_v1_columns_still_roundtrip() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i % 511) as f64) * 0.25).collect();
        let c = Compressor::new().compress(&data);
        let v1 = to_bytes_v1(&c);
        assert_eq!(&v1[..4], MAGIC_V1);
        let back = from_bytes::<f64>(&v1).unwrap();
        let decoded = back.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Salvage accepts v1 too, but without frames damage ends recovery.
        let mut damaged = v1.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        let salvage = from_bytes_salvage::<f64>(&damaged).unwrap();
        assert!(salvage.column.len <= data.len());
    }

    #[test]
    fn salvage_of_truncated_column_reports_tail_lost() {
        let (_, bytes) = multi_rowgroup_bytes();
        let clean = from_bytes::<f64>(&bytes).unwrap();
        let cut = bytes.len() - bytes.len() / 3;
        let salvage = from_bytes_salvage::<f64>(&bytes[..cut]).unwrap();
        assert!(!salvage.lost_rowgroups.is_empty());
        assert!(salvage.column.rowgroups.len() < clean.rowgroups.len());
    }

    #[test]
    fn parallel_salvage_matches_serial_on_damage() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        let serial = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(!serial.is_complete());
        for threads in [2, 4] {
            let par = from_bytes_salvage_parallel::<f64>(&bytes, threads).unwrap();
            assert_eq!(par.lost_rowgroups, serial.lost_rowgroups, "t={threads}");
            assert_eq!(par.total_rowgroups, serial.total_rowgroups);
            assert_eq!(par.expected_len, serial.expected_len);
            assert_eq!(par.column.len, serial.column.len);
            assert_eq!(par.column.decompress(), serial.column.decompress());
        }
    }

    #[test]
    fn parallel_salvage_matches_serial_on_truncation() {
        let (_, bytes) = multi_rowgroup_bytes();
        for cut in [bytes.len() - 1, bytes.len() * 2 / 3, bytes.len() / 3, 20, 17] {
            let serial = from_bytes_salvage::<f64>(&bytes[..cut]).unwrap();
            let par = from_bytes_salvage_parallel::<f64>(&bytes[..cut], 4).unwrap();
            assert_eq!(par.lost_rowgroups, serial.lost_rowgroups, "cut {cut}");
            assert_eq!(par.total_rowgroups, serial.total_rowgroups, "cut {cut}");
            assert_eq!(par.column.decompress(), serial.column.decompress(), "cut {cut}");
        }
    }

    #[test]
    fn parallel_salvage_on_clean_column_is_complete() {
        let (data, bytes) = multi_rowgroup_bytes();
        let salvage = from_bytes_salvage_parallel::<f64>(&bytes, 4).unwrap();
        assert!(salvage.is_complete());
        assert_eq!(salvage.column.len, data.len());
        let decoded = salvage.column.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Parity-protected column with several small row-groups: 13 row-groups
    /// of 2048 values each, parity groups of 4 (3 full groups + 1 partial).
    fn parity_column_bytes() -> (Vec<f64>, Vec<u8>) {
        let params = crate::sampler::SamplerParams {
            vectors_per_rowgroup: 2,
            ..crate::sampler::SamplerParams::default()
        };
        let data: Vec<f64> =
            (0..13 * 2 * fastlanes::VECTOR_SIZE).map(|i| ((i % 901) as f64) * 0.05).collect();
        let c = Compressor::with_params(params).unwrap().compress(&data);
        assert_eq!(c.rowgroups.len(), 13);
        let bytes = to_bytes_with_parity(&c, ParityConfig { group_size: 4 }).unwrap();
        (data, bytes)
    }

    /// Frame spans `(start, end)` of the column's data frames, by length walk.
    fn data_frame_spans(bytes: &[u8], count: usize) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut off = 4 + 1 + 8 + 4;
        for _ in 0..count {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            spans.push((off, off + 12 + len));
            off += 12 + len;
        }
        spans
    }

    fn assert_bit_exact(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parity_column_reads_clean_through_legacy_strict_and_salvage() {
        let (data, bytes) = parity_column_bytes();
        // Strict reader (which predates parity) ignores the trailing section.
        let strict = from_bytes::<f64>(&bytes).unwrap();
        assert_bit_exact(&data, &strict.decompress());
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(salvage.is_complete());
        assert!(salvage.repaired_rowgroups.is_empty());
        assert_bit_exact(&data, &salvage.column.decompress());
    }

    #[test]
    fn one_damaged_rowgroup_per_group_repairs_byte_identically() {
        let (data, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        // One victim in each parity group, partial tail group included.
        let victims = [1usize, 6, 9, 12];
        let mut bytes = clean.clone();
        for &v in &victims {
            let (s, e) = spans[v];
            bytes[s + 12 + (e - s) / 2] ^= 0x40; // flip a body bit
        }
        for threads in [1usize, 4] {
            let salvage = from_bytes_salvage_parallel::<f64>(&bytes, threads).unwrap();
            assert_eq!(salvage.repaired_rowgroups, victims, "threads={threads}");
            assert!(salvage.lost_rowgroups.is_empty());
            assert!(salvage.is_complete());
            assert_bit_exact(&data, &salvage.column.decompress());
        }
    }

    #[test]
    fn corrupted_length_prefix_resyncs_and_repairs() {
        let (data, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        let mut bytes = clean.clone();
        // Make frame 5's length implausible (runs past the buffer) AND
        // damage its body so resync alone cannot recover it.
        let (s, e) = spans[5];
        bytes[s..s + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[s + 20] ^= 0xFF;
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert_eq!(salvage.repaired_rowgroups, vec![5]);
        assert!(salvage.lost_rowgroups.is_empty());
        assert_bit_exact(&data, &salvage.column.decompress());
        // With only the length corrupted, resync re-finds the true frame and
        // no parity repair is even needed.
        let mut bytes = clean.clone();
        bytes[s..s + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = e;
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(salvage.lost_rowgroups.is_empty());
        assert_bit_exact(&data, &salvage.column.decompress());
    }

    #[test]
    fn two_damaged_in_one_group_degrade_to_loss_report() {
        let (data, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        let mut bytes = clean;
        for &v in &[4usize, 6] {
            let (s, e) = spans[v];
            bytes[s + 12 + (e - s) / 2] ^= 0x01;
        }
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert_eq!(salvage.lost_rowgroups, vec![4, 6]);
        assert!(salvage.repaired_rowgroups.is_empty());
        assert!(!salvage.is_complete());
        let expected: Vec<f64> = data
            .chunks(2 * fastlanes::VECTOR_SIZE)
            .enumerate()
            .filter(|(i, _)| *i != 4 && *i != 6)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        assert_bit_exact(&expected, &salvage.column.decompress());
    }

    #[test]
    fn damaged_parity_section_costs_no_data() {
        let (data, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        let parity_start = spans.last().unwrap().1;
        let mut bytes = clean;
        for b in &mut bytes[parity_start..] {
            *b ^= 0x5A; // trash the entire parity section
        }
        let salvage = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert!(salvage.is_complete());
        assert!(salvage.repaired_rowgroups.is_empty());
        assert_bit_exact(&data, &salvage.column.decompress());
    }

    #[test]
    fn parallel_parity_salvage_matches_serial() {
        let (_, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        let mut bytes = clean;
        let (s0, e0) = spans[2];
        bytes[s0 + 12 + (e0 - s0) / 3] ^= 0x08; // group 0: repairable
        let (s1, _) = spans[5];
        bytes[s1 + 4] ^= 0xFF; // group 1: checksum field damaged, repairable
        let (s2, e2) = spans[8];
        bytes[s2 + 13] ^= 0x02;
        bytes[e2 - 1] ^= 0x02; // still one frame: repairable
        let serial = from_bytes_salvage::<f64>(&bytes).unwrap();
        assert_eq!(serial.repaired_rowgroups, vec![2, 5, 8]);
        for threads in [2, 4] {
            let par = from_bytes_salvage_parallel::<f64>(&bytes, threads).unwrap();
            assert_eq!(par.repaired_rowgroups, serial.repaired_rowgroups, "t={threads}");
            assert_eq!(par.lost_rowgroups, serial.lost_rowgroups);
            assert_eq!(par.column.decompress(), serial.column.decompress());
        }
    }

    #[test]
    fn truncated_parity_column_still_reads_data_prefix() {
        let (data, clean) = parity_column_bytes();
        let spans = data_frame_spans(&clean, 13);
        // Cut inside the parity section: all data survives, repair is gone.
        let parity_start = spans.last().unwrap().1;
        let cut = parity_start + (clean.len() - parity_start) / 2;
        let salvage = from_bytes_salvage::<f64>(&clean[..cut]).unwrap();
        assert!(salvage.lost_rowgroups.is_empty());
        assert_bit_exact(&data, &salvage.column.decompress());
        // Cut inside the data: the tail (and the parity section with it) is
        // lost — trailing parity cannot repair truncation, by design.
        let (s, e) = spans[11];
        let salvage = from_bytes_salvage::<f64>(&clean[..s + (e - s) / 2]).unwrap();
        assert!(salvage.lost_rowgroups.contains(&11));
        assert!(salvage.column.rowgroups.len() <= 11);
    }

    #[test]
    fn salvage_rejects_damaged_header() {
        let (_, mut bytes) = multi_rowgroup_bytes();
        bytes[0] = b'X';
        assert!(matches!(from_bytes_salvage::<f64>(&bytes), Err(FormatError::BadMagic)));
    }
}
