//! Byte serialization of compressed columns.
//!
//! The format is self-describing and vector-addressable: each vector's
//! parameters precede its payload, so a reader can skip whole vectors without
//! touching their packed words — the predicate-pushdown property the paper
//! contrasts with block-based compressors.
//!
//! Layout (all integers little-endian):
//! ```text
//! "ALP1" | bits:u8 | len:u64 | rowgroups:u32
//! per row-group: scheme:u8 (0=ALP, 1=ALP_rd) | vectors:u32 | ...
//!   ALP vector : e:u8 f:u8 width:u8 len:u16 base:i64 exc:u16
//!                packed[16*width] exc_pos[exc] exc_val[exc]
//!   RD header  : left_width:u8 code_width:u8 dict_len:u8 dict[dict_len]:u16
//!   RD vector  : len:u16 exc:u16 packed_codes packed_right exc_pos exc_left
//! ```

use bytes::{Buf, BufMut};

use crate::encode::AlpVector;
use crate::rd::{RdMeta, RdVector};
use crate::rowgroup::{Compressed, RowGroup};
use crate::traits::AlpFloat;

/// Magic bytes identifying a serialized ALP column.
pub const MAGIC: &[u8; 4] = b"ALP1";

/// Errors produced when decoding a serialized column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The float width in the header does not match the requested type.
    WidthMismatch {
        /// Width recorded in the file.
        found: u8,
        /// Width of the type the caller asked for.
        expected: u8,
    },
    /// A structural field held an impossible value.
    Corrupt(&'static str),
}

impl core::fmt::Display for FormatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an ALP column (bad magic)"),
            FormatError::Truncated => write!(f, "buffer truncated"),
            FormatError::WidthMismatch { found, expected } => {
                write!(f, "column stores {found}-bit floats, caller expected {expected}-bit")
            }
            FormatError::Corrupt(what) => write!(f, "corrupt field: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serializes a compressed column to bytes.
pub fn to_bytes<F: AlpFloat>(c: &Compressed<F>) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.compressed_bits() / 8 + 64);
    out.put_slice(MAGIC);
    out.put_u8(F::BITS as u8);
    out.put_u64_le(c.len as u64);
    out.put_u32_le(c.rowgroups.len() as u32);
    for rg in &c.rowgroups {
        write_rowgroup::<F>(&mut out, rg);
    }
    out
}

/// Serializes one row-group (the framing unit of the streaming API).
pub fn write_rowgroup<F: AlpFloat>(out: &mut Vec<u8>, rg: &RowGroup) {
    match rg {
        RowGroup::Alp(vectors) => {
            out.put_u8(0);
            out.put_u32_le(vectors.len() as u32);
            for v in vectors {
                write_alp_vector(out, v);
            }
        }
        RowGroup::Rd(meta, vectors) => {
            out.put_u8(1);
            out.put_u32_le(vectors.len() as u32);
            out.put_u8(meta.left_width);
            out.put_u8(meta.code_width);
            out.put_u8(meta.dict.len() as u8);
            for &d in &meta.dict {
                out.put_u16_le(d);
            }
            for v in vectors {
                write_rd_vector(out, v, meta.right_width::<F>());
            }
        }
    }
}

fn write_alp_vector(out: &mut Vec<u8>, v: &AlpVector) {
    out.put_u8(v.exponent);
    out.put_u8(v.factor);
    out.put_u8(v.bit_width);
    out.put_u16_le(v.len);
    out.put_i64_le(v.for_base);
    out.put_u16_le(v.exc_positions.len() as u16);
    // Stored without the trailing pad word — it is reconstructed on read.
    let words = v.bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed[..words] {
        out.put_u64_le(w);
    }
    for &p in &v.exc_positions {
        out.put_u16_le(p);
    }
    for &x in &v.exc_values {
        out.put_u64_le(x);
    }
}

fn write_rd_vector(out: &mut Vec<u8>, v: &RdVector, right_width: usize) {
    out.put_u16_le(v.len);
    out.put_u16_le(v.exc_positions.len() as u16);
    let code_words = v.packed_codes.len() - 1;
    for &w in &v.packed_codes[..code_words] {
        out.put_u64_le(w);
    }
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    for &w in &v.packed_right[..right_words] {
        out.put_u64_le(w);
    }
    for &p in &v.exc_positions {
        out.put_u16_le(p);
    }
    for &l in &v.exc_left {
        out.put_u16_le(l);
    }
}

/// Deserializes a column previously produced by [`to_bytes`].
pub fn from_bytes<F: AlpFloat>(mut buf: &[u8]) -> Result<Compressed<F>, FormatError> {
    let need = |buf: &[u8], n: usize| if buf.len() < n { Err(FormatError::Truncated) } else { Ok(()) };

    need(buf, 4)?;
    if &buf[..4] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    buf.advance(4);
    need(buf, 1 + 8 + 4)?;
    let bits = buf.get_u8();
    if bits as u32 != F::BITS {
        return Err(FormatError::WidthMismatch { found: bits, expected: F::BITS as u8 });
    }
    let len = buf.get_u64_le() as usize;
    let rg_count = buf.get_u32_le() as usize;

    let mut rowgroups = Vec::with_capacity(rg_count);
    for _ in 0..rg_count {
        rowgroups.push(read_rowgroup::<F>(&mut buf)?);
    }

    // The recorded length must equal the vectors' actual content — a lying
    // header would otherwise drive a giant allocation in `decompress`.
    let actual: usize = rowgroups.iter().map(|rg| rg.len()).sum();
    if actual != len {
        return Err(FormatError::Corrupt("column length"));
    }
    Ok(Compressed::from_rowgroups(rowgroups, len))
}

/// Deserializes one row-group (inverse of [`write_rowgroup`]).
pub fn read_rowgroup<F: AlpFloat>(buf: &mut &[u8]) -> Result<RowGroup, FormatError> {
    if buf.len() < 5 {
        return Err(FormatError::Truncated);
    }
    let scheme = buf.get_u8();
    let vec_count = buf.get_u32_le() as usize;
    match scheme {
        0 => {
            let mut vectors = Vec::with_capacity(vec_count.min(1 << 16));
            for _ in 0..vec_count {
                vectors.push(read_alp_vector(buf)?);
            }
            Ok(RowGroup::Alp(vectors))
        }
        1 => {
            if buf.len() < 3 {
                return Err(FormatError::Truncated);
            }
            let left_width = buf.get_u8();
            let code_width = buf.get_u8();
            let dict_len = buf.get_u8() as usize;
            if left_width == 0 || left_width as usize > crate::rd::MAX_LEFT_WIDTH {
                return Err(FormatError::Corrupt("rd left_width"));
            }
            if dict_len == 0 || dict_len > crate::rd::MAX_DICT_SIZE {
                return Err(FormatError::Corrupt("rd dict size"));
            }
            if code_width > 3 {
                return Err(FormatError::Corrupt("rd code width"));
            }
            if buf.len() < dict_len * 2 {
                return Err(FormatError::Truncated);
            }
            let dict: Vec<u16> = (0..dict_len).map(|_| buf.get_u16_le()).collect();
            let meta = RdMeta { left_width, code_width, dict };
            let right_width = meta.right_width::<F>();
            let mut vectors = Vec::with_capacity(vec_count.min(1 << 16));
            for _ in 0..vec_count {
                vectors.push(read_rd_vector(buf, code_width as usize, right_width)?);
            }
            Ok(RowGroup::Rd(meta, vectors))
        }
        _ => Err(FormatError::Corrupt("scheme tag")),
    }
}

fn read_alp_vector(buf: &mut &[u8]) -> Result<AlpVector, FormatError> {
    if buf.len() < 3 + 2 + 8 + 2 {
        return Err(FormatError::Truncated);
    }
    let exponent = buf.get_u8();
    let factor = buf.get_u8();
    let bit_width = buf.get_u8();
    let len = buf.get_u16_le();
    let for_base = buf.get_i64_le();
    let exc = buf.get_u16_le() as usize;
    if bit_width > 64 {
        return Err(FormatError::Corrupt("alp bit_width"));
    }
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("alp vector len/exceptions"));
    }
    let words = bit_width as usize * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < words * 8 + exc * (2 + 8) {
        return Err(FormatError::Truncated);
    }
    let mut packed = Vec::with_capacity(words + 1);
    for _ in 0..words {
        packed.push(buf.get_u64_le());
    }
    packed.push(0); // reconstruct the pad word
    let exc_positions: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    let exc_values: Vec<u64> = (0..exc).map(|_| buf.get_u64_le()).collect();
    if exc_positions.iter().any(|&p| p >= len) {
        return Err(FormatError::Corrupt("alp exception position"));
    }
    Ok(AlpVector { exponent, factor, bit_width, for_base, packed, exc_positions, exc_values, len })
}

fn read_rd_vector(
    buf: &mut &[u8],
    code_width: usize,
    right_width: usize,
) -> Result<RdVector, FormatError> {
    if buf.len() < 4 {
        return Err(FormatError::Truncated);
    }
    let len = buf.get_u16_le();
    let exc = buf.get_u16_le() as usize;
    if len as usize > fastlanes::VECTOR_SIZE || exc > len as usize {
        return Err(FormatError::Corrupt("rd vector len/exceptions"));
    }
    let code_words = code_width * (fastlanes::VECTOR_SIZE / 64);
    let right_words = right_width * (fastlanes::VECTOR_SIZE / 64);
    if buf.len() < (code_words + right_words) * 8 + exc * 4 {
        return Err(FormatError::Truncated);
    }
    let mut packed_codes = Vec::with_capacity(code_words + 1);
    for _ in 0..code_words {
        packed_codes.push(buf.get_u64_le());
    }
    packed_codes.push(0);
    let mut packed_right = Vec::with_capacity(right_words + 1);
    for _ in 0..right_words {
        packed_right.push(buf.get_u64_le());
    }
    packed_right.push(0);
    let exc_positions: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    let exc_left: Vec<u16> = (0..exc).map(|_| buf.get_u16_le()).collect();
    if exc_positions.iter().any(|&p| p >= len) {
        return Err(FormatError::Corrupt("rd exception position"));
    }
    Ok(RdVector { packed_codes, packed_right, exc_positions, exc_left, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowgroup::Compressor;

    fn roundtrip(data: &[f64]) {
        let c = Compressor::new().compress(data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).expect("deserialize");
        assert_eq!(back.len, data.len());
        let decoded = back.decompress();
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn serde_roundtrip_decimal_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i % 777) as f64) * 0.125).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_rd_data() {
        let data: Vec<f64> = (0..120_000).map(|i| ((i as f64) * 0.271).sin() * 2e-5).collect();
        roundtrip(&data);
    }

    #[test]
    fn serde_roundtrip_with_specials() {
        let mut data: Vec<f64> = (0..4000).map(|i| (i as f64) * 0.2).collect();
        data[13] = f64::NAN;
        data[200] = -0.0;
        data[3999] = f64::NEG_INFINITY;
        roundtrip(&data);
    }

    #[test]
    fn serde_f32_roundtrip() {
        let data: Vec<f32> = (0..9000).map(|i| ((i % 300) as f32) * 0.5).collect();
        let c = Compressor::new().compress(&data);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f32>(&bytes).unwrap();
        assert_eq!(back.decompress(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(from_bytes::<f64>(b"NOPE....."), Err(FormatError::BadMagic)));
    }

    #[test]
    fn rejects_width_mismatch() {
        let data: Vec<f32> = vec![1.0; 100];
        let bytes = to_bytes(&Compressor::new().compress(&data));
        assert!(matches!(
            from_bytes::<f64>(&bytes),
            Err(FormatError::WidthMismatch { found: 32, expected: 64 })
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data: Vec<f64> = (0..3000).map(|i| (i as f64) * 0.1).collect();
        let bytes = to_bytes(&Compressor::new().compress(&data));
        // Every strict prefix must fail cleanly, never panic.
        for cut in [0, 3, 4, 10, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes::<f64>(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_column_serializes() {
        let c = Compressor::new().compress::<f64>(&[]);
        let bytes = to_bytes(&c);
        let back = from_bytes::<f64>(&bytes).unwrap();
        assert_eq!(back.len, 0);
        assert!(back.decompress().is_empty());
    }
}
