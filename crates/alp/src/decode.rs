//! ALP decompression (Algorithm 2): unFFOR + `ALP_dec` multiplication + patch.
//!
//! Three variants of the hot loop exist on purpose:
//!
//! * [`decode_vector`] — the production path: bit-unpack, add the FOR base and
//!   multiply back to floats **in a single fused kernel**, then patch
//!   exceptions. This is the "FFOR+ALP fused" configuration of Figure 5.
//! * [`decode_vector_unfused`] — identical math split into two kernels with a
//!   materialized intermediate integer vector (the Figure 5 baseline).
//! * [`decode_vector_scalar`] — a deliberately value-at-a-time, branchy
//!   implementation (runtime-width bit extraction, per-value exception test)
//!   standing in for the paper's "Scalar (vectorization disabled)"
//!   configuration of Figure 4.

use fastlanes::dispatch::{width_mask, with_width, WidthKernel};
use fastlanes::{ffor, VECTOR_SIZE};

use crate::encode::{AlpVector, ExcView};
use crate::traits::AlpFloat;

/// Decodes `v` into `out[..v.len]` using the fused kernel, patching from the
/// exception view `exc` (obtained from the owning arena). Returns the number
/// of live values written.
pub fn decode_vector<F: AlpFloat>(v: &AlpVector, exc: ExcView<'_>, out: &mut [F]) -> usize {
    assert!(out.len() >= VECTOR_SIZE);
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    with_width(
        v.bit_width as usize,
        FusedDecode { packed: &v.packed, base: v.for_base, mul_f, mul_e, out },
    );
    patch_exceptions(exc, out);
    v.len as usize
}

/// Unfused decode: unFFOR into an integer scratch vector, then a separate
/// multiply loop. Exists for the Figure 5 kernel-fusion ablation.
// ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; scratch/out
// lengths are asserted at entry and indices stay below VECTOR_SIZE.
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
pub fn decode_vector_unfused<F: AlpFloat>(
    v: &AlpVector,
    exc: ExcView<'_>,
    scratch: &mut [i64],
    out: &mut [F],
) -> usize {
    assert!(scratch.len() >= VECTOR_SIZE && out.len() >= VECTOR_SIZE);
    ffor::ffor_unpack(&v.packed, v.for_base, v.bit_width as usize, &mut scratch[..VECTOR_SIZE]);
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    for i in 0..VECTOR_SIZE {
        out[i] = F::from_i64(scratch[i]) * mul_f * mul_e;
    }
    patch_exceptions(exc, out);
    v.len as usize
}

/// Deliberately scalar decode: value-at-a-time with runtime-width bit
/// arithmetic and a per-value exception branch. Proxy for the paper's
/// vectorization-disabled builds (Figure 4).
// ANALYZER-ALLOW(no-panic): out.len() is asserted at entry; v.packed length is
// validated against bit_width during wire deserialization, and the `as u32`
// shift cast is bounded by `& 63`.
#[allow(clippy::needless_range_loop)] // value-at-a-time is the point here
pub fn decode_vector_scalar<F: AlpFloat>(v: &AlpVector, exc: ExcView<'_>, out: &mut [F]) -> usize {
    assert!(out.len() >= VECTOR_SIZE);
    let w = v.bit_width as usize;
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    let mask = if w == 64 {
        u64::MAX
    } else if w == 0 {
        0
    } else {
        (1u64 << w) - 1
    };
    let mut exc_idx = 0usize;
    for i in 0..v.len as usize {
        // Per-value adaptivity emulation: check the exception side first, as a
        // per-value codec (Chimp-style flag dispatch) would.
        if exc_idx < exc.positions.len() && exc.positions[exc_idx] as usize == i {
            out[i] = F::from_bits_u64(exc.values[exc_idx]);
            exc_idx += 1;
            continue;
        }
        let raw = if w == 0 {
            0
        } else {
            let bit = i * w;
            let word = bit >> 6;
            let off = (bit & 63) as u32;
            let lo = v.packed[word] >> off;
            let hi = (v.packed[word + 1] << 1) << (63 - off);
            (lo | hi) & mask
        };
        let d = raw.wrapping_add(v.for_base as u64) as i64;
        out[i] = F::from_i64(d) * mul_f * mul_e;
    }
    v.len as usize
}

/// Overwrites exception positions with their stored raw values (the PATCH step
/// of Algorithm 2).
#[inline]
pub fn patch_exceptions<F: AlpFloat>(exc: ExcView<'_>, out: &mut [F]) {
    for (&p, &bits) in exc.positions.iter().zip(exc.values) {
        // Positions come off the wire; a corrupt position past the vector end
        // is dropped rather than allowed to panic the decode path.
        if let Some(slot) = out.get_mut(p as usize) {
            *slot = F::from_bits_u64(bits);
        }
    }
}

struct FusedDecode<'a, F: AlpFloat> {
    packed: &'a [u64],
    base: i64,
    mul_f: F,
    mul_e: F,
    out: &'a mut [F],
}

impl<F: AlpFloat> WidthKernel for FusedDecode<'_, F> {
    type Out = ();
    #[inline]
    // ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; callers assert
    // out.len() >= VECTOR_SIZE and packed holds the 16*W+1 words the wire
    // reader validated, so every block index is in bounds. The `as u32` shift
    // cast is bounded by `& 63`.
    #[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
    fn run<const W: usize>(self) {
        let Self { packed, base, mul_f, mul_e, out } = self;
        let base_u = base as u64;
        if W == 0 {
            let val = F::from_i64(base) * mul_f * mul_e;
            out[..VECTOR_SIZE].fill(val);
            return;
        }
        if W == 64 {
            for i in 0..VECTOR_SIZE {
                let d = packed[i].wrapping_add(base_u) as i64;
                out[i] = F::from_i64(d) * mul_f * mul_e;
            }
            return;
        }
        let mask = width_mask::<W>();
        // Same 16x64 block structure as the fastlanes kernels. Fusion happens
        // at the cache-block level: the 64 unpacked integers stay in a local
        // buffer (registers / L1) instead of a materialized 1024-value vector,
        // and each mini-loop is a clean single-domain pattern the compiler
        // auto-vectorizes (mixing the shift network and the int→float multiply
        // in one loop defeats the vectorizer).
        for block in 0..VECTOR_SIZE / 64 {
            let words = &packed[block * W..block * W + W + 1];
            let out_block = &mut out[block * 64..block * 64 + 64];
            let mut tmp = [0i64; 64];
            for j in 0..64 {
                let bit = j * W;
                let word = bit >> 6;
                let off = (bit & 63) as u32;
                let lo = words[word] >> off;
                let hi = (words[word + 1] << 1) << (63 - off);
                tmp[j] = ((lo | hi) & mask).wrapping_add(base_u) as i64;
            }
            for j in 0..64 {
                out_block[j] = F::from_i64(tmp[j]) * mul_f * mul_e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_vector;

    fn roundtrip_all_variants(input: &[f64], e: u8, f: u8) {
        let v = encode_vector(input, e, f);
        let mut fused = vec![0.0f64; VECTOR_SIZE];
        let mut unfused = vec![0.0f64; VECTOR_SIZE];
        let mut scalar = vec![0.0f64; VECTOR_SIZE];
        let mut scratch = vec![0i64; VECTOR_SIZE];
        let n1 = decode_vector(&v, v.view(), &mut fused);
        let n2 = decode_vector_unfused(&v, v.view(), &mut scratch, &mut unfused);
        let n3 = decode_vector_scalar(&v, v.view(), &mut scalar);
        assert_eq!(n1, input.len());
        assert_eq!(n2, input.len());
        assert_eq!(n3, input.len());
        for i in 0..input.len() {
            assert_eq!(fused[i].to_bits(), input[i].to_bits(), "fused idx {i}");
            assert_eq!(unfused[i].to_bits(), input[i].to_bits(), "unfused idx {i}");
            assert_eq!(scalar[i].to_bits(), input[i].to_bits(), "scalar idx {i}");
        }
    }

    #[test]
    fn decimal_vector_roundtrips() {
        let input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.05 - 20.0).collect();
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn vector_with_exceptions_roundtrips() {
        let mut input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.25).collect();
        input[17] = f64::NAN;
        input[512] = std::f64::consts::PI; // full-precision, not a decimal
        input[1023] = f64::INFINITY;
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn short_vector_roundtrips() {
        let input = vec![9.75f64, -3.25, 0.5];
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn all_exceptions_roundtrip() {
        let input: Vec<f64> = (0..100).map(|i| (i as f64).sqrt().sin()).collect();
        roundtrip_all_variants(&input, 0, 0);
    }

    #[test]
    fn f32_roundtrip_through_vector_path() {
        let input: Vec<f32> = (0..1024).map(|i| (i as f32) * 0.5 - 100.0).collect();
        let v = encode_vector(&input, 5, 2);
        let mut out = vec![0.0f32; VECTOR_SIZE];
        decode_vector(&v, v.view(), &mut out);
        for i in 0..input.len() {
            assert_eq!(out[i].to_bits(), input[i].to_bits(), "idx {i}");
        }
    }

    #[test]
    fn negative_and_mixed_magnitudes() {
        let input: Vec<f64> = (0..1024)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (i as f64) * 1000.5
            })
            .collect();
        roundtrip_all_variants(&input, 14, 13);
    }
}
