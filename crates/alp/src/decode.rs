//! ALP decompression (Algorithm 2): unFFOR + `ALP_dec` multiplication + patch.
//!
//! Three variants of the hot loop exist on purpose:
//!
//! * [`decode_vector`] — the production path: bit-unpack, add the FOR base and
//!   multiply back to floats **in a single fused kernel**, then patch
//!   exceptions. This is the "FFOR+ALP fused" configuration of Figure 5.
//! * [`decode_vector_unfused`] — identical math split into two kernels with a
//!   materialized intermediate integer vector (the Figure 5 baseline).
//! * [`decode_vector_scalar`] — a deliberately value-at-a-time, branchy
//!   implementation (runtime-width bit extraction, per-value exception test)
//!   standing in for the paper's "Scalar (vectorization disabled)"
//!   configuration of Figure 4.
//!
//! On top of these, [`scan_vector`] is the *fused scan* entry: unpack,
//! FOR-add, decimal multiply, mid-stream exception patch, range predicate,
//! and aggregate in one pass per vector, with validity/selection bitmaps and
//! no materialized `Vec<f64>`. Its accumulation is a single sequential scalar
//! chain per vector, so every aggregate is bit-identical to decoding the
//! vector and folding the same chain over the buffer.

use fastlanes::dispatch::{width_mask, with_width, WidthKernel};
use fastlanes::{ffor, VECTOR_SIZE};

use crate::encode::{AlpVector, ExcView};
use crate::traits::AlpFloat;

/// Decodes `v` into `out[..v.len]` using the fused kernel, patching from the
/// exception view `exc` (obtained from the owning arena). Returns the number
/// of live values written.
pub fn decode_vector<F: AlpFloat>(v: &AlpVector, exc: ExcView<'_>, out: &mut [F]) -> usize {
    assert!(out.len() >= VECTOR_SIZE);
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    with_width(
        v.bit_width as usize,
        FusedDecode { packed: &v.packed, base: v.for_base, mul_f, mul_e, out },
    );
    patch_exceptions(exc, out);
    v.len as usize
}

/// Unfused decode: unFFOR into an integer scratch vector, then a separate
/// multiply loop. Exists for the Figure 5 kernel-fusion ablation.
// ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; scratch/out
// lengths are asserted at entry and indices stay below VECTOR_SIZE.
#[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
pub fn decode_vector_unfused<F: AlpFloat>(
    v: &AlpVector,
    exc: ExcView<'_>,
    scratch: &mut [i64],
    out: &mut [F],
) -> usize {
    assert!(scratch.len() >= VECTOR_SIZE && out.len() >= VECTOR_SIZE);
    ffor::ffor_unpack(&v.packed, v.for_base, v.bit_width as usize, &mut scratch[..VECTOR_SIZE]);
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    for i in 0..VECTOR_SIZE {
        out[i] = F::from_i64(scratch[i]) * mul_f * mul_e;
    }
    patch_exceptions(exc, out);
    v.len as usize
}

/// Deliberately scalar decode: value-at-a-time with runtime-width bit
/// arithmetic and a per-value exception branch. Proxy for the paper's
/// vectorization-disabled builds (Figure 4).
// ANALYZER-ALLOW(no-panic): out.len() is asserted at entry; v.packed length is
// validated against bit_width during wire deserialization, and the `as u32`
// shift cast is bounded by `& 63`.
#[allow(clippy::needless_range_loop)] // value-at-a-time is the point here
pub fn decode_vector_scalar<F: AlpFloat>(v: &AlpVector, exc: ExcView<'_>, out: &mut [F]) -> usize {
    assert!(out.len() >= VECTOR_SIZE);
    let w = v.bit_width as usize;
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    let mask = if w == 64 {
        u64::MAX
    } else if w == 0 {
        0
    } else {
        (1u64 << w) - 1
    };
    let mut exc_idx = 0usize;
    for i in 0..v.len as usize {
        // Per-value adaptivity emulation: check the exception side first, as a
        // per-value codec (Chimp-style flag dispatch) would.
        if exc_idx < exc.positions.len() && exc.positions[exc_idx] as usize == i {
            out[i] = F::from_bits_u64(exc.values[exc_idx]);
            exc_idx += 1;
            continue;
        }
        let raw = if w == 0 {
            0
        } else {
            let bit = i * w;
            let word = bit >> 6;
            let off = (bit & 63) as u32;
            let lo = v.packed[word] >> off;
            let hi = (v.packed[word + 1] << 1) << (63 - off);
            (lo | hi) & mask
        };
        let d = raw.wrapping_add(v.for_base as u64) as i64;
        out[i] = F::from_i64(d) * mul_f * mul_e;
    }
    v.len as usize
}

/// Overwrites exception positions with their stored raw values (the PATCH step
/// of Algorithm 2).
#[inline]
pub fn patch_exceptions<F: AlpFloat>(exc: ExcView<'_>, out: &mut [F]) {
    for (&p, &bits) in exc.positions.iter().zip(exc.values) {
        // Positions come off the wire; a corrupt position past the vector end
        // is dropped rather than allowed to panic the decode path.
        if let Some(slot) = out.get_mut(p as usize) {
            *slot = F::from_bits_u64(bits);
        }
    }
}

struct FusedDecode<'a, F: AlpFloat> {
    packed: &'a [u64],
    base: i64,
    mul_f: F,
    mul_e: F,
    out: &'a mut [F],
}

impl<F: AlpFloat> WidthKernel for FusedDecode<'_, F> {
    type Out = ();
    #[inline]
    // ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; callers assert
    // out.len() >= VECTOR_SIZE and packed holds the 16*W+1 words the wire
    // reader validated, so every block index is in bounds. The `as u32` shift
    // cast is bounded by `& 63`.
    #[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
    fn run<const W: usize>(self) {
        let Self { packed, base, mul_f, mul_e, out } = self;
        let base_u = base as u64;
        if W == 0 {
            let val = F::from_i64(base) * mul_f * mul_e;
            out[..VECTOR_SIZE].fill(val);
            return;
        }
        if W == 64 {
            for i in 0..VECTOR_SIZE {
                let d = packed[i].wrapping_add(base_u) as i64;
                out[i] = F::from_i64(d) * mul_f * mul_e;
            }
            return;
        }
        let mask = width_mask::<W>();
        // Same 16x64 block structure as the fastlanes kernels. Fusion happens
        // at the cache-block level: the 64 unpacked integers stay in a local
        // buffer (registers / L1) instead of a materialized 1024-value vector,
        // and each mini-loop is a clean single-domain pattern the compiler
        // auto-vectorizes (mixing the shift network and the int→float multiply
        // in one loop defeats the vectorizer).
        for block in 0..VECTOR_SIZE / 64 {
            let words = &packed[block * W..block * W + W + 1];
            let out_block = &mut out[block * 64..block * 64 + 64];
            let mut tmp = [0i64; 64];
            for j in 0..64 {
                let bit = j * W;
                let word = bit >> 6;
                let off = (bit & 63) as u32;
                let lo = words[word] >> off;
                let hi = (words[word + 1] << 1) << (63 - off);
                tmp[j] = ((lo | hi) & mask).wrapping_add(base_u) as i64;
            }
            for j in 0..64 {
                out_block[j] = F::from_i64(tmp[j]) * mul_f * mul_e;
            }
        }
    }
}

/// Bitmap words per vector for fused scans (bit `i` of word `i / 64`
/// describes value `i`).
pub const SCAN_WORDS: usize = VECTOR_SIZE / 64;

/// Aggregates and bitmaps produced by one fused vector scan.
///
/// `sum`/`matches` follow the engine's accumulation contract: one sequential
/// scalar chain over the vector's live values (`sum = sum + if hit { x } else
/// { 0 }`), so the result is bit-identical to decoding into a buffer and
/// folding the same chain over it — fusion removes the materialization, not
/// the floating-point operation order.
#[derive(Debug, Clone)]
pub struct VectorScan<F> {
    /// Chain sum of the values matching `lo..=hi` (misses contribute `+0`).
    pub sum: F,
    /// Number of matching values.
    pub matches: usize,
    /// Minimum matching value; `None` when nothing matched or min/max
    /// tracking was not requested.
    pub min: Option<F>,
    /// Maximum matching value (see `min`).
    pub max: Option<F>,
    /// Validity bitmap: bit `i` set ⇔ live value `i` is not NaN.
    pub valid: [u64; SCAN_WORDS],
    /// Selection bitmap: bit `i` set ⇔ live value `i` matched the predicate.
    pub hits: [u64; SCAN_WORDS],
    /// Number of live values scanned (the vector's logical length).
    pub len: usize,
}

impl<F: AlpFloat> VectorScan<F> {
    /// Empty scan state over `len` live values.
    pub fn empty(len: usize) -> Self {
        Self {
            sum: F::from_i64(0),
            matches: 0,
            min: None,
            max: None,
            valid: [0; SCAN_WORDS],
            hits: [0; SCAN_WORDS],
            len,
        }
    }

    /// Number of live non-NaN values (popcount over the bitmap words).
    pub fn valid_count(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of live NaN values.
    pub fn invalid_count(&self) -> usize {
        self.len.saturating_sub(self.valid_count())
    }
}

/// Fused scan of one ALP vector: decodes, patches exceptions *mid-stream*
/// from the sorted exception view, applies `lo <= x <= hi`, and aggregates —
/// without materializing the decoded vector. Returns per-vector partials plus
/// validity/selection bitmaps.
pub fn scan_vector<F: AlpFloat>(
    v: &AlpVector,
    exc: ExcView<'_>,
    lo: F,
    hi: F,
    with_minmax: bool,
) -> VectorScan<F> {
    let mut scan = VectorScan::empty(v.len as usize);
    if !exc.positions.iter().zip(exc.positions.iter().skip(1)).all(|(a, b)| a <= b) {
        // Corrupt-but-decodable exception list: the mid-stream cursor assumes
        // ascending positions (the encoder's invariant), so fall back to
        // decode-then-scan, which preserves `patch_exceptions` overwrite order.
        let mut buf = vec![F::from_i64(0); VECTOR_SIZE];
        let n = decode_vector(v, exc, &mut buf);
        scan_decoded(buf.get(..n).unwrap_or(&buf), lo, hi, with_minmax, &mut scan);
        return scan;
    }
    let mul_f = F::f10(v.factor);
    let mul_e = F::if10(v.exponent);
    with_width(
        v.bit_width as usize,
        FusedScanKernel {
            packed: &v.packed,
            base: v.for_base,
            mul_f,
            mul_e,
            exc,
            lo,
            hi,
            with_minmax,
            out: &mut scan,
        },
    );
    scan
}

/// Scans already-decoded values with the same chain and bitmap semantics as
/// [`scan_vector`]. Used for ALP_rd vectors (no decimal fast path to fuse)
/// and other fall-back paths; `scan` must be freshly [`VectorScan::empty`]
/// with `len == values.len()` (at most [`VECTOR_SIZE`]).
pub fn scan_decoded<F: AlpFloat>(
    values: &[F],
    lo: F,
    hi: F,
    with_minmax: bool,
    scan: &mut VectorScan<F>,
) {
    let mut sum = scan.sum;
    let mut matches = scan.matches;
    let mut min = scan.min;
    let mut max = scan.max;
    let words = scan.valid.iter_mut().zip(scan.hits.iter_mut());
    for (chunk, (valid_word, hit_word)) in values.chunks(64).zip(words) {
        // Predicate + bitmaps first (independent per lane, vectorizable),
        // then the chain over hit lanes only — adding +0.0 for a miss is an
        // exact no-op because the running sum starts at +0.0 and IEEE-754
        // round-to-nearest never produces -0.0 unless both operands are
        // -0.0, so skipping misses is bit-identical to the contract chain.
        let mut vw = 0u64;
        let mut hw = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            vw |= ((!x.is_nan()) as u64) << j;
            hw |= ((x >= lo && x <= hi) as u64) << j;
        }
        *valid_word = vw;
        *hit_word = hw;
        matches += hw.count_ones() as usize;
        for (j, &x) in chunk.iter().enumerate() {
            if (hw >> j) & 1 == 1 {
                sum = sum + x;
                if with_minmax {
                    min = Some(match min {
                        Some(m) if m <= x => m,
                        _ => x,
                    });
                    max = Some(match max {
                        Some(m) if m >= x => m,
                        _ => x,
                    });
                }
            }
        }
    }
    scan.sum = sum;
    scan.matches = matches;
    scan.min = min;
    scan.max = max;
}

struct FusedScanKernel<'a, F: AlpFloat> {
    packed: &'a [u64],
    base: i64,
    mul_f: F,
    mul_e: F,
    exc: ExcView<'a>,
    lo: F,
    hi: F,
    with_minmax: bool,
    out: &'a mut VectorScan<F>,
}

impl<F: AlpFloat> WidthKernel for FusedScanKernel<'_, F> {
    type Out = ();
    #[inline]
    // ANALYZER-ALLOW(no-panic): fixed 1024-lane kernel geometry; packed holds
    // the 16*W+1 words the wire reader validated, block-local indices stay
    // below 64, bitmap indices below SCAN_WORDS, and the `as u32` shift cast
    // is bounded by `& 63`.
    #[allow(clippy::needless_range_loop)] // affine-index form the vectorizer needs
    fn run<const W: usize>(self) {
        let Self { packed, base, mul_f, mul_e, exc, lo, hi, with_minmax, out } = self;
        let zero = F::from_i64(0);
        let base_u = base as u64;
        let mask = width_mask::<W>();
        let len = out.len.min(VECTOR_SIZE);
        let mut exc_idx = 0usize;
        let mut sum = out.sum;
        let mut matches = out.matches;
        let mut min = out.min;
        let mut max = out.max;
        // Block-local staging, hoisted out of the loop so its initialization
        // is paid once, not per block (every live slot is overwritten before
        // it is read — lanes past `n` never reach the bitmaps or the chain).
        let mut vals = [zero; 64];
        let mut tmp = [0i64; 64];
        for block in 0..VECTOR_SIZE / 64 {
            let start = block * 64;
            if start >= len {
                break;
            }
            let n = 64.min(len - start);
            // Stage 1: unpack + FOR-add + decimal multiply into the staging
            // buffer (registers / L1) — same mini-loop shapes as FusedDecode,
            // so the shift network and the int→float multiply each stay a
            // clean single-domain pattern the compiler auto-vectorizes.
            if W == 0 {
                vals.fill(F::from_i64(base) * mul_f * mul_e);
            } else if W == 64 {
                for j in 0..64 {
                    let d = packed[start + j].wrapping_add(base_u) as i64;
                    vals[j] = F::from_i64(d) * mul_f * mul_e;
                }
            } else {
                let words = &packed[block * W..block * W + W + 1];
                for j in 0..64 {
                    let bit = j * W;
                    let word = bit >> 6;
                    let off = (bit & 63) as u32;
                    let lo_w = words[word] >> off;
                    let hi_w = (words[word + 1] << 1) << (63 - off);
                    tmp[j] = ((lo_w | hi_w) & mask).wrapping_add(base_u) as i64;
                }
                for j in 0..64 {
                    vals[j] = F::from_i64(tmp[j]) * mul_f * mul_e;
                }
            }
            // Stage 2: mid-stream exception patch. Positions are ascending
            // (checked by the caller), so one cursor visits each exception
            // once; positions past the vector end are dropped, matching
            // `patch_exceptions`.
            let end = start + 64;
            while exc_idx < exc.positions.len() {
                let p = exc.positions[exc_idx] as usize;
                if p >= end {
                    break;
                }
                if p >= start {
                    vals[p - start] = F::from_bits_u64(exc.values[exc_idx]);
                }
                exc_idx += 1;
            }
            // Stage 3: predicate + bitmaps. One independent comparison per
            // lane — no loop-carried state, so the compiler vectorizes it.
            let mut vw = 0u64;
            let mut hw = 0u64;
            for j in 0..n {
                let x = vals[j];
                vw |= ((!x.is_nan()) as u64) << j;
                hw |= ((x >= lo && x <= hi) as u64) << j;
            }
            out.valid[block] = vw;
            out.hits[block] = hw;
            matches += hw.count_ones() as usize;
            // Stage 4: the aggregate chain, feeding only hit lanes into the
            // serial FP dependency. The contract chain adds `+0.0` for every
            // miss, and +0.0 is the exact additive identity for every value
            // the chain can hold: the sum starts at +0.0, and IEEE-754
            // round-to-nearest only yields -0.0 when *both* operands are
            // -0.0, so the running sum is never -0.0 — skipping miss terms
            // is therefore bit-identical to adding them.
            for (j, &x) in vals.iter().enumerate().take(n) {
                if (hw >> j) & 1 == 1 {
                    sum = sum + x;
                    if with_minmax {
                        min = Some(match min {
                            Some(m) if m <= x => m,
                            _ => x,
                        });
                        max = Some(match max {
                            Some(m) if m >= x => m,
                            _ => x,
                        });
                    }
                }
            }
        }
        out.sum = sum;
        out.matches = matches;
        out.min = min;
        out.max = max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_vector;

    fn roundtrip_all_variants(input: &[f64], e: u8, f: u8) {
        let v = encode_vector(input, e, f);
        let mut fused = vec![0.0f64; VECTOR_SIZE];
        let mut unfused = vec![0.0f64; VECTOR_SIZE];
        let mut scalar = vec![0.0f64; VECTOR_SIZE];
        let mut scratch = vec![0i64; VECTOR_SIZE];
        let n1 = decode_vector(&v, v.view(), &mut fused);
        let n2 = decode_vector_unfused(&v, v.view(), &mut scratch, &mut unfused);
        let n3 = decode_vector_scalar(&v, v.view(), &mut scalar);
        assert_eq!(n1, input.len());
        assert_eq!(n2, input.len());
        assert_eq!(n3, input.len());
        for i in 0..input.len() {
            assert_eq!(fused[i].to_bits(), input[i].to_bits(), "fused idx {i}");
            assert_eq!(unfused[i].to_bits(), input[i].to_bits(), "unfused idx {i}");
            assert_eq!(scalar[i].to_bits(), input[i].to_bits(), "scalar idx {i}");
        }
    }

    #[test]
    fn decimal_vector_roundtrips() {
        let input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.05 - 20.0).collect();
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn vector_with_exceptions_roundtrips() {
        let mut input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.25).collect();
        input[17] = f64::NAN;
        input[512] = std::f64::consts::PI; // full-precision, not a decimal
        input[1023] = f64::INFINITY;
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn short_vector_roundtrips() {
        let input = vec![9.75f64, -3.25, 0.5];
        roundtrip_all_variants(&input, 14, 12);
    }

    #[test]
    fn all_exceptions_roundtrip() {
        let input: Vec<f64> = (0..100).map(|i| (i as f64).sqrt().sin()).collect();
        roundtrip_all_variants(&input, 0, 0);
    }

    #[test]
    fn f32_roundtrip_through_vector_path() {
        let input: Vec<f32> = (0..1024).map(|i| (i as f32) * 0.5 - 100.0).collect();
        let v = encode_vector(&input, 5, 2);
        let mut out = vec![0.0f32; VECTOR_SIZE];
        decode_vector(&v, v.view(), &mut out);
        for i in 0..input.len() {
            assert_eq!(out[i].to_bits(), input[i].to_bits(), "idx {i}");
        }
    }

    /// Reference for the fused scan: decode, then run the identical chain
    /// over the materialized buffer via `scan_decoded`.
    fn scan_reference(v: &crate::encode::OwnedAlpVector, lo: f64, hi: f64) -> VectorScan<f64> {
        let mut buf = vec![0.0f64; VECTOR_SIZE];
        let n = decode_vector(v, v.view(), &mut buf);
        let mut scan = VectorScan::empty(n);
        scan_decoded(&buf[..n], lo, hi, true, &mut scan);
        scan
    }

    fn assert_scans_identical(input: &[f64], lo: f64, hi: f64, e: u8, f: u8) {
        let v = encode_vector(input, e, f);
        let fused = scan_vector(&v, v.view(), lo, hi, true);
        let want = scan_reference(&v, lo, hi);
        assert_eq!(fused.sum.to_bits(), want.sum.to_bits(), "sum bits");
        assert_eq!(fused.matches, want.matches, "matches");
        assert_eq!(fused.min.map(f64::to_bits), want.min.map(f64::to_bits), "min");
        assert_eq!(fused.max.map(f64::to_bits), want.max.map(f64::to_bits), "max");
        assert_eq!(fused.valid, want.valid, "validity bitmap");
        assert_eq!(fused.hits, want.hits, "selection bitmap");
        assert_eq!(fused.len, want.len);
        assert_eq!(fused.valid_count() + fused.invalid_count(), fused.len);
    }

    #[test]
    fn fused_scan_matches_decode_then_scan() {
        let input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.05 - 20.0).collect();
        assert_scans_identical(&input, -5.0, 20.0, 14, 12);
        assert_scans_identical(&input, f64::NEG_INFINITY, f64::INFINITY, 14, 12);
    }

    #[test]
    fn fused_scan_with_exceptions_and_nans() {
        let mut input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.25).collect();
        for i in (0..1024).step_by(9) {
            input[i] = f64::NAN; // exception-heavy and NaN-dense
        }
        input[512] = std::f64::consts::PI;
        input[1023] = f64::INFINITY;
        assert_scans_identical(&input, 10.0, 200.0, 14, 12);
        let v = encode_vector(&input, 14, 12);
        let scan = scan_vector(&v, v.view(), 10.0, 200.0, false);
        assert_eq!(scan.invalid_count(), (0..1024).step_by(9).count());
    }

    #[test]
    fn fused_scan_all_nan_vector() {
        let input = vec![f64::NAN; 1024];
        assert_scans_identical(&input, f64::NEG_INFINITY, f64::INFINITY, 0, 0);
        let v = encode_vector(&input, 0, 0);
        let scan = scan_vector(&v, v.view(), f64::NEG_INFINITY, f64::INFINITY, true);
        assert_eq!(scan.matches, 0);
        assert_eq!(scan.valid_count(), 0);
        assert_eq!(scan.invalid_count(), 1024);
        assert_eq!(scan.min, None);
        assert_eq!(scan.max, None);
    }

    #[test]
    fn fused_scan_ragged_tail() {
        let input: Vec<f64> = (0..137).map(|i| (i as f64) * 0.5 - 7.0).collect();
        assert_scans_identical(&input, -3.0, 25.0, 14, 12);
        let v = encode_vector(&input, 14, 12);
        let scan = scan_vector(&v, v.view(), -3.0, 25.0, true);
        assert_eq!(scan.len, 137);
        // Bits past the live length stay clear.
        assert_eq!(scan.valid[3..], [0u64; SCAN_WORDS - 3]);
        assert_eq!(scan.valid[2] >> 9, 0);
    }

    #[test]
    fn fused_scan_empty_selection() {
        let input: Vec<f64> = (0..1024).map(|i| (i as f64) * 0.125).collect();
        let v = encode_vector(&input, 14, 12);
        let scan = scan_vector(&v, v.view(), 1.0f64, 0.0, true);
        assert_eq!(scan.matches, 0);
        assert_eq!(scan.sum.to_bits(), 0.0f64.to_bits());
        assert_eq!(scan.min, None);
        assert!(scan.hits.iter().all(|&w| w == 0));
        assert_eq!(scan.valid_count(), 1024);
    }

    #[test]
    fn negative_and_mixed_magnitudes() {
        let input: Vec<f64> = (0..1024)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * (i as f64) * 1000.5
            })
            .collect();
        roundtrip_all_variants(&input, 14, 13);
    }
}
