/// Append-only MSB-first bit writer backed by a `Vec<u8>`.
///
/// Bits accumulate in a 64-bit staging register and are flushed to the byte
/// buffer eight at a time, so the hot `write_bits` path touches the heap at
/// most once per call.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Staging register; valid bits occupy the *top* `filled` positions.
    acc: u64,
    /// Number of valid bits currently staged in `acc` (0..8).
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self { bytes: Vec::with_capacity(bytes), acc: 0, filled: 0 }
    }

    /// Total number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.filled as u64
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Appends the lowest `width` bits of `value`, most significant first.
    ///
    /// `width` must be `0..=64`; bits of `value` above `width` are ignored.
    #[inline]
    pub fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        if width == 0 {
            return;
        }
        let value = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let mut remaining = width;
        // Fill the staging byte; spill full bytes to the buffer.
        while remaining > 0 {
            let room = 8 - self.filled;
            let take = remaining.min(room);
            // Bits of `value` to emit next are its top `take` of the remaining ones.
            let chunk = (value >> (remaining - take)) & ((1u64 << take) - 1);
            self.acc = (self.acc << take) | chunk;
            self.filled += take;
            remaining -= take;
            if self.filled == 8 {
                self.bytes.push(self.acc as u8);
                self.acc = 0;
                self.filled = 0;
            }
        }
    }

    /// Finishes the stream, zero-padding the final partial byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.filled > 0 {
            let pad = 8 - self.filled;
            self.bytes.push((self.acc << pad) as u8);
            self.acc = 0;
            self.filled = 0;
        }
        self.bytes
    }
}
