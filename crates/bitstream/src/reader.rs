/// MSB-first bit reader over a byte slice.
///
/// Reading past the end of the slice yields zero bits rather than panicking;
/// codecs detect end-of-stream from their own value counts, and tolerating
/// over-reads keeps the hot decode loops branch-light. The reader *tracks*
/// such over-reads: once [`overrun`](Self::overrun) returns true, some bits
/// handed out were zero-fill rather than data, and fallible decoders treat
/// the stream as truncated. The check costs nothing on the hot path — it
/// compares two counters already maintained for [`bit_pos`](Self::bit_pos).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte to load.
    next: usize,
    /// Staging register; valid bits occupy the top positions.
    acc: u64,
    /// Number of valid bits in `acc`.
    filled: u32,
    consumed: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, next: 0, acc: 0, filled: 0, consumed: 0 }
    }

    /// Number of bits consumed so far.
    #[inline]
    pub fn bit_pos(&self) -> u64 {
        self.consumed
    }

    /// Total number of real bits in the underlying slice.
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Bits of real data left (0 once the slice is exhausted).
    #[inline]
    pub fn remaining_bits(&self) -> u64 {
        self.len_bits().saturating_sub(self.consumed)
    }

    /// True if any read so far went past the end of the slice — i.e. some
    /// returned bits were zero-fill, not data. Fallible decoders check this
    /// after (or during) decoding to report truncation.
    #[inline]
    pub fn overrun(&self) -> bool {
        self.consumed > self.len_bits()
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read_bits(1) != 0
    }

    /// Reads `width` bits (`0..=64`), returning them in the low bits of the result.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        if width == 0 {
            return 0;
        }
        self.consumed += width as u64;
        let mut out: u64 = 0;
        let mut remaining = width;
        while remaining > 0 {
            if self.filled == 0 {
                self.refill();
            }
            let take = remaining.min(self.filled);
            // Extract the top `take` bits of the staging register.
            let chunk = self.acc >> (64 - take);
            // `take == 64` only happens on a fresh refill consuming the whole
            // register; a plain shift would overflow.
            self.acc = if take == 64 { 0 } else { self.acc << take };
            self.filled -= take;
            out = if take == 64 { chunk } else { (out << take) | chunk };
            remaining -= take;
        }
        out
    }

    /// Loads up to 8 bytes into the staging register. Past end-of-slice the
    /// register fills with zeros.
    #[inline]
    fn refill(&mut self) {
        let rest = self.bytes.get(self.next..).unwrap_or_default();
        if let Some(chunk) = rest.first_chunk::<8>() {
            self.acc = u64::from_be_bytes(*chunk);
            self.filled = 64;
            self.next += 8;
        } else {
            let mut word: u64 = 0;
            for i in 0..8 {
                let b = rest.get(i).copied().unwrap_or(0);
                word = (word << 8) | b as u64;
            }
            self.acc = word;
            self.filled = 64;
            self.next += rest.len();
        }
    }
}
