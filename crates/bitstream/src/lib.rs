//! MSB-first bit-granular I/O.
//!
//! The XOR-based floating-point codecs (Gorilla, Chimp, Chimp128, Elf) and the
//! Huffman stage of GPZip all produce variable-length bit sequences. This crate
//! provides the two primitives they share:
//!
//! * [`BitWriter`] — append `1..=64` bits at a time to a growing byte buffer.
//! * [`BitReader`] — consume bits from a byte slice in the same order.
//!
//! Bits are written most-significant-first within each byte, which matches the
//! layouts used by the original Gorilla/Chimp publications and makes hexdumps of
//! the compressed streams readable left-to-right.
//!
//! # Example
//! ```
//! use bitstream::{BitReader, BitWriter};
//! let mut w = BitWriter::new();
//! w.write_bits(0b101, 3);
//! w.write_bit(true);
//! w.write_bits(0xDEAD, 16);
//! let bytes = w.into_bytes();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3), 0b101);
//! assert_eq!(r.read_bit(), true);
//! assert_eq!(r.read_bits(16), 0xDEAD);
//! ```

#![forbid(unsafe_code)]

mod reader;
mod writer;

pub use reader::BitReader;
pub use writer::BitWriter;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let widths = [1u32, 3, 7, 8, 13, 17, 31, 32, 33, 48, 63, 64];
        for (i, &n) in widths.iter().enumerate() {
            let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)) & mask(n);
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (i, &n) in widths.iter().enumerate() {
            let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)) & mask(n);
            assert_eq!(r.read_bits(n), v, "width {n}");
        }
    }

    fn mask(n: u32) -> u64 {
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2); // 9 bits -> 2 bytes
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }

    #[test]
    fn bit_len_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 64);
        assert_eq!(w.bit_len(), 65);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        w.write_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), 0);
        assert!(r.read_bit());
    }

    #[test]
    fn reader_position_and_remaining() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 40);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit_pos(), 0);
        r.read_bits(13);
        assert_eq!(r.bit_pos(), 13);
    }

    #[test]
    fn byte_alignment_padding_is_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.into_bytes();
        // MSB-first: the single 1 bit lands in the top bit.
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut w = BitWriter::new();
        // Upper bits beyond the width must be ignored.
        w.write_bits(u64::MAX, 4);
        w.write_bits(0, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1111_0000]);
    }
}
